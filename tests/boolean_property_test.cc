// Exhaustive and randomized property tests for the Boolean minimization
// stack — the correctness core the whole index library leans on.

#include <gtest/gtest.h>

#include "boolean/quine_mccluskey.h"
#include "boolean/reduction.h"
#include "util/random.h"

namespace ebi {
namespace {

/// Truth table of a cover over k variables, as a bitmask of 2^k outputs.
uint64_t TruthTable(const Cover& cover, int k) {
  uint64_t table = 0;
  for (uint64_t m = 0; m < (uint64_t{1} << k); ++m) {
    if (CoverCovers(cover, m)) {
      table |= uint64_t{1} << m;
    }
  }
  return table;
}

TEST(BooleanExhaustiveTest, AllThreeVariableFunctionsMinimizeCorrectly) {
  // Every one of the 256 functions of 3 variables: QM must return an
  // equivalent, irredundant cover.
  const int k = 3;
  for (uint32_t function = 0; function < 256; ++function) {
    std::vector<uint64_t> onset;
    for (uint64_t m = 0; m < 8; ++m) {
      if ((function >> m) & 1) {
        onset.push_back(m);
      }
    }
    const Cover cover = MinimizeQm(onset, {}, k);
    uint64_t expected = function;
    ASSERT_EQ(TruthTable(cover, k), expected) << "function " << function;
    // Irredundant: every cube covers some onset minterm no other covers...
    // at minimum, no cube is droppable.
    for (size_t drop = 0; drop < cover.size(); ++drop) {
      Cover without;
      for (size_t i = 0; i < cover.size(); ++i) {
        if (i != drop) {
          without.push_back(cover[i]);
        }
      }
      ASSERT_NE(TruthTable(without, k), expected)
          << "function " << function << " cube " << drop << " redundant";
    }
  }
}

TEST(BooleanExhaustiveTest, AllThreeVariableFunctionsWithDontCares) {
  // For every (onset, dc) split of a few fixed dc patterns, the cover
  // must agree with the onset outside the dc set.
  const int k = 3;
  const std::vector<uint64_t> dc = {0b010, 0b101};
  const uint64_t dc_mask =
      (uint64_t{1} << 0b010) | (uint64_t{1} << 0b101);
  for (uint32_t function = 0; function < 256; ++function) {
    std::vector<uint64_t> onset;
    for (uint64_t m = 0; m < 8; ++m) {
      if (((function >> m) & 1) && !((dc_mask >> m) & 1)) {
        onset.push_back(m);
      }
    }
    const Cover cover = MinimizeQm(onset, dc, k);
    const uint64_t table = TruthTable(cover, k);
    for (uint64_t m = 0; m < 8; ++m) {
      if ((dc_mask >> m) & 1) {
        continue;  // Unconstrained.
      }
      const bool want = std::find(onset.begin(), onset.end(), m) !=
                        onset.end();
      ASSERT_EQ(((table >> m) & 1) != 0, want)
          << "function " << function << " minterm " << m;
    }
  }
}

TEST(BooleanExhaustiveTest, HeuristicAgreesWithExactSemantics) {
  // The heuristic reducer on every 4-variable function of a random
  // sample: must be semantically identical to the raw min-terms.
  Rng rng(2718);
  for (int trial = 0; trial < 200; ++trial) {
    const int k = 4;
    Cover raw;
    std::vector<uint64_t> onset;
    for (uint64_t m = 0; m < 16; ++m) {
      if (rng.Bernoulli(0.5)) {
        raw.push_back(Cube::MinTerm(m, k));
        onset.push_back(m);
      }
    }
    const Cover reduced = ReduceCoverHeuristic(raw);
    ASSERT_EQ(TruthTable(reduced, k), TruthTable(raw, k))
        << "trial " << trial;
  }
}

TEST(BooleanExhaustiveTest, ExactNeverWorseThanHeuristic) {
  Rng rng(31415);
  for (int trial = 0; trial < 60; ++trial) {
    const int k = 4;
    std::vector<uint64_t> onset;
    for (uint64_t m = 0; m < 16; ++m) {
      if (rng.Bernoulli(0.4)) {
        onset.push_back(m);
      }
    }
    ReductionOptions heuristic_only;
    heuristic_only.exact_max_terms = 0;
    const Cover exact = ReduceRetrievalFunction(onset, {}, k);
    const Cover heuristic =
        ReduceRetrievalFunction(onset, {}, k, heuristic_only);
    EXPECT_LE(exact.size(), heuristic.size()) << trial;
    EXPECT_LE(DistinctVariables(exact), k);
    EXPECT_EQ(TruthTable(exact, k), TruthTable(heuristic, k));
  }
}

TEST(BooleanExhaustiveTest, LargeWidthHeuristicPathScales) {
  // k = 20 (a million-codeword space): the heuristic path must handle a
  // 512-value consecutive selection quickly and still collapse it to the
  // enclosing subcube structure.
  const int k = 20;
  std::vector<uint64_t> onset;
  for (uint64_t m = 0; m < 512; ++m) {
    onset.push_back(m);
  }
  ReductionOptions options;
  options.exact_max_terms = 0;  // Force the heuristic.
  const Cover cover = ReduceRetrievalFunction(onset, {}, k, options);
  // [0, 512) is a 9-subcube: one cube with k-9 = 11 literals.
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].NumLiterals(), 11);
}

TEST(BooleanExhaustiveTest, ReductionCostNeverExceedsWidth) {
  Rng rng(999);
  for (int trial = 0; trial < 40; ++trial) {
    const int k = 2 + static_cast<int>(rng.UniformInt(9));  // 2..10.
    const size_t count = 1 + rng.UniformInt(50);
    std::vector<uint64_t> onset;
    for (size_t i = 0; i < count; ++i) {
      onset.push_back(rng.UniformInt(uint64_t{1} << k));
    }
    const Cover cover = ReduceRetrievalFunction(onset, {}, k);
    EXPECT_LE(DistinctVariables(cover), k);
    for (uint64_t m : onset) {
      EXPECT_TRUE(CoverCovers(cover, m));
    }
  }
}

}  // namespace
}  // namespace ebi
