#include "index/sharded_index.h"

#include <gtest/gtest.h>

#include <memory>

#include "index/index_factory.h"
#include "test_util.h"

namespace ebi {
namespace {

using testing_util::RandomIntTable;
using testing_util::ScanEquals;
using testing_util::ScanRange;

// Builds a sharded index of `kind` over `segment_rows`-row segments and a
// serial index of the same kind over the whole table, and returns both
// plus the infrastructure keeping them alive.
struct Harness {
  std::unique_ptr<Table> table;
  std::unique_ptr<SegmentedTable> segments;
  std::unique_ptr<exec::ThreadPool> pool;
  std::unique_ptr<IoAccountant> sharded_io =
      std::make_unique<IoAccountant>();
  std::unique_ptr<IoAccountant> serial_io =
      std::make_unique<IoAccountant>();
  std::unique_ptr<ShardedIndex> sharded;
  std::unique_ptr<SecondaryIndex> serial;
};

Harness MakeHarness(IndexKind kind, size_t rows, size_t segment_rows,
                    size_t threads, double null_fraction = 0.1) {
  Harness h;
  h.table = RandomIntTable(rows, 30, 99, null_fraction);
  auto parts = SegmentedTable::Partition(*h.table, segment_rows);
  EXPECT_TRUE(parts.ok());
  h.segments = std::make_unique<SegmentedTable>(std::move(parts).value());
  h.pool = std::make_unique<exec::ThreadPool>(threads);
  h.sharded = std::make_unique<ShardedIndex>(
      h.segments.get(), &h.table->column(0), &h.table->existence(), kind,
      h.pool.get(), h.sharded_io.get());
  EXPECT_TRUE(h.sharded->Build().ok());
  h.serial = MakeSecondaryIndex(kind, &h.table->column(0),
                                &h.table->existence(), h.serial_io.get());
  EXPECT_TRUE(h.serial != nullptr);
  EXPECT_TRUE(h.serial->Build().ok());
  return h;
}

TEST(ShardedIndexTest, EqualsMatchesSerialAcrossFamilies) {
  for (const IndexKind kind :
       {IndexKind::kSimpleBitmap, IndexKind::kSimpleBitmapEwah,
        IndexKind::kEncodedBitmap, IndexKind::kBitSliced,
        IndexKind::kRangeBasedBitmap}) {
    Harness h = MakeHarness(kind, 500, 64, 4);
    for (int64_t v = 0; v < 30; v += 4) {
      const auto sharded = h.sharded->EvaluateEquals(Value::Int(v));
      const auto serial = h.serial->EvaluateEquals(Value::Int(v));
      ASSERT_TRUE(sharded.ok()) << IndexKindName(kind);
      ASSERT_TRUE(serial.ok()) << IndexKindName(kind);
      EXPECT_EQ(*sharded, *serial) << IndexKindName(kind) << " v=" << v;
      EXPECT_EQ(*sharded, ScanEquals(*h.table, h.table->column(0), v));
    }
  }
}

TEST(ShardedIndexTest, InMatchesSerial) {
  Harness h = MakeHarness(IndexKind::kEncodedBitmap, 400, 30, 3);
  const std::vector<Value> values = {Value::Int(2), Value::Int(7),
                                     Value::Int(21)};
  const auto sharded = h.sharded->EvaluateIn(values);
  const auto serial = h.serial->EvaluateIn(values);
  ASSERT_TRUE(sharded.ok());
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(*sharded, *serial);
}

TEST(ShardedIndexTest, RangeMatchesSerial) {
  Harness h = MakeHarness(IndexKind::kBitSliced, 600, 100, 2);
  const auto sharded = h.sharded->EvaluateRange(5, 20);
  const auto serial = h.serial->EvaluateRange(5, 20);
  ASSERT_TRUE(sharded.ok());
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(*sharded, *serial);
  EXPECT_EQ(*sharded, ScanRange(*h.table, h.table->column(0), 5, 20));
}

TEST(ShardedIndexTest, IsNullMatchesSerial) {
  Harness h = MakeHarness(IndexKind::kEncodedBitmap, 300, 50, 4);
  ASSERT_TRUE(h.sharded->SupportsIsNull());
  const auto sharded = h.sharded->EvaluateIsNull();
  const auto serial = h.serial->EvaluateIsNull();
  ASSERT_TRUE(sharded.ok());
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(*sharded, *serial);
}

TEST(ShardedIndexTest, OneThreadPoolIsBitIdenticalToMany) {
  Harness one = MakeHarness(IndexKind::kSimpleBitmap, 500, 37, 1);
  Harness many = MakeHarness(IndexKind::kSimpleBitmap, 500, 37, 8);
  for (int64_t v = 0; v < 30; v += 3) {
    const auto a = one.sharded->EvaluateEquals(Value::Int(v));
    const auto b = many.sharded->EvaluateEquals(Value::Int(v));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b) << v;
  }
}

TEST(ShardedIndexTest, MoreSegmentsThanThreads) {
  // 500 rows in 10-row segments = 50 shards on a 2-thread pool.
  Harness h = MakeHarness(IndexKind::kSimpleBitmap, 500, 10, 2);
  EXPECT_EQ(h.sharded->NumShards(), 50u);
  const auto rows = h.sharded->EvaluateEquals(Value::Int(11));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, ScanEquals(*h.table, h.table->column(0), 11));
}

TEST(ShardedIndexTest, RaggedLastSegmentAnswersCorrectly) {
  // 503 % 64 != 0 — the last shard covers a short row span.
  Harness h = MakeHarness(IndexKind::kEncodedBitmap, 503, 64, 4);
  for (int64_t v = 0; v < 30; v += 5) {
    const auto rows = h.sharded->EvaluateEquals(Value::Int(v));
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows->size(), 503u);
    EXPECT_EQ(*rows, ScanEquals(*h.table, h.table->column(0), v));
  }
}

TEST(ShardedIndexTest, AppendAndDeleteReportUnimplemented) {
  Harness h = MakeHarness(IndexKind::kSimpleBitmap, 100, 25, 2);
  EXPECT_EQ(h.sharded->Append(99).code(), StatusCode::kUnimplemented);
  EXPECT_EQ(h.sharded->MarkDeleted(0).code(),
            StatusCode::kUnimplemented);
}

TEST(ShardedIndexTest, EvaluationChargesParentAccountant) {
  Harness h = MakeHarness(IndexKind::kSimpleBitmap, 400, 50, 4);
  const IoStats before = h.sharded_io->stats();
  ASSERT_TRUE(h.sharded->EvaluateEquals(Value::Int(3)).ok());
  const IoStats after = h.sharded_io->stats();
  EXPECT_GT(after.vectors_read, before.vectors_read);
  EXPECT_GT(after.bytes_read, before.bytes_read);
}

TEST(ShardedIndexTest, SizeMetricsSumOverShards) {
  Harness h = MakeHarness(IndexKind::kSimpleBitmap, 320, 40, 2);
  ASSERT_EQ(h.sharded->NumShards(), 8u);
  size_t bytes = 0;
  size_t vectors = 0;
  for (size_t i = 0; i < h.sharded->NumShards(); ++i) {
    bytes += h.sharded->shard(i)->SizeBytes();
    vectors += h.sharded->shard(i)->NumVectors();
  }
  EXPECT_EQ(h.sharded->SizeBytes(), bytes);
  EXPECT_EQ(h.sharded->NumVectors(), vectors);
  EXPECT_GT(bytes, 0u);
}

TEST(ShardedIndexTest, NameMentionsInnerKind) {
  Harness h = MakeHarness(IndexKind::kEncodedBitmap, 60, 20, 1);
  EXPECT_EQ(h.sharded->Name(), "sharded(encoded)");
}

}  // namespace
}  // namespace ebi
