// Exercises the debug lock-rank registry behind ebi::Mutex: ranked
// acquisition in ascending order is legal, descending order aborts, and
// the per-thread bookkeeping balances across scoped locks, manual
// Unlock/Lock cycles, try-locks and condition-variable waits.
//
// This target compiles with EBI_LOCK_RANK_DEBUG unconditionally (see
// tests/CMakeLists.txt), so the checks are live even in Release CI legs.

#include "util/sync.h"

#include <gtest/gtest.h>

#include <thread>

namespace ebi {
namespace {

TEST(LockRankTest, RanksAndNamesAreRecorded) {
  Mutex mu(lock_rank::kWal, "test::wal");
  EXPECT_EQ(mu.rank(), lock_rank::kWal);
  EXPECT_STREQ(mu.name(), "test::wal");
  Mutex unranked;
  EXPECT_EQ(unranked.rank(), lock_rank::kUnranked);
}

TEST(LockRankTest, AscendingAcquisitionIsLegal) {
  Mutex engine(lock_rank::kStorageEngine, "test::engine");
  Mutex wal(lock_rank::kWal, "test::wal");
  Mutex shard(lock_rank::kMetricsShard, "test::shard");
  {
    const MutexLock a(engine);
    const MutexLock b(wal);
    const MutexLock c(shard);
    EXPECT_EQ(lock_rank_internal::HeldCount(), 3u);
  }
  EXPECT_EQ(lock_rank_internal::HeldCount(), 0u);
}

TEST(LockRankTest, UnrankedMutexesSkipBookkeeping) {
  Mutex unranked;
  const MutexLock lock(unranked);
  EXPECT_EQ(lock_rank_internal::HeldCount(), 0u);
}

TEST(LockRankTest, ManualUnlockRelockBalances) {
  Mutex mu(lock_rank::kQueryServiceAppend, "test::append");
  MutexLock lock(mu);
  EXPECT_EQ(lock_rank_internal::HeldCount(), 1u);
  lock.Unlock();
  EXPECT_EQ(lock_rank_internal::HeldCount(), 0u);
  lock.Lock();
  EXPECT_EQ(lock_rank_internal::HeldCount(), 1u);
}

TEST(LockRankTest, TryLockRecordsTheRank) {
  Mutex mu(lock_rank::kSnapshotRetire, "test::retire");
  ASSERT_TRUE(mu.TryLock());
  EXPECT_EQ(lock_rank_internal::HeldCount(), 1u);
  mu.Unlock();
  EXPECT_EQ(lock_rank_internal::HeldCount(), 0u);
}

TEST(LockRankTest, HeldRanksAreThreadLocal) {
  Mutex mu(lock_rank::kThreadPool, "test::pool");
  const MutexLock lock(mu);
  size_t other_thread_held = 99;
  std::thread probe(
      [&other_thread_held] { other_thread_held = lock_rank_internal::HeldCount(); });
  probe.join();
  EXPECT_EQ(other_thread_held, 0u);
  EXPECT_EQ(lock_rank_internal::HeldCount(), 1u);
}

TEST(LockRankTest, CondVarWaitReleasesAndReacquiresTheRank) {
  Mutex mu(lock_rank::kWorkloadRecorder, "test::recorder");
  CondVar cv;
  bool ready = false;
  std::thread waker([&] {
    const MutexLock lock(mu);
    ready = true;
    cv.NotifyAll();
  });
  {
    MutexLock lock(mu);
    while (!ready) {
      cv.Wait(lock);
    }
    // Reacquired after the wait: the rank must be held again.
    EXPECT_EQ(lock_rank_internal::HeldCount(), 1u);
  }
  waker.join();
  EXPECT_EQ(lock_rank_internal::HeldCount(), 0u);
}

TEST(LockRankDeathTest, DescendingAcquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex shard(lock_rank::kMetricsShard, "test::shard");
  Mutex engine(lock_rank::kStorageEngine, "test::engine");
  EXPECT_DEATH(
      {
        const MutexLock high(shard);
        const MutexLock low(engine);
      },
      "lock-rank violation");
}

TEST(LockRankDeathTest, EqualRankReacquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex a(lock_rank::kWal, "test::wal_a");
  Mutex b(lock_rank::kWal, "test::wal_b");
  EXPECT_DEATH(
      {
        const MutexLock first(a);
        const MutexLock second(b);
      },
      "lock-rank violation");
}

}  // namespace
}  // namespace ebi
