#include <gtest/gtest.h>

#include "storage/column.h"
#include "storage/table.h"

namespace ebi {
namespace {

TEST(ValueTest, FactoriesAndEquality) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(3), Value::Int(3));
  EXPECT_FALSE(Value::Int(3) == Value::Int(4));
  EXPECT_EQ(Value::Str("x"), Value::Str("x"));
  EXPECT_FALSE(Value::Int(3) == Value::Str("3"));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(-5).ToString(), "-5");
  EXPECT_EQ(Value::Str("abc").ToString(), "abc");
}

TEST(ColumnTest, DictionaryAssignsDenseIds) {
  Column c("a", Column::Type::kInt64);
  EXPECT_TRUE(c.AppendInt64(10).ok());
  EXPECT_TRUE(c.AppendInt64(20).ok());
  EXPECT_TRUE(c.AppendInt64(10).ok());
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.Cardinality(), 2u);
  EXPECT_EQ(c.ValueIdAt(0), 0u);
  EXPECT_EQ(c.ValueIdAt(1), 1u);
  EXPECT_EQ(c.ValueIdAt(2), 0u);
  EXPECT_EQ(c.ValueOf(1), Value::Int(20));
}

TEST(ColumnTest, NullsUseSentinel) {
  Column c("a", Column::Type::kInt64);
  EXPECT_TRUE(c.AppendNull().ok());
  EXPECT_TRUE(c.AppendInt64(1).ok());
  EXPECT_TRUE(c.HasNulls());
  EXPECT_EQ(c.ValueIdAt(0), kNullValueId);
  EXPECT_TRUE(c.ValueAt(0).is_null());
  EXPECT_EQ(c.Cardinality(), 1u);
}

TEST(ColumnTest, TypeMismatchRejected) {
  Column c("a", Column::Type::kInt64);
  EXPECT_EQ(c.AppendString("x").code(), StatusCode::kInvalidArgument);
  Column s("b", Column::Type::kString);
  EXPECT_EQ(s.AppendInt64(1).code(), StatusCode::kInvalidArgument);
}

TEST(ColumnTest, LookupFindsExistingValues) {
  Column c("a", Column::Type::kString);
  EXPECT_TRUE(c.AppendString("x").ok());
  EXPECT_TRUE(c.AppendString("y").ok());
  EXPECT_EQ(c.Lookup(Value::Str("y")), std::optional<ValueId>(1));
  EXPECT_EQ(c.Lookup(Value::Str("z")), std::nullopt);
  EXPECT_EQ(c.Lookup(Value::Null()), std::nullopt);
}

TEST(ColumnTest, IdsInRange) {
  Column c("a", Column::Type::kInt64);
  for (int64_t v : {5, 1, 9, 3, 7}) {
    EXPECT_TRUE(c.AppendInt64(v).ok());
  }
  const std::vector<ValueId> ids = c.IdsInRange(3, 7);
  // Values 5 (id 0), 3 (id 3), 7 (id 4).
  EXPECT_EQ(ids.size(), 3u);
  for (ValueId id : ids) {
    const int64_t v = c.ValueOf(id).int_value;
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
  }
}

TEST(TableTest, AddColumnsThenAppend) {
  Table t("T");
  EXPECT_TRUE(t.AddColumn("a", Column::Type::kInt64).ok());
  EXPECT_TRUE(t.AddColumn("b", Column::Type::kString).ok());
  EXPECT_TRUE(t.AppendRow({Value::Int(1), Value::Str("x")}).ok());
  EXPECT_TRUE(t.AppendRow({Value::Int(2), Value::Null()}).ok());
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.column(0).size(), 2u);
  EXPECT_EQ(t.column(1).size(), 2u);
}

TEST(TableTest, DuplicateColumnRejected) {
  Table t("T");
  EXPECT_TRUE(t.AddColumn("a", Column::Type::kInt64).ok());
  EXPECT_EQ(t.AddColumn("a", Column::Type::kInt64).code(),
            StatusCode::kAlreadyExists);
}

TEST(TableTest, AddColumnAfterRowsRejected) {
  Table t("T");
  EXPECT_TRUE(t.AddColumn("a", Column::Type::kInt64).ok());
  EXPECT_TRUE(t.AppendRow({Value::Int(1)}).ok());
  EXPECT_EQ(t.AddColumn("b", Column::Type::kInt64).code(),
            StatusCode::kFailedPrecondition);
}

TEST(TableTest, ArityMismatchRejected) {
  Table t("T");
  EXPECT_TRUE(t.AddColumn("a", Column::Type::kInt64).ok());
  EXPECT_EQ(t.AppendRow({}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(t.AppendRow({Value::Int(1), Value::Int(2)}).code(),
            StatusCode::kInvalidArgument);
}

TEST(TableTest, TypeErrorLeavesColumnsAligned) {
  Table t("T");
  EXPECT_TRUE(t.AddColumn("a", Column::Type::kInt64).ok());
  EXPECT_TRUE(t.AddColumn("b", Column::Type::kInt64).ok());
  // Second cell has the wrong type: nothing must be appended anywhere.
  EXPECT_FALSE(t.AppendRow({Value::Int(1), Value::Str("bad")}).ok());
  EXPECT_EQ(t.NumRows(), 0u);
  EXPECT_EQ(t.column(0).size(), 0u);
  EXPECT_EQ(t.column(1).size(), 0u);
}

TEST(TableTest, ExistenceBitmapTracksDeletes) {
  Table t("T");
  EXPECT_TRUE(t.AddColumn("a", Column::Type::kInt64).ok());
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(t.AppendRow({Value::Int(i)}).ok());
  }
  EXPECT_TRUE(t.RowExists(2));
  EXPECT_TRUE(t.DeleteRow(2).ok());
  EXPECT_FALSE(t.RowExists(2));
  EXPECT_EQ(t.existence().Count(), 3u);
  EXPECT_EQ(t.DeleteRow(9).code(), StatusCode::kOutOfRange);
}

TEST(TableTest, FindColumnAndIndex) {
  Table t("T");
  EXPECT_TRUE(t.AddColumn("a", Column::Type::kInt64).ok());
  EXPECT_TRUE(t.AddColumn("b", Column::Type::kInt64).ok());
  const auto col = t.FindColumn("b");
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->name(), "b");
  EXPECT_EQ(*t.ColumnIndex("b"), 1u);
  EXPECT_EQ(t.FindColumn("zz").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(t.ColumnIndex("zz").status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace ebi
