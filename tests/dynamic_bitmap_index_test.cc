#include "index/dynamic_bitmap_index.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/bit_util.h"

namespace ebi {
namespace {

using testing_util::IntTable;
using testing_util::RandomIntTable;
using testing_util::ScanEquals;

TEST(DynamicBitmapIndexTest, UsesLogNVectorsWithoutReservedCodes) {
  // Sarawagi's scheme: n values on exactly ceil(log2 n) bit vectors, no
  // void/NULL codewords.
  auto table = IntTable({10, 20, 30, 40});
  IoAccountant io;
  DynamicBitmapIndex index(&table->column(0), &table->existence(), &io);
  ASSERT_TRUE(index.Build().ok());
  EXPECT_EQ(index.NumVectors(), static_cast<size_t>(Log2Ceil(4)));
  EXPECT_EQ(index.Name(), "dynamic-bitmap");
}

TEST(DynamicBitmapIndexTest, AnswersMatchScan) {
  auto table = RandomIntTable(250, 40, 8);
  IoAccountant io;
  DynamicBitmapIndex index(&table->column(0), &table->existence(), &io);
  ASSERT_TRUE(index.Build().ok());
  for (int64_t v = 0; v < 40; v += 6) {
    const auto result = index.EvaluateEquals(Value::Int(v));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result, ScanEquals(*table, table->column(0), v)) << v;
  }
}

TEST(DynamicBitmapIndexTest, ExistenceAlwaysAnded) {
  auto table = IntTable({1, 1});
  IoAccountant io;
  DynamicBitmapIndex index(&table->column(0), &table->existence(), &io);
  ASSERT_TRUE(index.Build().ok());
  ASSERT_TRUE(table->DeleteRow(0).ok());
  const auto result = index.EvaluateEquals(Value::Int(1));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "01");
}

TEST(DynamicBitmapIndexTest, AppendWorks) {
  auto table = IntTable({1, 2});
  IoAccountant io;
  DynamicBitmapIndex index(&table->column(0), &table->existence(), &io);
  ASSERT_TRUE(index.Build().ok());
  ASSERT_TRUE(table->AppendRow({Value::Int(3)}).ok());
  ASSERT_TRUE(index.Append(2).ok());
  const auto result = index.EvaluateEquals(Value::Int(3));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "001");
}

TEST(DynamicBitmapIndexTest, RangeDelegates) {
  auto table = IntTable({5, 6, 7, 8});
  IoAccountant io;
  DynamicBitmapIndex index(&table->column(0), &table->existence(), &io);
  ASSERT_TRUE(index.Build().ok());
  const auto result = index.EvaluateRange(6, 7);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "0110");
}

}  // namespace
}  // namespace ebi
