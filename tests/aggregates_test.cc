#include "query/aggregates.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ebi {
namespace {

using testing_util::IntTable;
using testing_util::RandomIntTable;

class AggregatesTest : public ::testing::Test {
 protected:
  void Init(std::unique_ptr<Table> table) {
    table_ = std::move(table);
    index_ = std::make_unique<BitSlicedIndex>(&table_->column(0),
                                              &table_->existence(), &io_);
    ASSERT_TRUE(index_->Build().ok());
  }

  IoAccountant io_;
  std::unique_ptr<Table> table_;
  std::unique_ptr<BitSlicedIndex> index_;
};

TEST_F(AggregatesTest, CountRows) {
  BitVector rows(10);
  rows.Set(1);
  rows.Set(5);
  EXPECT_EQ(CountRows(rows), 2u);
}

TEST_F(AggregatesTest, SumBitSlicedMatchesScan) {
  Init(IntTable({3, 14, 15, 92, 65, 35}));
  BitVector rows(6, true);
  const auto sliced = SumBitSliced(index_.get(), rows);
  const auto scanned = SumByScan(table_->column(0), rows);
  ASSERT_TRUE(sliced.ok());
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(*sliced, *scanned);
  EXPECT_EQ(*sliced, 3 + 14 + 15 + 92 + 65 + 35);
}

TEST_F(AggregatesTest, SumOverSelection) {
  Init(IntTable({10, 20, 30, 40}));
  BitVector rows(4);
  rows.Set(1);
  rows.Set(2);
  EXPECT_EQ(*SumBitSliced(index_.get(), rows), 50);
}

TEST_F(AggregatesTest, AvgBitSliced) {
  Init(IntTable({10, 20, 30, 40}));
  BitVector all(4, true);
  bool empty = true;
  const auto avg = AvgBitSliced(index_.get(), all, &empty);
  ASSERT_TRUE(avg.ok());
  EXPECT_FALSE(empty);
  EXPECT_DOUBLE_EQ(*avg, 25.0);
}

TEST_F(AggregatesTest, AvgOfEmptySelection) {
  Init(IntTable({10, 20}));
  bool empty = false;
  const auto avg = AvgBitSliced(index_.get(), BitVector(2), &empty);
  ASSERT_TRUE(avg.ok());
  EXPECT_TRUE(empty);
  EXPECT_DOUBLE_EQ(*avg, 0.0);
}

TEST_F(AggregatesTest, SumByScanSkipsNulls) {
  auto table = IntTable({5, INT64_MIN, 7});
  BitVector rows(3, true);
  rows.Reset(1);
  EXPECT_EQ(*SumByScan(table->column(0), rows), 12);
}

TEST_F(AggregatesTest, RandomizedSumAgreement) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    Init(RandomIntTable(500, 1000, seed));
    Rng rng(seed + 9);
    BitVector rows(500);
    for (size_t i = 0; i < 500; ++i) {
      if (rng.Bernoulli(0.3)) {
        rows.Set(i);
      }
    }
    EXPECT_EQ(*SumBitSliced(index_.get(), rows),
              *SumByScan(table_->column(0), rows))
        << seed;
  }
}

TEST_F(AggregatesTest, MinMaxMedianWrappers) {
  Init(IntTable({8, 3, 11, 6, 9}));
  BitVector all(5, true);
  EXPECT_EQ(*MinBitSliced(index_.get(), all), 3);
  EXPECT_EQ(*MaxBitSliced(index_.get(), all), 11);
  EXPECT_EQ(*MedianBitSliced(index_.get(), all), 8);
}

TEST_F(AggregatesTest, MedianOverSelection) {
  Init(IntTable({1, 100, 2, 100, 3}));
  BitVector odds(5);
  odds.Set(0);
  odds.Set(2);
  odds.Set(4);
  EXPECT_EQ(*MedianBitSliced(index_.get(), odds), 2);
}

TEST_F(AggregatesTest, SumOnStringColumnRejected) {
  Table table("T");
  ASSERT_TRUE(table.AddColumn("s", Column::Type::kString).ok());
  ASSERT_TRUE(table.AppendRow({Value::Str("x")}).ok());
  BitVector rows(1, true);
  EXPECT_EQ(SumByScan(table.column(0), rows).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ebi
