// Long-running randomized end-to-end stress: a three-column table managed
// by IndexManager with a full complement of index families, driven through
// thousands of interleaved appends, deletes, and planned selections, each
// checked against the scan reference. This is the closest thing to a
// soak test the library has.

#include <gtest/gtest.h>

#include "ebi/ebi.h"

namespace ebi {
namespace {

class StressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = std::make_unique<Table>("F");
    ASSERT_TRUE(table_->AddColumn("a", Column::Type::kInt64).ok());
    ASSERT_TRUE(table_->AddColumn("b", Column::Type::kInt64).ok());
    ASSERT_TRUE(table_->AddColumn("c", Column::Type::kInt64).ok());
    Rng rng(2026);
    // Pin the measure column's minimum so later appends never fall below
    // the bit-sliced index's bias.
    ASSERT_TRUE(
        table_->AppendRow({Value::Int(0), Value::Int(0), Value::Int(0)})
            .ok());
    for (int r = 0; r < 1499; ++r) {
      ASSERT_TRUE(table_->AppendRow(Row(&rng)).ok());
    }
    manager_ = std::make_unique<IndexManager>(table_.get(), &io_);
    ASSERT_TRUE(manager_->CreateIndex("a", IndexKind::kSimpleBitmap).ok());
    ASSERT_TRUE(manager_->CreateIndex("a", IndexKind::kEncodedBitmap).ok());
    ASSERT_TRUE(manager_->CreateIndex("b", IndexKind::kEncodedBitmap).ok());
    ASSERT_TRUE(manager_->CreateIndex("b", IndexKind::kBTree).ok());
    ASSERT_TRUE(manager_->CreateIndex("c", IndexKind::kBitSliced).ok());
    ASSERT_TRUE(manager_->CreateIndex("c", IndexKind::kValueList).ok());
    executor_ =
        std::make_unique<SelectionExecutor>(table_.get(), &io_);
  }

  std::vector<Value> Row(Rng* rng) {
    return {Value::Int(static_cast<int64_t>(rng->UniformInt(80))),
            rng->Bernoulli(0.05)
                ? Value::Null()
                : Value::Int(static_cast<int64_t>(rng->UniformInt(40))),
            Value::Int(static_cast<int64_t>(rng->UniformInt(1000)))};
  }

  Predicate RandomPredicate(Rng* rng) {
    const int which = static_cast<int>(rng->UniformInt(4));
    switch (which) {
      case 0:
        return Predicate::Eq(
            "a", Value::Int(static_cast<int64_t>(rng->UniformInt(90))));
      case 1: {
        std::vector<Value> values;
        const size_t width = 1 + rng->UniformInt(12);
        for (size_t i = 0; i < width; ++i) {
          values.push_back(
              Value::Int(static_cast<int64_t>(rng->UniformInt(45))));
        }
        return Predicate::In("b", std::move(values));
      }
      case 2: {
        const int64_t lo = static_cast<int64_t>(rng->UniformInt(1000));
        return Predicate::Between(
            "c", lo, lo + static_cast<int64_t>(rng->UniformInt(300)));
      }
      default:
        return Predicate::IsNull("b");
    }
  }

  IoAccountant io_;
  std::unique_ptr<Table> table_;
  std::unique_ptr<IndexManager> manager_;
  std::unique_ptr<SelectionExecutor> executor_;
};

TEST_F(StressTest, ThousandsOfMixedOperationsStayConsistent) {
  Rng rng(777);
  size_t queries_checked = 0;
  for (int step = 0; step < 2500; ++step) {
    const double roll = rng.UniformDouble();
    if (roll < 0.35) {
      ASSERT_TRUE(manager_->AppendRow(Row(&rng)).ok()) << step;
    } else if (roll < 0.45) {
      const size_t victim =
          static_cast<size_t>(rng.UniformInt(table_->NumRows()));
      if (table_->RowExists(victim)) {
        ASSERT_TRUE(manager_->DeleteRow(victim).ok()) << step;
      }
    } else {
      std::vector<Predicate> query = {RandomPredicate(&rng)};
      if (rng.Bernoulli(0.4)) {
        query.push_back(RandomPredicate(&rng));
      }
      const auto planned = manager_->Select(query);
      ASSERT_TRUE(planned.ok()) << step;
      const auto scanned = executor_->SelectByScan(query);
      ASSERT_TRUE(scanned.ok()) << step;
      ASSERT_EQ(planned->rows, *scanned)
          << "step " << step << ": " << query[0].ToString();
      ++queries_checked;
    }
  }
  EXPECT_GT(queries_checked, 1000u);
  EXPECT_GT(table_->NumRows(), 1500u);
}

TEST_F(StressTest, IsNullPlannedMatchesScanUnderChurn) {
  Rng rng(31);
  for (int step = 0; step < 300; ++step) {
    ASSERT_TRUE(manager_->AppendRow(Row(&rng)).ok());
  }
  const std::vector<Predicate> query = {Predicate::IsNull("b")};
  const auto planned = manager_->Select(query);
  const auto scanned = executor_->SelectByScan(query);
  ASSERT_TRUE(planned.ok());
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(planned->rows, *scanned);
  EXPECT_GT(planned->count, 0u);
}

}  // namespace
}  // namespace ebi
