#include "storage/bitmap_store.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace ebi {
namespace {

std::string TempPath(const char* tag) {
  return std::string(::testing::TempDir()) + "/ebi_store_" + tag + ".bin";
}

BitVector RandomBits(size_t n, uint64_t seed) {
  Rng rng(seed);
  BitVector v(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.4)) {
      v.Set(i);
    }
  }
  return v;
}

TEST(BitmapStoreTest, PutGetRoundTrip) {
  IoAccountant io;
  auto store = BitmapStore::Open(TempPath("roundtrip"), 4, &io);
  ASSERT_TRUE(store.ok());
  const BitVector bits = RandomBits(1000, 1);
  const auto id = store->Put(bits);
  ASSERT_TRUE(id.ok());
  const auto loaded = store->Get(*id);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, bits);
}

TEST(BitmapStoreTest, PoolHitsAreFree) {
  IoAccountant io;
  auto store = BitmapStore::Open(TempPath("hits"), 4, &io);
  ASSERT_TRUE(store.ok());
  const auto id = store->Put(RandomBits(512, 2));
  ASSERT_TRUE(id.ok());
  io.Reset();
  ASSERT_TRUE(store->Get(*id).ok());
  ASSERT_TRUE(store->Get(*id).ok());
  EXPECT_EQ(io.stats().vectors_read, 0u);  // Both were pool hits.
  EXPECT_EQ(store->stats().hits, 2u);
}

TEST(BitmapStoreTest, EvictionChargesReRead) {
  IoAccountant io;
  auto store = BitmapStore::Open(TempPath("evict"), 2, &io);
  ASSERT_TRUE(store.ok());
  std::vector<BitmapStore::VectorId> ids;
  std::vector<BitVector> originals;
  for (uint64_t i = 0; i < 5; ++i) {
    originals.push_back(RandomBits(800, i + 10));
    const auto id = store->Put(originals.back());
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  EXPECT_EQ(store->Resident(), 2u);
  EXPECT_GT(store->stats().evictions, 0u);

  io.Reset();
  // Vector 0 was evicted long ago: the read must hit the file and charge.
  const auto reloaded = store->Get(ids[0]);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(*reloaded, originals[0]);
  EXPECT_EQ(io.stats().vectors_read, 1u);
  EXPECT_GT(store->stats().misses, 0u);
}

TEST(BitmapStoreTest, LruOrderKeepsHotVectors) {
  IoAccountant io;
  auto store = BitmapStore::Open(TempPath("lru"), 2, &io);
  ASSERT_TRUE(store.ok());
  const auto a = store->Put(RandomBits(100, 21));
  const auto b = store->Put(RandomBits(100, 22));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Touch a so b is the LRU victim when c arrives.
  ASSERT_TRUE(store->Get(*a).ok());
  const auto c = store->Put(RandomBits(100, 23));
  ASSERT_TRUE(c.ok());
  io.Reset();
  ASSERT_TRUE(store->Get(*a).ok());  // Still resident.
  EXPECT_EQ(io.stats().vectors_read, 0u);
  ASSERT_TRUE(store->Get(*b).ok());  // Evicted: charged.
  EXPECT_EQ(io.stats().vectors_read, 1u);
}

TEST(BitmapStoreTest, UpdateInPlaceAndRelocation) {
  IoAccountant io;
  auto store = BitmapStore::Open(TempPath("update"), 1, &io);
  ASSERT_TRUE(store.ok());
  const auto id = store->Put(RandomBits(256, 31));
  ASSERT_TRUE(id.ok());
  // Same size: in place.
  const BitVector smaller = RandomBits(256, 32);
  ASSERT_TRUE(store->Update(*id, smaller).ok());
  EXPECT_EQ(*store->Get(*id), smaller);
  // Larger: relocated to a new slot.
  const BitVector bigger = RandomBits(4096, 33);
  ASSERT_TRUE(store->Update(*id, bigger).ok());
  EXPECT_EQ(*store->Get(*id), bigger);
}

TEST(BitmapStoreTest, ManyVectorsSurviveThrashing) {
  IoAccountant io;
  auto store = BitmapStore::Open(TempPath("thrash"), 3, &io);
  ASSERT_TRUE(store.ok());
  std::vector<BitVector> originals;
  std::vector<BitmapStore::VectorId> ids;
  for (uint64_t i = 0; i < 20; ++i) {
    originals.push_back(RandomBits(64 * (i + 1), i + 40));
    const auto id = store->Put(originals.back());
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  Rng rng(50);
  for (int access = 0; access < 100; ++access) {
    const size_t pick = static_cast<size_t>(rng.UniformInt(ids.size()));
    const auto bits = store->Get(ids[pick]);
    ASSERT_TRUE(bits.ok());
    EXPECT_EQ(*bits, originals[pick]) << pick;
  }
  EXPECT_GT(store->stats().HitRate(), 0.0);
  EXPECT_LT(store->stats().HitRate(), 1.0);
}

TEST(BitmapStoreTest, InvalidArguments) {
  IoAccountant io;
  EXPECT_FALSE(BitmapStore::Open(TempPath("zero"), 0, &io).ok());
  auto store = BitmapStore::Open(TempPath("bounds"), 2, &io);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->Get(99).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(store->Update(99, BitVector(8)).code(),
            StatusCode::kOutOfRange);
}

TEST(BitmapStoreTest, CompressedFormatsRoundTrip) {
  for (BitmapFormat format :
       {BitmapFormat::kPlain, BitmapFormat::kRle, BitmapFormat::kEwah}) {
    IoAccountant io;
    auto store = BitmapStore::Open(
        TempPath(BitmapFormatName(format)), 2, &io, format);
    ASSERT_TRUE(store.ok());
    EXPECT_EQ(store->format(), format);
    std::vector<BitVector> originals;
    std::vector<BitmapStore::VectorId> ids;
    // Sizes crossing word boundaries, sparse and dense alike.
    for (uint64_t i = 0; i < 8; ++i) {
      originals.push_back(RandomBits(60 + 77 * i, i + 60));
      const auto id = store->Put(originals.back());
      ASSERT_TRUE(id.ok());
      ids.push_back(*id);
    }
    // Capacity 2 of 8: most of these reads fault from the file, so they
    // exercise the full serialize/deserialize round trip per format.
    for (size_t i = 0; i < ids.size(); ++i) {
      const auto bits = store->Get(ids[i]);
      ASSERT_TRUE(bits.ok());
      EXPECT_EQ(*bits, originals[i]) << BitmapFormatName(format) << " " << i;
    }
  }
}

TEST(BitmapStoreTest, CompressedSlotsChargeFewerBytes) {
  // A long run-dominated vector: tiny in RLE/EWAH, 16 KB plain.
  BitVector bits(1 << 17);
  for (size_t i = 1000; i < 1200; ++i) {
    bits.Set(i);
  }
  uint64_t plain_bytes = 0;
  for (BitmapFormat format :
       {BitmapFormat::kPlain, BitmapFormat::kRle, BitmapFormat::kEwah}) {
    IoAccountant io;
    auto store = BitmapStore::Open(
        TempPath((std::string("charge_") + BitmapFormatName(format)).c_str()),
        1, &io, format);
    ASSERT_TRUE(store.ok());
    const auto id = store->Put(bits);
    ASSERT_TRUE(id.ok());
    // Push the vector out of the pool so the next Get faults and charges.
    ASSERT_TRUE(store->Put(BitVector(64)).ok());
    io.Reset();
    const auto loaded = store->Get(*id);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(*loaded, bits);
    EXPECT_EQ(io.stats().vectors_read, 1u);
    const auto stored = store->StoredBytes(*id);
    ASSERT_TRUE(stored.ok());
    EXPECT_EQ(io.stats().bytes_read, *stored);
    if (format == BitmapFormat::kPlain) {
      plain_bytes = io.stats().bytes_read;
    } else {
      // The whole point of compressed slots: a miss costs far less I/O.
      EXPECT_LT(io.stats().bytes_read, plain_bytes / 10)
          << BitmapFormatName(format);
    }
  }
}

TEST(BitmapStoreTest, UpdateRelocatesAcrossFormats) {
  for (BitmapFormat format : {BitmapFormat::kRle, BitmapFormat::kEwah}) {
    IoAccountant io;
    auto store = BitmapStore::Open(
        TempPath((std::string("upd_") + BitmapFormatName(format)).c_str()),
        1, &io, format);
    ASSERT_TRUE(store.ok());
    // Starts highly compressible, update makes it incompressible (bigger
    // payload => relocation), then compressible again (in-place).
    const auto id = store->Put(BitVector(5000));
    ASSERT_TRUE(id.ok());
    const BitVector noisy = RandomBits(5000, 77);
    ASSERT_TRUE(store->Update(*id, noisy).ok());
    EXPECT_EQ(*store->Get(*id), noisy);
    const BitVector ones(5000, true);
    ASSERT_TRUE(store->Update(*id, ones).ok());
    EXPECT_EQ(*store->Get(*id), ones);
  }
}

TEST(BitmapStoreTest, EmptyVectorStored) {
  IoAccountant io;
  auto store = BitmapStore::Open(TempPath("empty"), 2, &io);
  ASSERT_TRUE(store.ok());
  const auto id = store->Put(BitVector());
  ASSERT_TRUE(id.ok());
  const auto bits = store->Get(*id);
  ASSERT_TRUE(bits.ok());
  EXPECT_EQ(bits->size(), 0u);
}

}  // namespace
}  // namespace ebi
