#include "obs/explain.h"

#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "index/encoded_bitmap_index.h"
#include "index/simple_bitmap_index.h"
#include "query/planner.h"
#include "storage/table.h"

namespace ebi {
namespace {

using obs::AttrValue;
using obs::ExplainJson;
using obs::ExplainOptions;
using obs::ExplainText;
using obs::QueryTrace;
using obs::ScopedSpan;
using obs::TraceScope;

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON reader, just enough to round-trip the
// documents ExplainJson emits (objects, arrays, strings, numbers, bools).

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool b = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Get(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    return ParseValue(out) && (SkipSpace(), pos_ == text_.size());
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) {
      return false;
    }
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return false;
            }
            c = static_cast<char>(
                std::stoi(text_.substr(pos_, 4), nullptr, 16));
            pos_ += 4;
            break;
          }
          default: c = esc; break;
        }
      }
      *out += c;
    }
    return pos_ < text_.size() && text_[pos_++] == '"';
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->type = JsonValue::Type::kObject;
      if (Consume('}')) {
        return true;
      }
      do {
        std::string key;
        JsonValue value;
        if (!ParseString(&key) || !Consume(':') || !ParseValue(&value)) {
          return false;
        }
        out->object.emplace_back(std::move(key), std::move(value));
      } while (Consume(','));
      return Consume('}');
    }
    if (c == '[') {
      ++pos_;
      out->type = JsonValue::Type::kArray;
      if (Consume(']')) {
        return true;
      }
      do {
        JsonValue value;
        if (!ParseValue(&value)) {
          return false;
        }
        out->array.push_back(std::move(value));
      } while (Consume(','));
      return Consume(']');
    }
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->str);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->type = JsonValue::Type::kBool;
      out->b = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->type = JsonValue::Type::kBool;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      return false;
    }
    out->type = JsonValue::Type::kNumber;
    out->number = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------

/// A hand-built deterministic trace mirroring the span vocabulary the
/// query layer emits.
void BuildSampleTrace(QueryTrace* trace) {
  const TraceScope install(trace);
  ScopedSpan select("planner.select");
  {
    ScopedSpan pred("predicate");
    pred.Attr("column", "product");
    pred.Attr("pred", "product IN (1, 2)");
    {
      ScopedSpan eval("index.eval");
      eval.Attr("index", "encoded-bitmap");
      eval.Attr("delta", uint64_t{2});
      {
        ScopedSpan reduce("boolean.reduce");
        reduce.Attr("terms_in", uint64_t{2});
        reduce.Attr("terms_out", uint64_t{1});
      }
    }
    pred.Attr("rows", uint64_t{120});
  }
  select.Attr("predicates", uint64_t{1});
  select.Attr("rows", uint64_t{120});
}

TEST(ExplainTest, GoldenText) {
  QueryTrace trace;
  BuildSampleTrace(&trace);
  // Timing is off by default, so this rendering is fully deterministic.
  EXPECT_EQ(ExplainText(trace),
            "query\n"
            "  planner.select predicates=1 rows=120\n"
            "    predicate column=product pred=\"product IN (1, 2)\" "
            "rows=120\n"
            "      index.eval index=encoded-bitmap delta=2\n"
            "        boolean.reduce terms_in=2 terms_out=1\n");
}

TEST(ExplainTest, TextIndentIsConfigurable) {
  QueryTrace trace;
  BuildSampleTrace(&trace);
  ExplainOptions options;
  options.indent = 4;
  const std::string text = ExplainText(trace, options);
  EXPECT_NE(text.find("\n    planner.select"), std::string::npos);
  EXPECT_NE(text.find("\n        predicate"), std::string::npos);
}

TEST(ExplainTest, TimingLinesAppearOnRequest) {
  QueryTrace trace;
  BuildSampleTrace(&trace);
  EXPECT_EQ(ExplainText(trace).find("elapsed_ms"), std::string::npos);
  ExplainOptions options;
  options.include_timing = true;
  EXPECT_NE(ExplainText(trace, options).find("elapsed_ms="),
            std::string::npos);
}

TEST(ExplainTest, JsonRoundTripsTheTree) {
  QueryTrace trace;
  BuildSampleTrace(&trace);
  const std::string json = ExplainJson(trace);
  JsonValue doc;
  ASSERT_TRUE(JsonReader(json).Parse(&doc)) << json;

  ASSERT_EQ(doc.type, JsonValue::Type::kObject);
  ASSERT_NE(doc.Get("name"), nullptr);
  EXPECT_EQ(doc.Get("name")->str, "query");
  const JsonValue* children = doc.Get("children");
  ASSERT_NE(children, nullptr);
  ASSERT_EQ(children->array.size(), 1u);

  const JsonValue& select = children->array[0];
  EXPECT_EQ(select.Get("name")->str, "planner.select");
  const JsonValue* select_attrs = select.Get("attrs");
  ASSERT_NE(select_attrs, nullptr);
  EXPECT_EQ(select_attrs->Get("rows")->number, 120.0);

  const JsonValue& pred = select.Get("children")->array[0];
  EXPECT_EQ(pred.Get("name")->str, "predicate");
  // The quoted string survives escaping and un-escaping.
  EXPECT_EQ(pred.Get("attrs")->Get("pred")->str, "product IN (1, 2)");

  const JsonValue& eval = pred.Get("children")->array[0];
  EXPECT_EQ(eval.Get("name")->str, "index.eval");
  const JsonValue& reduce = eval.Get("children")->array[0];
  EXPECT_EQ(reduce.Get("name")->str, "boolean.reduce");
  EXPECT_EQ(reduce.Get("attrs")->Get("terms_in")->number, 2.0);
  EXPECT_EQ(reduce.Get("attrs")->Get("terms_out")->number, 1.0);
}

// ---------------------------------------------------------------------------
// End-to-end: EXPLAIN of a real multi-value selection on an encoded index
// must report the paper's costs — minterms before/after Boolean reduction
// and the vectors actually read, equal to the IoAccountant's delta.

std::unique_ptr<Table> RoundRobinTable(size_t n, size_t m) {
  auto table = std::make_unique<Table>("T");
  EXPECT_TRUE(table->AddColumn("a", Column::Type::kInt64).ok());
  for (size_t r = 0; r < n; ++r) {
    EXPECT_TRUE(
        table->AppendRow({Value::Int(static_cast<int64_t>(r % m))}).ok());
  }
  return table;
}

TEST(ExplainTest, EncodedSelectionReportsReductionAndVectorsRead) {
  const size_t m = 20;
  auto table = RoundRobinTable(2000, m);
  IoAccountant io;
  EncodedBitmapIndex encoded(&table->column(0), &table->existence(), &io);
  ASSERT_TRUE(encoded.Build().ok());
  AccessPathPlanner planner(table.get(), &io);
  planner.RegisterIndex("a", &encoded);

  // Consecutive IN-list of width 8 > log2(20): the encoded-bitmap sweet
  // spot, and wide enough that reduction must collapse minterms.
  std::vector<Value> values;
  for (int64_t v = 0; v < 8; ++v) {
    values.push_back(Value::Int(v));
  }

  QueryTrace trace;
  const IoScope scope(&io);
  const auto sel = planner.ExplainSelect({Predicate::In("a", values)}, &trace);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->count, 800u);  // 8 of 20 values, round-robin over 2000.
  const IoStats delta = scope.Delta();

  // Minterms before and after Boolean reduction.
  const obs::TraceSpan* reduce = trace.Find("boolean.reduce");
  ASSERT_NE(reduce, nullptr);
  EXPECT_EQ(reduce->AttrUint("terms_in"), 8u);
  const uint64_t terms_out = reduce->AttrUint("terms_out", 999);
  EXPECT_GE(terms_out, 1u);
  EXPECT_LT(terms_out, 8u);

  // Vectors actually read by cover evaluation == the accountant's delta.
  const obs::TraceSpan* cover = trace.Find("cover.eval");
  ASSERT_NE(cover, nullptr);
  const uint64_t vectors_read = cover->AttrUint("vectors_read", 999);
  EXPECT_EQ(vectors_read, delta.vectors_read);
  EXPECT_EQ(vectors_read, sel->io.vectors_read);
  // Theorem 2.1: the reserved void codeword removes the existence AND.
  const AttrValue* existence = cover->FindAttr("existence_and");
  ASSERT_NE(existence, nullptr);
  EXPECT_FALSE(existence->bool_value());
  // And the encoded cost stays within the paper's ceiling ceil(log2 m).
  EXPECT_LE(vectors_read, 5u);

  // The whole story renders: every cost above appears in the text plan.
  const std::string text = ExplainText(trace);
  EXPECT_NE(text.find("planner.select"), std::string::npos);
  EXPECT_NE(text.find("plan.choose"), std::string::npos);
  EXPECT_NE(text.find("boolean.reduce"), std::string::npos);
  EXPECT_NE(text.find("terms_in=8"), std::string::npos);
  EXPECT_NE(text.find("vectors_read="), std::string::npos);
}

TEST(ExplainTest, ExplainSelectMatchesPlainSelectCosts) {
  // EXPLAIN ANALYZE must not perturb the measurement: the same query with
  // and without a trace sink charges identical I/O.
  auto table = RoundRobinTable(2000, 20);
  IoAccountant io;
  EncodedBitmapIndex encoded(&table->column(0), &table->existence(), &io);
  ASSERT_TRUE(encoded.Build().ok());
  AccessPathPlanner planner(table.get(), &io);
  planner.RegisterIndex("a", &encoded);
  std::vector<Value> values;
  for (int64_t v = 3; v < 9; ++v) {
    values.push_back(Value::Int(v));
  }
  const std::vector<Predicate> query = {Predicate::In("a", values)};

  const auto plain = planner.Select(query);
  ASSERT_TRUE(plain.ok());
  QueryTrace trace;
  const auto traced = planner.ExplainSelect(query, &trace);
  ASSERT_TRUE(traced.ok());
  EXPECT_EQ(plain->count, traced->count);
  EXPECT_EQ(plain->io, traced->io);
}

}  // namespace
}  // namespace ebi
