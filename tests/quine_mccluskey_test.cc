#include "boolean/quine_mccluskey.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace ebi {
namespace {

bool CoverMatches(const Cover& cover, const std::vector<uint64_t>& onset,
                  const std::vector<uint64_t>& dontcare, int k) {
  std::vector<bool> in_onset(uint64_t{1} << k, false);
  std::vector<bool> in_dc(uint64_t{1} << k, false);
  for (uint64_t m : onset) {
    in_onset[m] = true;
  }
  for (uint64_t m : dontcare) {
    in_dc[m] = true;
  }
  for (uint64_t m = 0; m < (uint64_t{1} << k); ++m) {
    const bool covered = CoverCovers(cover, m);
    if (in_onset[m] && !covered) {
      return false;  // Must cover every onset minterm.
    }
    if (!in_onset[m] && !in_dc[m] && covered) {
      return false;  // Must not cover offset minterms.
    }
  }
  return true;
}

TEST(QuineMcCluskeyTest, EmptyOnsetGivesEmptyCover) {
  EXPECT_TRUE(MinimizeQm({}, {}, 3).empty());
}

TEST(QuineMcCluskeyTest, SingleMinterm) {
  const Cover cover = MinimizeQm({0b101}, {}, 3);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], Cube::MinTerm(0b101, 3));
}

TEST(QuineMcCluskeyTest, FigureOneReduction) {
  // Section 2.2: f_a + f_b = B1'B0' + B1'B0 reduces to B1'.
  const Cover cover = MinimizeQm({0b00, 0b01}, {}, 2);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], Cube(0b00, 0b10));
  EXPECT_EQ(DistinctVariables(cover), 1);
}

TEST(QuineMcCluskeyTest, FullCubeIsTautology) {
  const Cover cover = MinimizeQm({0, 1, 2, 3, 4, 5, 6, 7}, {}, 3);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].mask, 0u);
}

TEST(QuineMcCluskeyTest, Figure3WellDefinedMapping) {
  // Figure 3(a): a=000, b=100, c=001, d=101, e=011, f=111, g=010, h=110.
  // "A IN {a,b,c,d}" -> codes {000,100,001,101} reduces to B1'.
  const Cover abcd = MinimizeQm({0b000, 0b100, 0b001, 0b101}, {}, 3);
  EXPECT_EQ(DistinctVariables(abcd), 1);
  ASSERT_EQ(abcd.size(), 1u);
  EXPECT_EQ(abcd[0], Cube(0b000, 0b010));  // B1'.

  // "A IN {c,d,e,f}" -> codes {001,101,011,111} reduces to B0.
  const Cover cdef = MinimizeQm({0b001, 0b101, 0b011, 0b111}, {}, 3);
  EXPECT_EQ(DistinctVariables(cdef), 1);
  ASSERT_EQ(cdef.size(), 1u);
  EXPECT_EQ(cdef[0], Cube(0b001, 0b001));  // B0.
}

TEST(QuineMcCluskeyTest, Figure3ImproperMappingNeedsThreeVectors) {
  // Figure 3(b): a=000, c=001, g=010, b=011, e=100, d=101, h=110, f=111.
  // "A IN {a,b,c,d}" -> {000,011,001,101}: the paper gives the irreducible
  // B2'B1' + B2'B0 + B1'B0 — three bitmap vectors.
  const std::vector<uint64_t> abcd = {0b000, 0b011, 0b001, 0b101};
  const Cover cover_abcd = MinimizeQm(abcd, {}, 3);
  EXPECT_EQ(DistinctVariables(cover_abcd), 3);
  EXPECT_EQ(cover_abcd.size(), 3u);
  EXPECT_EQ(TotalLiterals(cover_abcd), 6);  // Three 2-literal cubes.

  // "A IN {c,d,e,f}" -> {001,101,100,111}: also three vectors.
  const std::vector<uint64_t> cdef = {0b001, 0b101, 0b100, 0b111};
  const Cover cover_cdef = MinimizeQm(cdef, {}, 3);
  EXPECT_EQ(DistinctVariables(cover_cdef), 3);
}

TEST(QuineMcCluskeyTest, DontCaresEnableBetterCovers) {
  // Onset {00}, dc {01}: the minimizer may (and should) use B1' instead of
  // the 2-literal min-term.
  const Cover cover = MinimizeQm({0b00}, {0b01}, 2);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], Cube(0b00, 0b10));
}

TEST(QuineMcCluskeyTest, DontCaresNotCoveredUnlessUseful) {
  // dc minterms may be covered but the cover must hit all of the onset and
  // none of the offset.
  const std::vector<uint64_t> onset = {0, 2, 5, 7};
  const std::vector<uint64_t> dc = {1, 6};
  const Cover cover = MinimizeQm(onset, dc, 3);
  EXPECT_TRUE(CoverMatches(cover, onset, dc, 3));
}

TEST(QuineMcCluskeyTest, XorFunctionNeedsAllMinterms) {
  // XOR has no adjacent minterms; cover stays at two 2-literal cubes.
  const Cover cover = MinimizeQm({0b01, 0b10}, {}, 2);
  EXPECT_EQ(cover.size(), 2u);
  EXPECT_EQ(TotalLiterals(cover), 4);
}

TEST(QuineMcCluskeyTest, PrimeImplicantsOfFullSquare) {
  const std::vector<Cube> primes = PrimeImplicants({0, 1, 2, 3}, {}, 2);
  ASSERT_EQ(primes.size(), 1u);
  EXPECT_EQ(primes[0].mask, 0u);
}

TEST(QuineMcCluskeyTest, PrimeImplicantsClassic) {
  // Classic example: f(x2,x1,x0) with onset {0,1,2,5,6,7}: primes are
  // x2'x1', x1'x0, x2'x0', x1x0', x2x0, x2x1.
  const std::vector<Cube> primes = PrimeImplicants({0, 1, 2, 5, 6, 7}, {}, 3);
  EXPECT_EQ(primes.size(), 6u);
  for (const Cube& p : primes) {
    EXPECT_EQ(p.NumLiterals(), 2);
  }
}

TEST(QuineMcCluskeyTest, ClassicMinimalCoverSize) {
  // The onset above has two minimal covers of size 3.
  const Cover cover = MinimizeQm({0, 1, 2, 5, 6, 7}, {}, 3);
  EXPECT_EQ(cover.size(), 3u);
  EXPECT_TRUE(CoverMatches(cover, {0, 1, 2, 5, 6, 7}, {}, 3));
}

TEST(QuineMcCluskeyTest, PrefixSelectionsReduceLikePaperSection31) {
  // Consecutive codes [0, 2^j) over k bits must reduce to k-j variables.
  const int k = 6;
  for (int j = 0; j <= k; ++j) {
    std::vector<uint64_t> onset;
    for (uint64_t c = 0; c < (uint64_t{1} << j); ++c) {
      onset.push_back(c);
    }
    const Cover cover = MinimizeQm(onset, {}, k);
    EXPECT_EQ(DistinctVariables(cover), k - j) << "j=" << j;
  }
}

class QmRandomPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(QmRandomPropertyTest, CoverIsEquivalentAndIrredundant) {
  const int seed = GetParam();
  Rng rng(seed);
  const int k = 2 + static_cast<int>(rng.UniformInt(4));  // 2..5 vars.
  const uint64_t space = uint64_t{1} << k;
  std::vector<uint64_t> onset;
  std::vector<uint64_t> dc;
  for (uint64_t m = 0; m < space; ++m) {
    const double roll = rng.UniformDouble();
    if (roll < 0.4) {
      onset.push_back(m);
    } else if (roll < 0.5) {
      dc.push_back(m);
    }
  }
  const Cover cover = MinimizeQm(onset, dc, k);
  EXPECT_TRUE(CoverMatches(cover, onset, dc, k)) << "seed=" << seed;

  // Irredundancy: dropping any cube must break coverage of the onset.
  for (size_t drop = 0; drop < cover.size(); ++drop) {
    Cover without;
    for (size_t i = 0; i < cover.size(); ++i) {
      if (i != drop) {
        without.push_back(cover[i]);
      }
    }
    bool all_covered = true;
    for (uint64_t m : onset) {
      if (!CoverCovers(without, m)) {
        all_covered = false;
        break;
      }
    }
    EXPECT_FALSE(all_covered && !onset.empty())
        << "cube " << drop << " redundant, seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QmRandomPropertyTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace ebi
