#include "encoding/chain.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace ebi {
namespace {

TEST(ChainTest, PaperPrimeChainExample) {
  // After Definition 2.4: <000, 100, 110, 010> is a prime chain on
  // {000, 110, 010, 100}.
  const std::vector<uint64_t> seq = {0b000, 0b100, 0b110, 0b010};
  EXPECT_TRUE(IsChain(seq));
  EXPECT_TRUE(IsPrimeChain(seq));
}

TEST(ChainTest, PaperNoChainExample) {
  // "no chain can be defined on {001, 011, 111}".
  EXPECT_FALSE(FindChain({0b001, 0b011, 0b111}).has_value());
}

TEST(ChainTest, IsChainRejectsNonAdjacentStep) {
  EXPECT_FALSE(IsChain({0b000, 0b011, 0b010}));
}

TEST(ChainTest, IsChainRejectsOpenCycle) {
  // 00 -> 01 -> 11 is a path, but 11 -> 00 has distance 2.
  EXPECT_FALSE(IsChain({0b00, 0b01, 0b11}));
}

TEST(ChainTest, IsChainRejectsDuplicates) {
  EXPECT_FALSE(IsChain({0b00, 0b01, 0b00, 0b01}));
}

TEST(ChainTest, TwoElementChain) {
  // n = 2: forward and wrap-around edges coincide; still a chain.
  EXPECT_TRUE(IsChain({0b101, 0b100}));
  EXPECT_TRUE(IsPrimeChain({0b101, 0b100}));
}

TEST(ChainTest, FindChainOnGrayCycle) {
  const std::vector<uint64_t> codes = {0b00, 0b01, 0b11, 0b10};
  const auto chain = FindChain(codes);
  ASSERT_TRUE(chain.has_value());
  EXPECT_TRUE(IsChain(*chain));
  // Same code set.
  std::vector<uint64_t> sorted = *chain;
  std::sort(sorted.begin(), sorted.end());
  std::vector<uint64_t> expected = codes;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(sorted, expected);
}

TEST(ChainTest, FindChainRejectsOddSets) {
  // The hypercube is bipartite: odd cycles are impossible.
  EXPECT_FALSE(FindChain({0b000, 0b001, 0b011, 0b010, 0b110}).has_value());
}

TEST(ChainTest, FindChainRejectsUnbalancedParity) {
  // Four codewords of even parity only: no distance-1 edges at all.
  EXPECT_FALSE(FindChain({0b000, 0b011, 0b101, 0b110}).has_value());
}

TEST(ChainTest, PrimeChainRequiresPowerOfTwo) {
  EXPECT_FALSE(IsPrimeChain({0b000, 0b001, 0b011, 0b010, 0b110, 0b111}));
  EXPECT_FALSE(
      FindPrimeChain({0b000, 0b001, 0b011, 0b010, 0b110, 0b111}).has_value());
}

TEST(ChainTest, PrimeChainRequiresDistanceBound) {
  // {000, 001, 011, 111}: contains a pair at distance 3 > p = 2 — it can
  // not be a prime chain regardless of ordering (and in fact 000-111 makes
  // no chain either).
  EXPECT_FALSE(FindPrimeChain({0b000, 0b001, 0b011, 0b111}).has_value());
}

TEST(ChainTest, FindPrimeChainOnSubcube) {
  // A 2-subcube {100, 101, 110, 111} has pairwise distance <= 2.
  const auto chain = FindPrimeChain({0b100, 0b101, 0b110, 0b111});
  ASSERT_TRUE(chain.has_value());
  EXPECT_TRUE(IsPrimeChain(*chain));
}

TEST(ChainTest, PairwiseDistanceAtMost) {
  EXPECT_TRUE(PairwiseDistanceAtMost({0b00, 0b01, 0b10}, 2));
  EXPECT_FALSE(PairwiseDistanceAtMost({0b00, 0b11}, 1));
}

TEST(ChainTest, CanonicalPrimeChainIsPrime) {
  for (int p = 1; p <= 4; ++p) {
    const std::vector<uint64_t> chain = CanonicalPrimeChain(p, 0);
    EXPECT_EQ(chain.size(), size_t{1} << p);
    EXPECT_TRUE(IsPrimeChain(chain)) << "p=" << p;
  }
}

TEST(ChainTest, CanonicalPrimeChainWithBase) {
  const std::vector<uint64_t> chain = CanonicalPrimeChain(2, 0b1000);
  EXPECT_TRUE(IsPrimeChain(chain));
  for (uint64_t c : chain) {
    EXPECT_EQ(c & 0b1000u, 0b1000u);
  }
}

TEST(ChainTest, SingletonHasNoChain) {
  EXPECT_FALSE(FindChain({0b1}).has_value());
  EXPECT_FALSE(IsChain({0b1}));
}

}  // namespace
}  // namespace ebi
