#include "query/index_manager.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ebi {
namespace {

using testing_util::RandomIntTable;

class IndexManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = RandomIntTable(800, 60, 3);
    manager_ =
        std::make_unique<IndexManager>(table_.get(), &io_);
  }

  IoAccountant io_;
  std::unique_ptr<Table> table_;
  std::unique_ptr<IndexManager> manager_;
};

TEST_F(IndexManagerTest, KindNamesRoundTrip) {
  for (IndexKind kind :
       {IndexKind::kSimpleBitmap, IndexKind::kSimpleBitmapRle,
        IndexKind::kEncodedBitmap, IndexKind::kBitSliced,
        IndexKind::kBaseBitSliced, IndexKind::kProjection, IndexKind::kBTree,
        IndexKind::kValueList, IndexKind::kRangeBasedBitmap,
        IndexKind::kDynamicBitmap}) {
    const auto parsed = IndexKindFromName(IndexKindName(kind));
    ASSERT_TRUE(parsed.ok()) << IndexKindName(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(IndexKindFromName("nope").ok());
}

TEST_F(IndexManagerTest, CreateBuildsAndRegisters) {
  const auto index =
      manager_->CreateIndex("a", IndexKind::kEncodedBitmap);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(manager_->NumIndexes(), 1u);
  EXPECT_GT(manager_->TotalSizeBytes(), 0u);
  const auto result =
      manager_->Select({Predicate::Eq("a", Value::Int(5))});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->count, 0u);
}

TEST_F(IndexManagerTest, DuplicateCreateRejected) {
  ASSERT_TRUE(manager_->CreateIndex("a", IndexKind::kBTree).ok());
  EXPECT_EQ(manager_->CreateIndex("a", IndexKind::kBTree).status().code(),
            StatusCode::kAlreadyExists);
  // A different kind on the same column is fine.
  EXPECT_TRUE(manager_->CreateIndex("a", IndexKind::kSimpleBitmap).ok());
}

TEST_F(IndexManagerTest, UnknownColumnRejected) {
  EXPECT_EQ(
      manager_->CreateIndex("zz", IndexKind::kSimpleBitmap).status().code(),
      StatusCode::kNotFound);
}

TEST_F(IndexManagerTest, PlannerPicksAmongManagedIndexes) {
  ASSERT_TRUE(manager_->CreateIndex("a", IndexKind::kSimpleBitmap).ok());
  ASSERT_TRUE(manager_->CreateIndex("a", IndexKind::kEncodedBitmap).ok());
  std::vector<AccessPath> paths;
  const auto point = manager_->Select(
      {Predicate::Eq("a", Value::Int(1))}, &paths);
  ASSERT_TRUE(point.ok());
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].index->Name(), "simple-bitmap");

  paths.clear();
  const auto range = manager_->Select(
      {Predicate::Between("a", 0, 50)}, &paths);
  ASSERT_TRUE(range.ok());
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].index->Name(), "encoded-bitmap");
}

TEST_F(IndexManagerTest, AppendsAndDeletesPropagate) {
  ASSERT_TRUE(manager_->CreateIndex("a", IndexKind::kEncodedBitmap).ok());
  ASSERT_TRUE(manager_->CreateIndex("a", IndexKind::kBTree).ok());
  ASSERT_TRUE(manager_->AppendRow({Value::Int(999)}).ok());  // New value.
  const auto result =
      manager_->Select({Predicate::Eq("a", Value::Int(999))});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->count, 1u);
  ASSERT_TRUE(manager_->DeleteRow(table_->NumRows() - 1).ok());
  const auto after =
      manager_->Select({Predicate::Eq("a", Value::Int(999))});
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->count, 0u);
}

TEST_F(IndexManagerTest, DropUnregistersEverywhere) {
  ASSERT_TRUE(manager_->CreateIndex("a", IndexKind::kSimpleBitmap).ok());
  ASSERT_TRUE(manager_->CreateIndex("a", IndexKind::kEncodedBitmap).ok());
  ASSERT_TRUE(
      manager_->DropIndex("a", IndexKind::kSimpleBitmap).ok());
  EXPECT_EQ(manager_->NumIndexes(), 1u);
  EXPECT_EQ(manager_->IndexesOn("a").size(), 1u);
  // Point queries now route to the remaining encoded index.
  std::vector<AccessPath> paths;
  ASSERT_TRUE(
      manager_->Select({Predicate::Eq("a", Value::Int(1))}, &paths).ok());
  EXPECT_EQ(paths[0].index->Name(), "encoded-bitmap");
  // Appends still work after the rewire.
  EXPECT_TRUE(manager_->AppendRow({Value::Int(2)}).ok());
  EXPECT_EQ(manager_->DropIndex("a", IndexKind::kSimpleBitmap).code(),
            StatusCode::kNotFound);
}

TEST_F(IndexManagerTest, AllKindsBuildOnIntColumn) {
  for (IndexKind kind :
       {IndexKind::kSimpleBitmap, IndexKind::kSimpleBitmapRle,
        IndexKind::kEncodedBitmap, IndexKind::kBitSliced,
        IndexKind::kBaseBitSliced, IndexKind::kProjection, IndexKind::kBTree,
        IndexKind::kValueList, IndexKind::kRangeBasedBitmap,
        IndexKind::kDynamicBitmap}) {
    const auto index = manager_->CreateIndex("a", kind);
    ASSERT_TRUE(index.ok()) << IndexKindName(kind);
  }
  EXPECT_EQ(manager_->NumIndexes(), 10u);
  // All of them agree on a selection.
  const auto indexes = manager_->IndexesOn("a");
  const auto reference = indexes[0]->EvaluateEquals(Value::Int(7));
  ASSERT_TRUE(reference.ok());
  for (SecondaryIndex* index : indexes) {
    const auto result = index->EvaluateEquals(Value::Int(7));
    ASSERT_TRUE(result.ok()) << index->Name();
    EXPECT_EQ(*result, *reference) << index->Name();
  }
}

}  // namespace
}  // namespace ebi
