#include "obs/workload_recorder.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "exec/thread_pool.h"

namespace ebi {
namespace obs {
namespace {

std::string TempPath(const std::string& tag) {
  return std::string(::testing::TempDir()) + "/ebi_workload_" + tag +
         ".jsonl";
}

void RemoveSet(const std::string& path, size_t generations) {
  std::remove(path.c_str());
  for (size_t g = 1; g < generations; ++g) {
    std::remove((path + "." + std::to_string(g)).c_str());
  }
}

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  std::fclose(f);
  return true;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(content.data(), 1, content.size(), f),
            content.size());
  std::fclose(f);
}

WorkloadRecord SampleRecord() {
  WorkloadRecord record;
  record.epoch = 3;
  record.rows_selected = 42;
  record.rows_total = 1000;
  record.selectivity = 0.042;
  record.queue_ms = 0.5;
  record.pin_ms = 0.25;
  record.plan_ms = 0.125;
  record.execute_ms = 1.5;
  record.total_ms = 2.375;
  record.vectors = 7;
  record.pages = 2;
  record.bytes = 16384;
  record.kernel = "scalar";

  WorkloadPredicate in;
  in.column = "region";
  in.op = "in";
  // High bit set on purpose: fingerprints round-trip as hex strings,
  // not JSON doubles, so no precision is lost past 2^53.
  in.fingerprint = 0xdeadbeefcafebabeULL;
  in.rows = 250;
  in.literals = {-4, 2, 9};
  record.predicates.push_back(in);

  WorkloadPredicate range;
  range.column = "price";
  range.op = "range";
  range.fingerprint = 0x0123456789abcdefULL;
  range.rows = 610;
  range.lo = -100;
  range.hi = 100;
  range.has_range = true;
  record.predicates.push_back(range);
  return record;
}

// --- Serialization round-trip ----------------------------------------------

TEST(WorkloadRecordTest, JsonRoundTrip) {
  WorkloadRecord record = SampleRecord();
  record.seq = 11;
  record.ts_ms = 123.5;
  const std::string line = WorkloadRecordJson(record);
  const Result<WorkloadRecord> parsed = ParseWorkloadRecord(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const WorkloadRecord& got = parsed.value();
  EXPECT_EQ(got.version, WorkloadRecorder::kSchemaVersion);
  EXPECT_EQ(got.seq, 11u);
  EXPECT_DOUBLE_EQ(got.ts_ms, 123.5);
  EXPECT_EQ(got.epoch, 3u);
  EXPECT_EQ(got.rows_selected, 42u);
  EXPECT_EQ(got.rows_total, 1000u);
  EXPECT_DOUBLE_EQ(got.selectivity, 0.042);
  EXPECT_DOUBLE_EQ(got.queue_ms, 0.5);
  EXPECT_DOUBLE_EQ(got.pin_ms, 0.25);
  EXPECT_DOUBLE_EQ(got.plan_ms, 0.125);
  EXPECT_DOUBLE_EQ(got.execute_ms, 1.5);
  EXPECT_DOUBLE_EQ(got.total_ms, 2.375);
  EXPECT_EQ(got.vectors, 7u);
  EXPECT_EQ(got.pages, 2u);
  EXPECT_EQ(got.bytes, 16384u);
  EXPECT_EQ(got.kernel, "scalar");
  ASSERT_EQ(got.predicates.size(), 2u);
  EXPECT_EQ(got.predicates[0].column, "region");
  EXPECT_EQ(got.predicates[0].op, "in");
  EXPECT_EQ(got.predicates[0].fingerprint, 0xdeadbeefcafebabeULL);
  EXPECT_EQ(got.predicates[0].rows, 250u);
  EXPECT_EQ(got.predicates[0].literals, (std::vector<int64_t>{-4, 2, 9}));
  EXPECT_FALSE(got.predicates[0].has_range);
  EXPECT_EQ(got.predicates[1].column, "price");
  EXPECT_EQ(got.predicates[1].fingerprint, 0x0123456789abcdefULL);
  EXPECT_TRUE(got.predicates[1].has_range);
  EXPECT_EQ(got.predicates[1].lo, -100);
  EXPECT_EQ(got.predicates[1].hi, 100);
}

TEST(WorkloadRecordTest, FingerprintSerializesAsHex) {
  WorkloadRecord record = SampleRecord();
  const std::string line = WorkloadRecordJson(record);
  EXPECT_NE(line.find("\"fp\":\"deadbeefcafebabe\""), std::string::npos)
      << line;
}

TEST(WorkloadRecordTest, RejectsUnknownVersionAndGarbage) {
  WorkloadRecord record = SampleRecord();
  std::string line = WorkloadRecordJson(record);
  // The version is the first field; bump it and the parser must refuse.
  const size_t at = line.find("\"v\":1");
  ASSERT_NE(at, std::string::npos);
  line.replace(at, 5, "\"v\":9");
  EXPECT_FALSE(ParseWorkloadRecord(line).ok());
  EXPECT_FALSE(ParseWorkloadRecord("not json at all").ok());
  EXPECT_FALSE(ParseWorkloadRecord("{\"seq\":0}").ok());
  EXPECT_FALSE(ParseWorkloadRecord("").ok());
}

// --- Recorder: append, read back -------------------------------------------

TEST(WorkloadRecorderTest, AppendsAndReadsBack) {
  const std::string path = TempPath("append");
  RemoveSet(path, 4);
  {
    WorkloadRecorder recorder(path);
    for (int i = 0; i < 5; ++i) {
      WorkloadRecord record = SampleRecord();
      record.rows_selected = static_cast<uint64_t>(i);
      ASSERT_TRUE(recorder.Append(std::move(record)).ok());
    }
    EXPECT_EQ(recorder.RecordsWritten(), 5u);
    EXPECT_EQ(recorder.Rotations(), 0u);
    ASSERT_TRUE(recorder.Flush().ok());
  }
  const Result<WorkloadLogRead> read = ReadWorkloadLog(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().skipped, 0u);
  ASSERT_EQ(read.value().records.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    // The recorder stamps seq itself, in append order.
    EXPECT_EQ(read.value().records[i].seq, i);
    EXPECT_EQ(read.value().records[i].rows_selected, i);
    EXPECT_EQ(read.value().records[i].predicates.size(), 2u);
  }
  RemoveSet(path, 4);
}

TEST(WorkloadRecorderTest, MissingFileIsNotFound) {
  const Result<WorkloadLogRead> read =
      ReadWorkloadLog(TempPath("never_written"));
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST(WorkloadRecorderTest, CapsStoredLiterals) {
  const std::string path = TempPath("litcap");
  RemoveSet(path, 4);
  WorkloadRecorderOptions options;
  options.literal_cap = 2;
  {
    WorkloadRecorder recorder(path, options);
    ASSERT_TRUE(recorder.Append(SampleRecord()).ok());
    ASSERT_TRUE(recorder.Flush().ok());
  }
  const Result<WorkloadLogRead> read = ReadWorkloadLog(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read.value().records.size(), 1u);
  // The IN-list had 3 literals; only literal_cap survive on disk. The
  // fingerprint still covers the full set.
  EXPECT_EQ(read.value().records[0].predicates[0].literals,
            (std::vector<int64_t>{-4, 2}));
  EXPECT_EQ(read.value().records[0].predicates[0].fingerprint,
            0xdeadbeefcafebabeULL);
  RemoveSet(path, 4);
}

// --- Rotation ---------------------------------------------------------------

TEST(WorkloadRecorderTest, RotatesAndKeepsBoundedGenerations) {
  const std::string path = TempPath("rotate");
  RemoveSet(path, 8);
  WorkloadRecorderOptions options;
  options.rotate_bytes = 512;  // a handful of records per generation
  options.max_files = 3;
  uint64_t written = 0;
  {
    WorkloadRecorder recorder(path, options);
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(recorder.Append(SampleRecord()).ok());
    }
    written = recorder.RecordsWritten();
    EXPECT_EQ(written, 40u);
    EXPECT_GT(recorder.Rotations(), 0u);
    ASSERT_TRUE(recorder.Flush().ok());
  }
  EXPECT_TRUE(FileExists(path));
  EXPECT_TRUE(FileExists(path + ".1"));
  EXPECT_TRUE(FileExists(path + ".2"));
  // max_files bounds the set: no generation past .2 may exist.
  EXPECT_FALSE(FileExists(path + ".3"));

  const Result<WorkloadLogRead> set = ReadWorkloadLogSet(path, 3);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  EXPECT_EQ(set.value().skipped, 0u);
  // Rotation dropped the oldest generations, never the newest records.
  ASSERT_FALSE(set.value().records.empty());
  EXPECT_LE(set.value().records.size(), written);
  for (size_t i = 1; i < set.value().records.size(); ++i) {
    EXPECT_LT(set.value().records[i - 1].seq, set.value().records[i].seq);
  }
  EXPECT_EQ(set.value().records.back().seq, written - 1);
  RemoveSet(path, 8);
}

// --- Damage recovery --------------------------------------------------------

TEST(WorkloadRecorderTest, SkipsTruncatedTail) {
  const std::string path = TempPath("truncated");
  RemoveSet(path, 4);
  const std::string good = WorkloadRecordJson(SampleRecord());
  // A crash mid-write leaves a final line with no newline, cut mid-JSON.
  WriteFile(path, good + "\n" + good.substr(0, good.size() / 2));
  const Result<WorkloadLogRead> read = ReadWorkloadLog(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().records.size(), 1u);
  EXPECT_EQ(read.value().skipped, 1u);
  RemoveSet(path, 4);
}

TEST(WorkloadRecorderTest, SkipsMalformedAndForeignVersionLines) {
  const std::string path = TempPath("damaged");
  RemoveSet(path, 4);
  const std::string good = WorkloadRecordJson(SampleRecord());
  std::string future = good;
  const size_t at = future.find("\"v\":1");
  ASSERT_NE(at, std::string::npos);
  future.replace(at, 5, "\"v\":2");
  WriteFile(path,
            good + "\n" + "{garbage\n" + future + "\n" + good + "\n");
  const Result<WorkloadLogRead> read = ReadWorkloadLog(path);
  ASSERT_TRUE(read.ok());
  // Both intact same-version lines survive; the garbage line and the
  // future-version line are counted, not fatal.
  EXPECT_EQ(read.value().records.size(), 2u);
  EXPECT_EQ(read.value().skipped, 2u);
  RemoveSet(path, 4);
}

// --- Concurrency ------------------------------------------------------------

TEST(WorkloadRecorderTest, ConcurrentAppendsAssignUniqueSeqs) {
  // TSan target: appenders serialize on the recorder mutex for the
  // fwrite only; serialization happens outside the lock.
  const std::string path = TempPath("concurrent");
  RemoveSet(path, 4);
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 100;
  {
    WorkloadRecorderOptions options;
    options.rotate_bytes = 0;  // no rotation: every record must survive
    WorkloadRecorder recorder(path, options);
    exec::ThreadPool pool(4);
    pool.ParallelFor(0, kThreads, [&](size_t t) {
      for (size_t i = 0; i < kPerThread; ++i) {
        WorkloadRecord record = SampleRecord();
        record.epoch = t;
        ASSERT_TRUE(recorder.Append(std::move(record)).ok());
      }
    });
    EXPECT_EQ(recorder.RecordsWritten(), kThreads * kPerThread);
    ASSERT_TRUE(recorder.Flush().ok());
  }
  const Result<WorkloadLogRead> read = ReadWorkloadLog(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().skipped, 0u);
  ASSERT_EQ(read.value().records.size(), kThreads * kPerThread);
  std::set<uint64_t> seqs;
  for (const WorkloadRecord& record : read.value().records) {
    seqs.insert(record.seq);
  }
  // No torn lines, no duplicated or lost sequence numbers.
  EXPECT_EQ(seqs.size(), kThreads * kPerThread);
  EXPECT_EQ(*seqs.begin(), 0u);
  EXPECT_EQ(*seqs.rbegin(), kThreads * kPerThread - 1);
  RemoveSet(path, 4);
}

}  // namespace
}  // namespace obs
}  // namespace ebi
