#include "storage/segmented_table.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ebi {
namespace {

using testing_util::IntTable;
using testing_util::RandomIntTable;

TEST(SegmentedTableTest, ZeroSegmentRowsRejected) {
  auto table = IntTable({1, 2, 3});
  EXPECT_EQ(SegmentedTable::Partition(*table, 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SegmentedTableTest, EmptyTableYieldsZeroSegments) {
  Table table("EMPTY");
  ASSERT_TRUE(table.AddColumn("a", Column::Type::kInt64).ok());
  const auto parts = SegmentedTable::Partition(table, 4);
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(parts->NumSegments(), 0u);
  EXPECT_EQ(parts->NumRows(), 0u);
}

TEST(SegmentedTableTest, ExactMultipleSplitsEvenly) {
  auto table = IntTable({0, 1, 2, 3, 4, 5});
  const auto parts = SegmentedTable::Partition(*table, 2);
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(parts->NumSegments(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(parts->RowsInSegment(i), 2u);
    EXPECT_EQ(parts->RowBegin(i), i * 2);
  }
}

TEST(SegmentedTableTest, RaggedLastSegment) {
  auto table = IntTable({0, 1, 2, 3, 4, 5, 6});
  const auto parts = SegmentedTable::Partition(*table, 3);
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts->NumSegments(), 3u);
  EXPECT_EQ(parts->RowsInSegment(0), 3u);
  EXPECT_EQ(parts->RowsInSegment(1), 3u);
  EXPECT_EQ(parts->RowsInSegment(2), 1u);
  EXPECT_EQ(parts->NumRows(), 7u);
}

TEST(SegmentedTableTest, SingleRowSegments) {
  auto table = IntTable({10, 20, 30});
  const auto parts = SegmentedTable::Partition(*table, 1);
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts->NumSegments(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(parts->RowsInSegment(i), 1u);
    EXPECT_EQ(parts->segment(i).column(0).ValueAt(0).int_value,
              static_cast<int64_t>((i + 1) * 10));
  }
}

TEST(SegmentedTableTest, SegmentLargerThanTableYieldsOneSegment) {
  auto table = IntTable({1, 2, 3});
  const auto parts = SegmentedTable::Partition(*table, 100);
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts->NumSegments(), 1u);
  EXPECT_EQ(parts->RowsInSegment(0), 3u);
}

TEST(SegmentedTableTest, ValuesAndNullsPreservedPerSegment) {
  auto table = IntTable({1, INT64_MIN, 3, 4, INT64_MIN, 6, 7});
  const auto parts = SegmentedTable::Partition(*table, 3);
  ASSERT_TRUE(parts.ok());
  for (size_t s = 0; s < parts->NumSegments(); ++s) {
    const Table& segment = parts->segment(s);
    for (size_t r = 0; r < segment.NumRows(); ++r) {
      const size_t global = parts->RowBegin(s) + r;
      const Value want = table->column(0).ValueAt(global);
      const Value got = segment.column(0).ValueAt(r);
      EXPECT_EQ(got.is_null(), want.is_null()) << global;
      if (!want.is_null()) {
        EXPECT_EQ(got.int_value, want.int_value) << global;
      }
    }
  }
}

TEST(SegmentedTableTest, DeletedRowsMirroredInSegmentExistence) {
  auto table = IntTable({1, 2, 3, 4, 5});
  ASSERT_TRUE(table->DeleteRow(1).ok());
  ASSERT_TRUE(table->DeleteRow(4).ok());
  const auto parts = SegmentedTable::Partition(*table, 2);
  ASSERT_TRUE(parts.ok());
  EXPECT_TRUE(parts->segment(0).RowExists(0));
  EXPECT_FALSE(parts->segment(0).RowExists(1));
  EXPECT_TRUE(parts->segment(1).RowExists(0));
  EXPECT_TRUE(parts->segment(1).RowExists(1));
  EXPECT_FALSE(parts->segment(2).RowExists(0));
}

TEST(SegmentedTableTest, SegmentsCarryAllColumns) {
  Table table("WIDE");
  ASSERT_TRUE(table.AddColumn("a", Column::Type::kInt64).ok());
  ASSERT_TRUE(table.AddColumn("b", Column::Type::kString).ok());
  ASSERT_TRUE(table.AppendRow({Value::Int(1), Value::Str("x")}).ok());
  ASSERT_TRUE(table.AppendRow({Value::Int(2), Value::Str("y")}).ok());
  ASSERT_TRUE(table.AppendRow({Value::Int(3), Value::Str("z")}).ok());
  const auto parts = SegmentedTable::Partition(table, 2);
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts->NumSegments(), 2u);
  ASSERT_EQ(parts->segment(0).NumColumns(), 2u);
  ASSERT_TRUE(parts->segment(1).FindColumn("b").ok());
  EXPECT_EQ(parts->segment(1).column(1).ValueAt(0).string_value, "z");
}

TEST(SegmentedTableTest, RandomTableRowSpansAreExhaustive) {
  auto table = RandomIntTable(997, 50, 7, /*null_fraction=*/0.05);
  const auto parts = SegmentedTable::Partition(*table, 64);
  ASSERT_TRUE(parts.ok());
  size_t total = 0;
  for (size_t s = 0; s < parts->NumSegments(); ++s) {
    EXPECT_EQ(parts->RowBegin(s), total);
    total += parts->RowsInSegment(s);
  }
  EXPECT_EQ(total, table->NumRows());
}

}  // namespace
}  // namespace ebi
