#include "obs/trace.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "obs/json.h"
#include "obs/metrics.h"

namespace ebi {
namespace obs {
namespace {

TEST(ObsTraceTest, NoSinkInstalledByDefault) {
  EXPECT_EQ(CurrentTrace(), nullptr);
}

TEST(ObsTraceTest, ScopedSpanIsNoOpWithoutSink) {
  // The null-sink fast path: no trace installed, a span records nothing
  // and every member call is safe.
  ScopedSpan span("index.eval");
  EXPECT_FALSE(span.active());
  span.Attr("delta", uint64_t{7});
  span.Attr("column", "product");
  span.AttrIo(IoStats{1, 2, 3, 4});
  // Nothing to assert beyond "did not crash": there is no trace to
  // inspect, which is exactly the point.
}

TEST(ObsTraceTest, TraceScopeInstallsAndRestores) {
  EXPECT_EQ(CurrentTrace(), nullptr);
  QueryTrace outer;
  {
    const TraceScope install_outer(&outer);
    EXPECT_EQ(CurrentTrace(), &outer);
    QueryTrace inner;
    {
      const TraceScope install_inner(&inner);
      EXPECT_EQ(CurrentTrace(), &inner);
    }
    EXPECT_EQ(CurrentTrace(), &outer);
  }
  EXPECT_EQ(CurrentTrace(), nullptr);
  // The root span's elapsed time is stamped when the scope closes.
  EXPECT_GE(outer.root().elapsed_ms, 0.0);
}

TEST(ObsTraceTest, NullTraceScopeIsNoOp) {
  const TraceScope install(nullptr);
  EXPECT_EQ(CurrentTrace(), nullptr);
  ScopedSpan span("anything");
  EXPECT_FALSE(span.active());
}

TEST(ObsTraceTest, SpansNestUnderInnermostOpenSpan) {
  QueryTrace trace;
  {
    const TraceScope install(&trace);
    ScopedSpan a("planner.select");
    EXPECT_TRUE(a.active());
    {
      ScopedSpan b("predicate");
      { ScopedSpan c("index.eval"); }
      { ScopedSpan d("boolean.reduce"); }
    }
    { ScopedSpan e("predicate"); }
  }
  const TraceSpan& root = trace.root();
  EXPECT_EQ(root.name, "query");
  ASSERT_EQ(root.children.size(), 1u);
  const TraceSpan& a = root.children[0];
  EXPECT_EQ(a.name, "planner.select");
  ASSERT_EQ(a.children.size(), 2u);
  const TraceSpan& b = a.children[0];
  EXPECT_EQ(b.name, "predicate");
  ASSERT_EQ(b.children.size(), 2u);
  EXPECT_EQ(b.children[0].name, "index.eval");
  EXPECT_EQ(b.children[1].name, "boolean.reduce");
  EXPECT_EQ(a.children[1].name, "predicate");
  // Every closed span carries a non-negative elapsed time.
  EXPECT_GE(b.elapsed_ms, 0.0);
}

TEST(ObsTraceTest, TypedAttributesRoundTrip) {
  QueryTrace trace;
  {
    const TraceScope install(&trace);
    ScopedSpan span("index.eval");
    span.Attr("delta", uint64_t{23});
    span.Attr("error", int64_t{-4});
    span.Attr("ratio", 0.25);
    span.Attr("existence_and", true);
    span.Attr("index", "encoded-bitmap");
    span.AttrIo(IoStats{6, 24, 96, 0});
  }
  const TraceSpan* span = trace.Find("index.eval");
  ASSERT_NE(span, nullptr);

  const AttrValue* delta = span->FindAttr("delta");
  ASSERT_NE(delta, nullptr);
  EXPECT_EQ(delta->kind(), AttrValue::Kind::kUint);
  EXPECT_EQ(delta->uint_value(), 23u);
  EXPECT_EQ(span->AttrUint("delta"), 23u);

  const AttrValue* error = span->FindAttr("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->kind(), AttrValue::Kind::kInt);
  EXPECT_EQ(error->int_value(), -4);
  EXPECT_EQ(error->AsUint(), 0u);  // Negative clamps.

  const AttrValue* ratio = span->FindAttr("ratio");
  ASSERT_NE(ratio, nullptr);
  EXPECT_EQ(ratio->kind(), AttrValue::Kind::kDouble);
  EXPECT_DOUBLE_EQ(ratio->double_value(), 0.25);

  const AttrValue* existence = span->FindAttr("existence_and");
  ASSERT_NE(existence, nullptr);
  EXPECT_EQ(existence->kind(), AttrValue::Kind::kBool);
  EXPECT_TRUE(existence->bool_value());

  const AttrValue* index = span->FindAttr("index");
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->kind(), AttrValue::Kind::kString);
  EXPECT_EQ(index->string_value(), "encoded-bitmap");

  // AttrIo expands into the vectors/pages/bytes triple (nodes only when
  // nonzero — absent here).
  EXPECT_EQ(span->AttrUint("vectors"), 6u);
  EXPECT_EQ(span->AttrUint("pages"), 24u);
  EXPECT_EQ(span->AttrUint("bytes"), 96u);
  EXPECT_EQ(span->FindAttr("nodes"), nullptr);
  EXPECT_EQ(span->AttrUint("nodes", 77u), 77u);  // Fallback applies.
}

TEST(ObsTraceTest, FindIsDepthFirst) {
  QueryTrace trace;
  {
    const TraceScope install(&trace);
    {
      ScopedSpan a("outer");
      ScopedSpan b("target");
      b.Attr("which", "first");
    }
    ScopedSpan c("target");
    c.Attr("which", "second");
  }
  const TraceSpan* found = trace.Find("target");
  ASSERT_NE(found, nullptr);
  const AttrValue* which = found->FindAttr("which");
  ASSERT_NE(which, nullptr);
  EXPECT_EQ(which->string_value(), "first");
  EXPECT_EQ(trace.Find("absent"), nullptr);
}

TEST(ObsMetricsTest, CountersAccumulateAndReset) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test.counter");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->Value(), 0u);
  c->Increment();
  c->Increment(4);
  EXPECT_EQ(c->Value(), 5u);
  // Lookups are stable: the same name returns the same counter.
  EXPECT_EQ(registry.GetCounter("test.counter"), c);
  registry.Reset();
  EXPECT_EQ(c->Value(), 0u);
}

TEST(ObsMetricsTest, HistogramBucketsAndMean) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);    // Bucket 0 (<= 1).
  h.Observe(5.0);    // Bucket 1 (<= 10).
  h.Observe(50.0);   // Bucket 2 (<= 100).
  h.Observe(500.0);  // Overflow bucket.
  EXPECT_EQ(h.TotalCount(), 4u);
  EXPECT_DOUBLE_EQ(h.Sum(), 555.5);
  EXPECT_DOUBLE_EQ(h.Mean(), 555.5 / 4.0);
  const std::vector<uint64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  h.Reset();
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
}

TEST(ObsMetricsTest, RecordQueryFeedsGlobalRegistry) {
  MetricsRegistry& global = MetricsRegistry::Global();
  Counter* count = global.GetCounter(kMetricQueryCount);
  Histogram* vectors = global.GetHistogram(kMetricQueryVectors);
  const uint64_t count_before = count->Value();
  const uint64_t vectors_before = vectors->TotalCount();
  RecordQuery(IoStats{7, 28, 112, 0}, 1.5);
  EXPECT_EQ(count->Value(), count_before + 1);
  EXPECT_EQ(vectors->TotalCount(), vectors_before + 1);
}

TEST(ObsMetricsTest, SnapshotsMentionRegisteredMetrics) {
  MetricsRegistry registry;
  registry.GetCounter("snapshot.counter")->Increment(3);
  registry.GetHistogram("snapshot.histogram")->Observe(2.0);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"snapshot.counter\""), std::string::npos);
  EXPECT_NE(json.find("\"snapshot.histogram\""), std::string::npos);
  const std::string text = registry.ToString();
  EXPECT_NE(text.find("snapshot.counter"), std::string::npos);
}

TEST(ObsJsonTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(ObsJsonTest, WriterProducesWellFormedObjects) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").String("q");
  w.Key("n").Uint(3);
  w.Key("ok").Bool(true);
  w.Key("items").BeginArray();
  w.Number(1.5);
  w.Int(-2);
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"name\":\"q\",\"n\":3,\"ok\":true,\"items\":[1.5,-2]}");
}

TEST(ObsJsonTest, NumbersStayFinite) {
  EXPECT_EQ(JsonNumber(2.0), "2");
  EXPECT_EQ(JsonNumber(2.5), "2.5");
  // Non-finite values have no JSON literal; they collapse to zero rather
  // than emitting invalid documents.
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::quiet_NaN()), "0");
}

}  // namespace
}  // namespace obs
}  // namespace ebi
