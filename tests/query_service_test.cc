#include "serve/query_service.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "exec/thread_pool.h"
#include "index/encoded_bitmap_index.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/executor.h"
#include "test_util.h"

namespace ebi {
namespace serve {
namespace {

using testing_util::ScanEquals;
using testing_util::ScanRange;

/// Deterministic two-column table: a = i % 5, b = i % 3.
std::unique_ptr<Table> TwoColumnTable(size_t rows) {
  auto table = std::make_unique<Table>("serve");
  EXPECT_TRUE(table->AddColumn("a", Column::Type::kInt64).ok());
  EXPECT_TRUE(table->AddColumn("b", Column::Type::kInt64).ok());
  for (size_t i = 0; i < rows; ++i) {
    EXPECT_TRUE(table
                    ->AppendRow({Value::Int(static_cast<int64_t>(i % 5)),
                                 Value::Int(static_cast<int64_t>(i % 3))})
                    .ok());
  }
  return table;
}

std::vector<IndexSpec> BothColumns() {
  return {{"a", IndexKind::kEncodedBitmap}, {"b", IndexKind::kSimpleBitmap}};
}

TEST(QueryServiceTest, ResultsIdenticalToSerialExecutor) {
  QueryService service;
  ASSERT_TRUE(service.Start(TwoColumnTable(64), BothColumns()).ok());

  // The reference: a plain serial executor over an identical table.
  std::unique_ptr<Table> reference = TwoColumnTable(64);
  IoAccountant io;
  EncodedBitmapIndex index_a(&reference->column(0), &reference->existence(),
                             &io);
  EncodedBitmapIndex index_b(&reference->column(1), &reference->existence(),
                             &io);
  ASSERT_TRUE(index_a.Build().ok());
  ASSERT_TRUE(index_b.Build().ok());
  SelectionExecutor serial(reference.get(), &io);
  serial.RegisterIndex("a", &index_a);
  serial.RegisterIndex("b", &index_b);

  const std::vector<std::vector<Predicate>> queries = {
      {Predicate::Eq("a", Value::Int(3))},
      {Predicate::Between("a", 1, 3)},
      {Predicate::Eq("a", Value::Int(2)), Predicate::Eq("b", Value::Int(1))},
      {Predicate::In("a", {Value::Int(0), Value::Int(4)})},
  };
  for (const auto& predicates : queries) {
    const Result<ServeResult> served = service.Select(predicates);
    ASSERT_TRUE(served.ok());
    EXPECT_EQ(served.value().epoch, 0u);
    const Result<SelectionResult> expected = serial.Select(predicates);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(served.value().selection.rows, expected.value().rows);
    EXPECT_EQ(served.value().selection.count, expected.value().count);
  }
}

TEST(QueryServiceTest, ZeroDeadlineIsDeterministicallyExceeded) {
  QueryService service;
  ASSERT_TRUE(service.Start(TwoColumnTable(16), BothColumns()).ok());
  obs::Counter* exceeded = obs::MetricsRegistry::Global().GetCounter(
      obs::kMetricServeDeadlineExceeded);
  const uint64_t before = exceeded->Value();

  RequestOptions options;
  options.deadline_ms = 0.0;  // Expired by the time a worker picks it up.
  const Result<ServeResult> result =
      service.Select({Predicate::Eq("a", Value::Int(1))}, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(exceeded->Value(), before + 1);
}

// Regression: a deadline that is already expired on arrival must be
// rejected at admission — synchronously from Submit — not after burning
// a queue slot, a pool dispatch, and a snapshot pin. Submit returning
// the error directly (instead of a ticket that later resolves to it) is
// the observable contract.
TEST(QueryServiceTest, ExpiredOnArrivalIsRejectedAtAdmission) {
  QueryService service;
  ASSERT_TRUE(service.Start(TwoColumnTable(16), BothColumns()).ok());
  obs::Counter* exceeded = obs::MetricsRegistry::Global().GetCounter(
      obs::kMetricServeDeadlineExceeded);
  const uint64_t before = exceeded->Value();

  RequestOptions options;
  options.deadline_ms = -5.0;  // Expired before it was even submitted.
  const Result<std::shared_ptr<ServeTicket>> ticket =
      service.Submit({Predicate::Eq("a", Value::Int(1))}, options);
  ASSERT_FALSE(ticket.ok());  // No ticket: never entered the queue.
  EXPECT_EQ(ticket.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(exceeded->Value(), before + 1);
  EXPECT_EQ(service.InFlight(), 0u);  // Back out of the in-flight count.
}

// ServeTicket::WaitFor (the cluster gather's hedging primitive): times
// out without consuming the outcome, then the outcome is still there for
// a later bounded or unbounded wait.
TEST(QueryServiceTest, WaitForTimesOutThenDeliversOutcome) {
  QueryService service;
  ASSERT_TRUE(service.Start(TwoColumnTable(64), BothColumns()).ok());

  const Result<std::shared_ptr<ServeTicket>> ticket =
      service.Submit({Predicate::Eq("a", Value::Int(1))});
  ASSERT_TRUE(ticket.ok());
  // Bounded waits eventually observe the resolution; a zero-budget wait
  // is a poll that can legally miss it.
  std::optional<Result<ServeResult>> outcome;
  for (int i = 0; i < 10000 && !outcome.has_value(); ++i) {
    outcome = (*ticket)->WaitFor(1.0);
  }
  ASSERT_TRUE(outcome.has_value());
  ASSERT_TRUE(outcome->ok());
  // The outcome is retained: repeated waits agree.
  const Result<ServeResult> again = (*ticket)->Wait();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().selection.count, outcome->value().selection.count);
}

TEST(QueryServiceTest, ZeroQueueDepthShedsEveryRequest) {
  ServeOptions options;
  options.queue_depth = 0;
  QueryService service(options);
  ASSERT_TRUE(service.Start(TwoColumnTable(16), BothColumns()).ok());
  obs::Counter* shed =
      obs::MetricsRegistry::Global().GetCounter(obs::kMetricServeShed);
  const uint64_t before = shed->Value();

  const Result<ServeResult> result =
      service.Select({Predicate::Eq("a", Value::Int(1))});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOverloaded);
  EXPECT_GE(shed->Value(), before + 1);
  EXPECT_EQ(service.InFlight(), 0u);
}

TEST(QueryServiceTest, AppendPublishesNewEpochVisibleToLaterQueries) {
  QueryService service;
  ASSERT_TRUE(service.Start(TwoColumnTable(6), BothColumns()).ok());
  EXPECT_EQ(service.CurrentEpoch(), 0u);

  // Two new rows, one with a brand-new value for `a` (domain expansion).
  const Result<uint64_t> epoch =
      service.Append({{Value::Int(2), Value::Int(0)},
                      {Value::Int(77), Value::Int(1)}});
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(epoch.value(), 1u);
  EXPECT_EQ(service.CurrentEpoch(), 1u);

  const std::vector<size_t> published = service.PublishedRowCounts();
  ASSERT_EQ(published.size(), 2u);
  EXPECT_EQ(published[0], 6u);
  EXPECT_EQ(published[1], 8u);

  const Result<ServeResult> fresh =
      service.Select({Predicate::Eq("a", Value::Int(77))});
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh.value().epoch, 1u);
  EXPECT_EQ(fresh.value().selection.count, 1u);
  EXPECT_TRUE(fresh.value().selection.rows.Get(7));
}

TEST(QueryServiceTest, PinnedSnapshotOutlivesPublishes) {
  QueryService service;
  ASSERT_TRUE(service.Start(TwoColumnTable(6), BothColumns()).ok());

  SnapshotManager::Pin pin = service.snapshots().Acquire();
  ASSERT_TRUE(static_cast<bool>(pin));
  EXPECT_EQ(pin->epoch(), 0u);

  ASSERT_TRUE(service.Append({{Value::Int(1), Value::Int(1)}}).ok());
  ASSERT_TRUE(service.Append({{Value::Int(2), Value::Int(2)}}).ok());
  EXPECT_EQ(service.CurrentEpoch(), 2u);

  // The pinned version still answers from its own frozen state.
  EXPECT_EQ(pin->NumRows(), 6u);
  SelectionExecutor executor = pin->MakeExecutor();
  const Result<SelectionResult> old =
      executor.Select({Predicate::Eq("a", Value::Int(1))});
  ASSERT_TRUE(old.ok());
  EXPECT_EQ(old.value().rows, ScanEquals(pin->table(), pin->table().column(0), 1));

  // The pin announced epoch 1 (pre-publish), so reclamation holds back
  // everything retired after it: both superseded snapshots are retained
  // until the pin drops, then both go in the release's reclaim pass.
  EXPECT_EQ(service.snapshots().RetiredCount(), 2u);
  const uint64_t reclaimed_before = service.snapshots().ReclaimedCount();
  pin.Release();
  EXPECT_EQ(service.snapshots().RetiredCount(), 0u);
  EXPECT_EQ(service.snapshots().ReclaimedCount(), reclaimed_before + 2);
}

TEST(QueryServiceTest, ShutdownDrainsAndRejectsNewWork) {
  QueryService service;
  ASSERT_TRUE(service.Start(TwoColumnTable(32), BothColumns()).ok());

  std::vector<std::shared_ptr<ServeTicket>> tickets;
  for (int i = 0; i < 8; ++i) {
    Result<std::shared_ptr<ServeTicket>> ticket =
        service.Submit({Predicate::Eq("a", Value::Int(i % 5))});
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(ticket.value());
  }
  ASSERT_TRUE(service.Shutdown().ok());
  EXPECT_EQ(service.InFlight(), 0u);

  // Every admitted request completed with a real outcome.
  for (const auto& ticket : tickets) {
    EXPECT_TRUE(ticket->Wait().ok());
  }

  const Result<ServeResult> rejected =
      service.Select({Predicate::Eq("a", Value::Int(1))});
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
  const Result<uint64_t> append =
      service.Append({{Value::Int(1), Value::Int(1)}});
  ASSERT_FALSE(append.ok());
  EXPECT_EQ(append.status().code(), StatusCode::kFailedPrecondition);
}

TEST(QueryServiceTest, MalformedAppendRejectedWithoutPoisoningService) {
  QueryService service;
  ASSERT_TRUE(service.Start(TwoColumnTable(4), BothColumns()).ok());

  const Result<uint64_t> arity = service.Append({{Value::Int(1)}});
  ASSERT_FALSE(arity.ok());
  EXPECT_EQ(arity.status().code(), StatusCode::kInvalidArgument);

  const Result<uint64_t> type =
      service.Append({{Value::Str("x"), Value::Int(0)}});
  ASSERT_FALSE(type.ok());
  EXPECT_EQ(type.status().code(), StatusCode::kInvalidArgument);

  EXPECT_EQ(service.CurrentEpoch(), 0u);
  const Result<uint64_t> good =
      service.Append({{Value::Int(1), Value::Int(1)}});
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 1u);
}

TEST(QueryServiceTest, LifecycleValidation) {
  QueryService service;
  // Before Start: everything is a precondition failure.
  EXPECT_EQ(service.Select({Predicate::Eq("a", Value::Int(1))})
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.Append({{Value::Int(1)}}).status().code(),
            StatusCode::kFailedPrecondition);

  // A spec naming a missing column fails Start and allows a retry.
  EXPECT_FALSE(
      service.Start(TwoColumnTable(4), {{"nope", IndexKind::kSimpleBitmap}})
          .ok());
  ASSERT_TRUE(service.Start(TwoColumnTable(4), BothColumns()).ok());
  EXPECT_EQ(service.Start(TwoColumnTable(4), BothColumns()).code(),
            StatusCode::kFailedPrecondition);

  // Duplicate serving specs on one column are rejected up front.
  QueryService other;
  EXPECT_EQ(other.Start(TwoColumnTable(4), {{"a", IndexKind::kSimpleBitmap},
                                            {"a", IndexKind::kEncodedBitmap}})
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(QueryServiceTest, RequestTraceRecordsServeSpan) {
  QueryService service;
  ASSERT_TRUE(service.Start(TwoColumnTable(16), BothColumns()).ok());

  obs::QueryTrace trace;
  RequestOptions options;
  options.trace = &trace;
  const Result<ServeResult> result =
      service.Select({Predicate::Eq("a", Value::Int(2))}, options);
  ASSERT_TRUE(result.ok());

  const obs::TraceSpan* span = trace.Find("serve.request");
  ASSERT_NE(span, nullptr);
  EXPECT_FALSE(span->attrs.empty());
  EXPECT_NE(trace.Find("executor.select"), nullptr);
}

TEST(QueryServiceTest, ShardedSnapshotsServeAndExtend) {
  exec::ThreadPool shard_pool(2);
  ServeOptions options;
  options.segment_rows = 8;
  options.shard_pool = &shard_pool;
  QueryService service(options);
  ASSERT_TRUE(service.Start(TwoColumnTable(30), BothColumns()).ok());

  const Result<ServeResult> before =
      service.Select({Predicate::Eq("a", Value::Int(3))});
  ASSERT_TRUE(before.ok());
  std::unique_ptr<Table> reference = TwoColumnTable(30);
  EXPECT_EQ(before.value().selection.rows,
            ScanEquals(*reference, reference->column(0), 3));

  // Appends re-partition and rebuild; results stay scan-identical.
  ASSERT_TRUE(service.Append({{Value::Int(3), Value::Int(0)},
                              {Value::Int(9), Value::Int(1)}})
                  .ok());
  const Result<ServeResult> after =
      service.Select({Predicate::Between("a", 3, 9)});
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(reference->AppendRow({Value::Int(3), Value::Int(0)}).ok());
  ASSERT_TRUE(reference->AppendRow({Value::Int(9), Value::Int(1)}).ok());
  EXPECT_EQ(after.value().selection.rows,
            ScanRange(*reference, reference->column(0), 3, 9));
}

TEST(QueryServiceTest, ConcurrentAppendsAllLandExactlyOnce) {
  constexpr size_t kSeedRows = 3;
  QueryService service;
  ASSERT_TRUE(service.Start(TwoColumnTable(kSeedRows), BothColumns()).ok());

  // Drive appends from pool workers so several callers race into the
  // combining writer. Every batch must land exactly once. Client values
  // start at 100, clear of the seed rows' domain.
  constexpr size_t kClients = 8;
  constexpr size_t kRowsPerClient = 5;
  exec::ThreadPool clients(4);
  std::vector<Result<uint64_t>> epochs(kClients, Status::Internal("unset"));
  clients.ParallelFor(0, kClients, [&](size_t c) {
    std::vector<std::vector<Value>> rows;
    for (size_t r = 0; r < kRowsPerClient; ++r) {
      rows.push_back({Value::Int(static_cast<int64_t>(100 + c)),
                      Value::Int(static_cast<int64_t>(r % 3))});
    }
    epochs[c] = service.Append(std::move(rows));
  });

  const std::vector<size_t> published = service.PublishedRowCounts();
  for (size_t c = 0; c < kClients; ++c) {
    ASSERT_TRUE(epochs[c].ok()) << c;
    const uint64_t epoch = epochs[c].value();
    ASSERT_LT(epoch, published.size());
    // The batch is contained in the epoch it was assigned to.
    EXPECT_GE(published[epoch], kSeedRows + kRowsPerClient);
  }
  EXPECT_EQ(published.back(), kSeedRows + kClients * kRowsPerClient);

  // Each client's value shows up exactly kRowsPerClient times.
  for (size_t c = 0; c < kClients; ++c) {
    const Result<ServeResult> got = service.Select(
        {Predicate::Eq("a", Value::Int(static_cast<int64_t>(100 + c)))});
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value().selection.count, kRowsPerClient) << c;
  }
}

}  // namespace
}  // namespace serve
}  // namespace ebi
