#include "encoding/encoders.h"

#include <gtest/gtest.h>

#include <set>

#include "util/bit_util.h"

namespace ebi {
namespace {

TEST(EncodersTest, WidthForMatchesPaper) {
  // ceil(log2 12000) = 14 (Section 2.2).
  EXPECT_EQ(WidthFor(12000), 14);
  EXPECT_EQ(WidthFor(3), 2);
  // Reserving void adds one codeword: 4 values + void -> 3 bits.
  EncoderOptions eo;
  eo.reserve_void_zero = true;
  EXPECT_EQ(WidthFor(4, eo), 3);
  eo.extra_width = 2;
  EXPECT_EQ(WidthFor(4, eo), 5);
}

TEST(EncodersTest, SequentialAssignsCountingCodes) {
  const auto mapping = MakeSequentialMapping(5);
  ASSERT_TRUE(mapping.ok());
  EXPECT_EQ(mapping->width(), 3);
  for (ValueId v = 0; v < 5; ++v) {
    EXPECT_EQ(*mapping->CodeOf(v), v);
  }
}

TEST(EncodersTest, SequentialWithVoidSkipsZero) {
  EncoderOptions eo;
  eo.reserve_void_zero = true;
  const auto mapping = MakeSequentialMapping(3, eo);
  ASSERT_TRUE(mapping.ok());
  EXPECT_EQ(mapping->void_code(), std::optional<uint64_t>(0));
  EXPECT_EQ(*mapping->CodeOf(0), 1u);
  EXPECT_EQ(*mapping->CodeOf(1), 2u);
  EXPECT_EQ(*mapping->CodeOf(2), 3u);
}

TEST(EncodersTest, SequentialWithVoidAndNull) {
  EncoderOptions eo;
  eo.reserve_void_zero = true;
  eo.encode_null = true;
  const auto mapping = MakeSequentialMapping(3, eo);
  ASSERT_TRUE(mapping.ok());
  EXPECT_EQ(mapping->void_code(), std::optional<uint64_t>(0));
  EXPECT_EQ(mapping->null_code(), std::optional<uint64_t>(1));
  EXPECT_EQ(*mapping->CodeOf(0), 2u);
  EXPECT_EQ(mapping->NumCodes(), 5u);
  EXPECT_EQ(mapping->width(), 3);  // 5 codewords need 3 bits.
}

TEST(EncodersTest, GrayConsecutiveValuesDifferInOneBit) {
  const auto mapping = MakeGrayMapping(16);
  ASSERT_TRUE(mapping.ok());
  for (ValueId v = 0; v + 1 < 16; ++v) {
    EXPECT_EQ(BinaryDistance(*mapping->CodeOf(v), *mapping->CodeOf(v + 1)),
              1)
        << v;
  }
}

TEST(EncodersTest, GrayWithVoidStillMostlyAdjacent) {
  EncoderOptions eo;
  eo.reserve_void_zero = true;
  const auto mapping = MakeGrayMapping(7, eo);
  ASSERT_TRUE(mapping.ok());
  for (ValueId v = 0; v < 7; ++v) {
    EXPECT_NE(*mapping->CodeOf(v), 0u);
  }
}

TEST(EncodersTest, RandomMappingIsBijective) {
  Rng rng(5);
  const auto mapping = MakeRandomMapping(100, &rng);
  ASSERT_TRUE(mapping.ok());
  std::set<uint64_t> codes;
  for (ValueId v = 0; v < 100; ++v) {
    codes.insert(*mapping->CodeOf(v));
  }
  EXPECT_EQ(codes.size(), 100u);
  EXPECT_LT(*codes.rbegin(), uint64_t{1} << 7);
}

TEST(EncodersTest, RandomMappingIsSeedDeterministic) {
  Rng a(9);
  Rng b(9);
  const auto ma = MakeRandomMapping(32, &a);
  const auto mb = MakeRandomMapping(32, &b);
  ASSERT_TRUE(ma.ok());
  ASSERT_TRUE(mb.ok());
  for (ValueId v = 0; v < 32; ++v) {
    EXPECT_EQ(*ma->CodeOf(v), *mb->CodeOf(v));
  }
}

TEST(EncodersTest, TotalOrderPreservesOrder) {
  EncoderOptions eo;
  eo.reserve_void_zero = true;
  const auto mapping = MakeTotalOrderMapping(10, eo);
  ASSERT_TRUE(mapping.ok());
  for (ValueId v = 0; v + 1 < 10; ++v) {
    EXPECT_LT(*mapping->CodeOf(v), *mapping->CodeOf(v + 1));
  }
}

TEST(EncodersTest, EmptyDomainRejected) {
  EXPECT_FALSE(MakeSequentialMapping(0).ok());
  EXPECT_FALSE(MakeGrayMapping(0).ok());
}

TEST(EncodersTest, SingleValueDomain) {
  const auto mapping = MakeSequentialMapping(1);
  ASSERT_TRUE(mapping.ok());
  EXPECT_EQ(mapping->width(), 1);
  EXPECT_EQ(*mapping->CodeOf(0), 0u);
}

TEST(EncodersTest, ExactPowerOfTwoUsesAllCodes) {
  const auto mapping = MakeSequentialMapping(8);
  ASSERT_TRUE(mapping.ok());
  EXPECT_EQ(mapping->width(), 3);
  EXPECT_EQ(mapping->FirstFreeCode(), std::nullopt);
  EXPECT_TRUE(mapping->UnusedCodes(10).empty());
}

}  // namespace
}  // namespace ebi
