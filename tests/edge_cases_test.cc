// Edge-case sweep across modules: the error paths and odd shapes the
// mainline tests don't reach.

#include <gtest/gtest.h>

#include <sstream>

#include "ebi/ebi.h"
#include "test_util.h"

namespace ebi {
namespace {

using testing_util::IntTable;

TEST(EdgeCasesTest, PredicateWidthOnStringColumn) {
  Column c("s", Column::Type::kString);
  ASSERT_TRUE(c.AppendString("x").ok());
  // Ranges on string columns are meaningless: width 0.
  EXPECT_EQ(Predicate::Between("s", 0, 5).Width(c), 0u);
  EXPECT_EQ(Predicate::Eq("s", Value::Str("x")).Width(c), 1u);
}

TEST(EdgeCasesTest, ExecutorScanRejectsRangeOnStringColumn) {
  auto table = std::make_unique<Table>("T");
  ASSERT_TRUE(table->AddColumn("s", Column::Type::kString).ok());
  ASSERT_TRUE(table->AppendRow({Value::Str("a")}).ok());
  IoAccountant io;
  SelectionExecutor executor(table.get(), &io);
  EXPECT_FALSE(executor.SelectByScan({Predicate::Between("s", 0, 1)}).ok());
}

TEST(EdgeCasesTest, CsvCustomDelimiter) {
  std::stringstream in("a;b\n1;2\n");
  CsvOptions options;
  options.delimiter = ';';
  const auto table = LoadCsv(in, "T", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->column(1).ValueAt(0), Value::Int(2));
}

TEST(EdgeCasesTest, CsvCustomNullToken) {
  std::stringstream in("a\n1\n\\N\n");
  CsvOptions options;
  options.null_token = "\\N";
  const auto table = LoadCsv(in, "T", options);
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE((*table)->column(0).ValueAt(1).is_null());
}

TEST(EdgeCasesTest, BitmapStoreMoveSemantics) {
  IoAccountant io;
  auto opened = BitmapStore::Open(
      std::string(::testing::TempDir()) + "/ebi_move.bin", 2, &io);
  ASSERT_TRUE(opened.ok());
  BitmapStore store = std::move(opened).value();
  const auto id = store.Put(BitVector::FromString("1010"));
  ASSERT_TRUE(id.ok());
  BitmapStore moved = std::move(store);
  const auto bits = moved.Get(*id);
  ASSERT_TRUE(bits.ok());
  EXPECT_EQ(bits->ToString(), "1010");
}

TEST(EdgeCasesTest, RleFromRunsTrailingZeros) {
  const RleBitmap rle = RleBitmap::FromRuns({2, 1, 3});
  EXPECT_EQ(rle.size(), 6u);
  EXPECT_EQ(rle.Decompress().ToString(), "001000");
}

TEST(EdgeCasesTest, SingleRowIndexesAgree) {
  auto table = IntTable({42});
  IoAccountant io;
  SimpleBitmapIndex simple(&table->column(0), &table->existence(), &io);
  EncodedBitmapIndex encoded(&table->column(0), &table->existence(), &io);
  BTreeIndex btree(&table->column(0), &table->existence(), &io);
  ASSERT_TRUE(simple.Build().ok());
  ASSERT_TRUE(encoded.Build().ok());
  ASSERT_TRUE(btree.Build().ok());
  for (SecondaryIndex* index :
       std::vector<SecondaryIndex*>{&simple, &encoded, &btree}) {
    const auto hit = index->EvaluateEquals(Value::Int(42));
    ASSERT_TRUE(hit.ok()) << index->Name();
    EXPECT_EQ(hit->ToString(), "1") << index->Name();
    const auto miss = index->EvaluateEquals(Value::Int(41));
    ASSERT_TRUE(miss.ok()) << index->Name();
    EXPECT_TRUE(miss->IsZero()) << index->Name();
  }
}

TEST(EdgeCasesTest, AllRowsDeleted) {
  auto table = IntTable({1, 2, 3});
  IoAccountant io;
  EncodedBitmapIndex index(&table->column(0), &table->existence(), &io);
  ASSERT_TRUE(index.Build().ok());
  MaintenanceDriver driver(table.get());
  ASSERT_TRUE(driver.AttachIndex(&index).ok());
  for (size_t r = 0; r < 3; ++r) {
    ASSERT_TRUE(driver.DeleteRow(r).ok());
  }
  const auto result = index.EvaluateRange(0, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->IsZero());
  // Appending after total deletion still works.
  ASSERT_TRUE(driver.AppendRow({Value::Int(2)}).ok());
  const auto again = index.EvaluateEquals(Value::Int(2));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->ToString(), "0001");
}

TEST(EdgeCasesTest, EmptyInListIsEmptyResult) {
  auto table = IntTable({1, 2});
  IoAccountant io;
  EncodedBitmapIndex encoded(&table->column(0), &table->existence(), &io);
  SimpleBitmapIndex simple(&table->column(0), &table->existence(), &io);
  ASSERT_TRUE(encoded.Build().ok());
  ASSERT_TRUE(simple.Build().ok());
  const auto a = encoded.EvaluateIn({});
  const auto b = simple.EvaluateIn({});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->IsZero());
  EXPECT_TRUE(b->IsZero());
}

TEST(EdgeCasesTest, InListWithOnlyUnknownValues) {
  auto table = IntTable({1, 2});
  IoAccountant io;
  EncodedBitmapIndex index(&table->column(0), &table->existence(), &io);
  ASSERT_TRUE(index.Build().ok());
  const auto result =
      index.EvaluateIn({Value::Int(77), Value::Str("zz"), Value::Null()});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->IsZero());
}

TEST(EdgeCasesTest, ReencodeBeforeBuildRejected) {
  auto table = IntTable({1});
  IoAccountant io;
  EncodedBitmapIndex index(&table->column(0), &table->existence(), &io);
  auto mapping = MakeSequentialMapping(1);
  ASSERT_TRUE(mapping.ok());
  EXPECT_EQ(index.Reencode(std::move(mapping).value()).code(),
            StatusCode::kFailedPrecondition);
}

TEST(EdgeCasesTest, ColdIndexEmptyDomainRejected) {
  auto table = std::make_unique<Table>("T");
  ASSERT_TRUE(table->AddColumn("a", Column::Type::kInt64).ok());
  IoAccountant io;
  ColdEncodedBitmapIndexOptions options;
  options.directory = ::testing::TempDir();
  ColdEncodedBitmapIndex index(&table->column(0), &table->existence(), &io,
                               options);
  EXPECT_EQ(index.Build().code(), StatusCode::kFailedPrecondition);
}

TEST(EdgeCasesTest, GroupsetSingleColumnDegeneratesToPlainIndex) {
  auto table = IntTable({3, 1, 3, 2});
  IoAccountant io;
  GroupsetIndex index({&table->column(0)}, &table->existence(), &io);
  ASSERT_TRUE(index.Build().ok());
  const auto rows = index.GroupBitmap({Value::Int(3)});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->ToString(), "1010");
  EXPECT_EQ(*index.CountGroups(), 3u);
}

TEST(EdgeCasesTest, JoinIndexEmptyPredicateResult) {
  StarSchemaConfig config;
  config.fact_rows = 200;
  config.num_products = 20;
  auto schema = BuildStarSchema(config);
  ASSERT_TRUE(schema.ok());
  IoAccountant io;
  EncodedBitmapJoinIndex join(*(*schema)->sales->FindColumn("product"),
                              &(*schema)->sales->existence(),
                              (*schema)->products, "product_id", &io);
  ASSERT_TRUE(join.Build().ok());
  const auto rows =
      join.FactRowsWhere(Predicate::Eq("category", Value::Int(999)));
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->IsZero());
}

}  // namespace
}  // namespace ebi
