#include "util/bit_util.h"

#include <gtest/gtest.h>

namespace ebi {
namespace {

TEST(BitUtilTest, Log2CeilSmall) {
  EXPECT_EQ(Log2Ceil(0), 0);
  EXPECT_EQ(Log2Ceil(1), 1);
  EXPECT_EQ(Log2Ceil(2), 1);
  EXPECT_EQ(Log2Ceil(3), 2);
  EXPECT_EQ(Log2Ceil(4), 2);
  EXPECT_EQ(Log2Ceil(5), 3);
}

TEST(BitUtilTest, Log2CeilPaperExamples) {
  // Section 2.2: 12000 products need ceil(log2 12000) = 14 vectors; a
  // domain of 3 needs 2.
  EXPECT_EQ(Log2Ceil(12000), 14);
  EXPECT_EQ(Log2Ceil(3), 2);
  EXPECT_EQ(Log2Ceil(50), 6);
  EXPECT_EQ(Log2Ceil(1000), 10);
}

TEST(BitUtilTest, Log2CeilPowersOfTwo) {
  for (int p = 1; p < 60; ++p) {
    const uint64_t v = uint64_t{1} << p;
    EXPECT_EQ(Log2Ceil(v), p) << v;
    EXPECT_EQ(Log2Ceil(v + 1), p + 1) << v + 1;
  }
}

TEST(BitUtilTest, Log2Floor) {
  EXPECT_EQ(Log2Floor(1), 0);
  EXPECT_EQ(Log2Floor(2), 1);
  EXPECT_EQ(Log2Floor(3), 1);
  EXPECT_EQ(Log2Floor(4), 2);
  EXPECT_EQ(Log2Floor(1023), 9);
  EXPECT_EQ(Log2Floor(1024), 10);
}

TEST(BitUtilTest, PopCount) {
  EXPECT_EQ(PopCount(0), 0);
  EXPECT_EQ(PopCount(0xFF), 8);
  EXPECT_EQ(PopCount(~uint64_t{0}), 64);
}

TEST(BitUtilTest, BinaryDistanceDefinition22) {
  // Paper example after Definition 2.2: lambda(011, 111) = 1.
  EXPECT_EQ(BinaryDistance(0b011, 0b111), 1);
  EXPECT_EQ(BinaryDistance(0b000, 0b111), 3);
  EXPECT_EQ(BinaryDistance(5, 5), 0);
}

TEST(BitUtilTest, BinaryDistanceSymmetric) {
  EXPECT_EQ(BinaryDistance(0b1010, 0b0110),
            BinaryDistance(0b0110, 0b1010));
}

TEST(BitUtilTest, GrayCodeAdjacency) {
  for (uint64_t i = 0; i + 1 < 1024; ++i) {
    EXPECT_EQ(BinaryDistance(BinaryToGray(i), BinaryToGray(i + 1)), 1) << i;
  }
}

TEST(BitUtilTest, GrayCodeIsPermutation) {
  std::vector<bool> seen(256, false);
  for (uint64_t i = 0; i < 256; ++i) {
    const uint64_t g = BinaryToGray(i);
    ASSERT_LT(g, 256u);
    EXPECT_FALSE(seen[g]);
    seen[g] = true;
  }
}

TEST(BitUtilTest, GrayRoundTrip) {
  for (uint64_t i = 0; i < 4096; ++i) {
    EXPECT_EQ(GrayToBinary(BinaryToGray(i)), i);
  }
}

}  // namespace
}  // namespace ebi
