#include "util/kernels/kernels.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "util/random.h"

// Differential harness: every backend the running CPU can execute must be
// bit-identical to the scalar oracle on every kernel, across sizes that
// straddle the vector widths (0, 1, partial lane, exact lane, lane + 1),
// densities from all-zero to all-one, odd word offsets (pointers from
// std::vector<uint64_t> are only 8-byte aligned — backends must survive
// that), and the aliasing patterns the contracts permit (dst == src,
// srcs[j] == dst). The CI matrix re-runs this whole binary once per
// backend with EBI_FORCE_KERNEL pinned, and ForcedBackendIsActive turns
// the pin into an assertion so a mis-spelled leg fails instead of
// silently re-testing auto-detection.

namespace ebi {
namespace kernels {
namespace {

// Word-span sizes: empty, sub-lane, one AVX2 lane (4 words), one AVX-512
// lane (8 words), lane +/- 1, and spans long enough to exercise the main
// loop plus every tail length.
const size_t kSizes[] = {0, 1, 3, 4, 5, 7, 8, 9, 15, 16, 63, 64, 65, 512};

std::vector<uint64_t> RandomWords(size_t n, double density, Rng* rng) {
  std::vector<uint64_t> words(n);
  for (uint64_t& w : words) {
    if (density <= 0.0) {
      w = 0;
    } else if (density >= 1.0) {
      w = ~uint64_t{0};
    } else if (density == 0.5) {
      w = rng->Next();
    } else if (density < 0.5) {
      // Sparse: most words zero, survivors fully random.
      w = rng->Bernoulli(density * 2) ? rng->Next() : 0;
    } else {
      w = rng->Bernoulli((1.0 - density) * 2) ? rng->Next() : ~uint64_t{0};
    }
  }
  return words;
}

const double kDensities[] = {0.0, 0.05, 0.5, 0.95, 1.0};

class KernelDifferentialTest
    : public ::testing::TestWithParam<const BitmapKernels*> {
 protected:
  const BitmapKernels& backend() const { return *GetParam(); }
};

std::string BackendName(
    const ::testing::TestParamInfo<const BitmapKernels*>& info) {
  return info.param->name;
}

TEST_P(KernelDifferentialTest, BinaryOpsMatchScalarOracle) {
  const BitmapKernels& oracle = Scalar();
  Rng rng(1001);
  for (size_t n : kSizes) {
    for (double density : kDensities) {
      const std::vector<uint64_t> dst0 = RandomWords(n, density, &rng);
      const std::vector<uint64_t> src = RandomWords(n, 0.5, &rng);
      const struct {
        const char* op;
        void (*tested)(uint64_t*, const uint64_t*, size_t);
        void (*reference)(uint64_t*, const uint64_t*, size_t);
      } cases[] = {
          {"and", backend().and_words, oracle.and_words},
          {"or", backend().or_words, oracle.or_words},
          {"xor", backend().xor_words, oracle.xor_words},
          {"andnot", backend().andnot_words, oracle.andnot_words},
          {"copy", backend().copy_words, oracle.copy_words},
      };
      for (const auto& c : cases) {
        std::vector<uint64_t> got = dst0;
        std::vector<uint64_t> want = dst0;
        c.tested(got.data(), src.data(), n);
        c.reference(want.data(), src.data(), n);
        EXPECT_EQ(got, want) << backend().name << " " << c.op << " n=" << n
                             << " density=" << density;
        // Self-aliasing (dst == src) is part of the contract.
        std::vector<uint64_t> aliased = dst0;
        std::vector<uint64_t> aliased_want = dst0;
        c.tested(aliased.data(), aliased.data(), n);
        c.reference(aliased_want.data(), aliased_want.data(), n);
        EXPECT_EQ(aliased, aliased_want)
            << backend().name << " " << c.op << " aliased n=" << n;
      }
    }
  }
}

TEST_P(KernelDifferentialTest, UnaryOpsMatchScalarOracle) {
  const BitmapKernels& oracle = Scalar();
  Rng rng(1002);
  for (size_t n : kSizes) {
    for (double density : kDensities) {
      const std::vector<uint64_t> dst0 = RandomWords(n, density, &rng);

      std::vector<uint64_t> got = dst0;
      std::vector<uint64_t> want = dst0;
      backend().not_words(got.data(), n);
      oracle.not_words(want.data(), n);
      EXPECT_EQ(got, want) << backend().name << " not n=" << n;

      got = dst0;
      want = dst0;
      const uint64_t fill = rng.Next();
      backend().fill_words(got.data(), fill, n);
      oracle.fill_words(want.data(), fill, n);
      EXPECT_EQ(got, want) << backend().name << " fill n=" << n;

      EXPECT_EQ(backend().popcount_words(dst0.data(), n),
                oracle.popcount_words(dst0.data(), n))
          << backend().name << " popcount n=" << n
          << " density=" << density;
    }
  }
}

TEST_P(KernelDifferentialTest, OddWordOffsetsMatchScalarOracle) {
  // Start the spans at data() + 1 / + 3 so they are 8-byte but not
  // 32/64-byte aligned: a backend using aligned vector loads would fault
  // or diverge here.
  const BitmapKernels& oracle = Scalar();
  Rng rng(1003);
  for (size_t offset : {size_t{1}, size_t{3}}) {
    for (size_t n : {size_t{8}, size_t{65}, size_t{512}}) {
      const std::vector<uint64_t> dst0 = RandomWords(n + offset, 0.5, &rng);
      const std::vector<uint64_t> src = RandomWords(n + offset, 0.5, &rng);
      std::vector<uint64_t> got = dst0;
      std::vector<uint64_t> want = dst0;
      backend().and_words(got.data() + offset, src.data() + offset, n);
      oracle.and_words(want.data() + offset, src.data() + offset, n);
      EXPECT_EQ(got, want) << backend().name << " and offset=" << offset;

      got = dst0;
      want = dst0;
      backend().xor_words(got.data() + offset, src.data() + offset, n);
      oracle.xor_words(want.data() + offset, src.data() + offset, n);
      EXPECT_EQ(got, want) << backend().name << " xor offset=" << offset;

      EXPECT_EQ(backend().popcount_words(dst0.data() + offset, n),
                oracle.popcount_words(dst0.data() + offset, n))
          << backend().name << " popcount offset=" << offset;
    }
  }
}

TEST_P(KernelDifferentialTest, ManyOpsMatchChainedScalarOracle) {
  const BitmapKernels& oracle = Scalar();
  Rng rng(1004);
  for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{64},
                   size_t{65}, size_t{512}}) {
    for (size_t k : {size_t{1}, size_t{2}, size_t{3}, size_t{7}}) {
      std::vector<std::vector<uint64_t>> sources;
      sources.reserve(k);
      for (size_t j = 0; j < k; ++j) {
        sources.push_back(RandomWords(n, j % 2 == 0 ? 0.5 : 0.05, &rng));
      }
      std::vector<const uint64_t*> srcs;
      srcs.reserve(k);
      for (const auto& s : sources) {
        srcs.push_back(s.data());
      }

      // Reference: fold the sources with the scalar binary kernels.
      std::vector<uint64_t> want_or = sources[0];
      std::vector<uint64_t> want_and = sources[0];
      for (size_t j = 1; j < k; ++j) {
        oracle.or_words(want_or.data(), srcs[j], n);
        oracle.and_words(want_and.data(), srcs[j], n);
      }

      std::vector<uint64_t> got(n, 0xdeadbeefdeadbeefULL);
      backend().or_many(got.data(), srcs.data(), k, n);
      EXPECT_EQ(got, want_or)
          << backend().name << " or_many k=" << k << " n=" << n;

      got.assign(n, 0xdeadbeefdeadbeefULL);
      backend().and_many(got.data(), srcs.data(), k, n);
      EXPECT_EQ(got, want_and)
          << backend().name << " and_many k=" << k << " n=" << n;

      // Contract: dst may appear among the sources.
      std::vector<uint64_t> inplace = sources[0];
      srcs[0] = inplace.data();
      backend().or_many(inplace.data(), srcs.data(), k, n);
      EXPECT_EQ(inplace, want_or)
          << backend().name << " or_many dst-aliased k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSupportedBackends, KernelDifferentialTest,
                         ::testing::ValuesIn(Supported()),
                         BackendName);

TEST(KernelRegistryTest, ScalarIsAlwaysSupported) {
  const std::vector<const BitmapKernels*>& supported = Supported();
  ASSERT_FALSE(supported.empty());
  EXPECT_STREQ(supported.front()->name, "scalar");
  EXPECT_EQ(&Scalar(), supported.front());
}

TEST(KernelRegistryTest, ByNameFindsEverySupportedBackend) {
  for (const BitmapKernels* backend : Supported()) {
    EXPECT_EQ(ByName(backend->name), backend);
  }
  EXPECT_EQ(ByName("no-such-backend"), nullptr);
}

TEST(KernelRegistryTest, ActiveIsSupported) {
  const BitmapKernels& active = Active();
  bool found = false;
  for (const BitmapKernels* backend : Supported()) {
    found = found || backend == &active;
  }
  EXPECT_TRUE(found) << "Active() returned unregistered backend "
                     << active.name;
}

TEST(KernelRegistryTest, ForcedBackendIsActive) {
  // When the CI matrix pins EBI_FORCE_KERNEL to a backend this CPU
  // supports, the pin must actually take effect; otherwise the forced leg
  // would silently re-test auto-detection.
  const char* forced = std::getenv("EBI_FORCE_KERNEL");
  if (forced == nullptr || ByName(forced) == nullptr) {
    GTEST_SKIP() << "EBI_FORCE_KERNEL not set to a supported backend";
  }
  EXPECT_STREQ(Active().name, forced);
}

}  // namespace
}  // namespace kernels
}  // namespace ebi
