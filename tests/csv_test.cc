#include "storage/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ebi {
namespace {

TEST(CsvTest, SplitCsvLine) {
  EXPECT_EQ(SplitCsvLine("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitCsvLine("a,,c", ','),
            (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(SplitCsvLine("solo", ','), (std::vector<std::string>{"solo"}));
  EXPECT_EQ(SplitCsvLine("a;b", ';'), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(SplitCsvLine("a,b\r", ','),
            (std::vector<std::string>{"a", "b"}));
}

TEST(CsvTest, LoadsTypedColumns) {
  std::stringstream in("id,name,qty\n1,apple,10\n2,pear,20\n3,fig,30\n");
  const auto table = LoadCsv(in, "T");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->NumRows(), 3u);
  EXPECT_EQ((*table)->NumColumns(), 3u);
  const Column* id = *(*table)->FindColumn("id");
  const Column* name = *(*table)->FindColumn("name");
  EXPECT_EQ(id->type(), Column::Type::kInt64);
  EXPECT_EQ(name->type(), Column::Type::kString);
  EXPECT_EQ(name->ValueAt(1), Value::Str("pear"));
  EXPECT_EQ(id->ValueAt(2), Value::Int(3));
}

TEST(CsvTest, NullTokensAndEmptyCells) {
  std::stringstream in("a,b\n1,x\nNULL,\n3,z\n");
  const auto table = LoadCsv(in, "T");
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE((*table)->column(0).ValueAt(1).is_null());
  EXPECT_TRUE((*table)->column(1).ValueAt(1).is_null());
  EXPECT_EQ((*table)->column(0).ValueAt(2), Value::Int(3));
}

TEST(CsvTest, NullFirstRowDefersInference) {
  // Column b's first value is NULL; type comes from the second row.
  std::stringstream in("a,b\n1,\n2,42\n3,7\n");
  const auto table = LoadCsv(in, "T");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->column(1).type(), Column::Type::kInt64);
  EXPECT_EQ((*table)->column(1).ValueAt(1), Value::Int(42));
}

TEST(CsvTest, AllNullColumnDefaultsToString) {
  std::stringstream in("a,b\n1,\n2,\n");
  const auto table = LoadCsv(in, "T");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->column(1).type(), Column::Type::kString);
  EXPECT_EQ((*table)->NumRows(), 2u);
}

TEST(CsvTest, NoHeaderMode) {
  std::stringstream in("5,x\n6,y\n");
  CsvOptions options;
  options.header = false;
  const auto table = LoadCsv(in, "T", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->NumRows(), 2u);
  EXPECT_TRUE((*table)->FindColumn("col0").ok());
  EXPECT_TRUE((*table)->FindColumn("col1").ok());
}

TEST(CsvTest, ArityMismatchRejected) {
  std::stringstream in("a,b\n1,2\n3\n");
  EXPECT_FALSE(LoadCsv(in, "T").ok());
}

TEST(CsvTest, TypeMismatchRejected) {
  std::stringstream in("a\n1\n2\nnot_a_number\n");
  EXPECT_FALSE(LoadCsv(in, "T").ok());
}

TEST(CsvTest, NegativeIntegersParse) {
  std::stringstream in("a\n-5\n-10\n");
  const auto table = LoadCsv(in, "T");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->column(0).ValueAt(0), Value::Int(-5));
}

TEST(CsvTest, EmptyInputRejected) {
  std::stringstream in("");
  EXPECT_FALSE(LoadCsv(in, "T").ok());
}

TEST(CsvTest, MissingFileRejected) {
  EXPECT_EQ(LoadCsvFile("/nonexistent/file.csv", "T").status().code(),
            StatusCode::kNotFound);
}

TEST(CsvTest, HeaderOnlyGivesEmptyStringTable) {
  std::stringstream in("a,b\n");
  const auto table = LoadCsv(in, "T");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->NumRows(), 0u);
  EXPECT_EQ((*table)->NumColumns(), 2u);
}

}  // namespace
}  // namespace ebi
