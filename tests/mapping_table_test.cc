#include "encoding/mapping_table.h"

#include <gtest/gtest.h>

namespace ebi {
namespace {

TEST(MappingTableTest, CreateAndLookup) {
  const auto table = MappingTable::Create(2, {0b00, 0b01, 0b10});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->width(), 2);
  EXPECT_EQ(table->NumValues(), 3u);
  EXPECT_EQ(table->NumCodes(), 3u);
  EXPECT_EQ(*table->CodeOf(0), 0b00u);
  EXPECT_EQ(*table->CodeOf(2), 0b10u);
  EXPECT_EQ(table->ValueOfCode(0b01), std::optional<ValueId>(1));
  EXPECT_EQ(table->ValueOfCode(0b11), std::nullopt);
}

TEST(MappingTableTest, RejectsDuplicateCodes) {
  EXPECT_FALSE(MappingTable::Create(2, {0b00, 0b00}).ok());
}

TEST(MappingTableTest, RejectsCodesExceedingWidth) {
  EXPECT_FALSE(MappingTable::Create(2, {0b100}).ok());
}

TEST(MappingTableTest, RejectsTooSmallWidth) {
  EXPECT_FALSE(MappingTable::Create(1, {0b0, 0b1, 0b1}).ok());
  // 3 distinct codes cannot fit 1 bit even without duplicates.
  EXPECT_FALSE(MappingTable::Create(2, {0, 1, 2, 3}, 0).ok());
}

TEST(MappingTableTest, ReservedCodesExcluded) {
  // void = 0, NULL = 1; values must avoid them.
  const auto bad = MappingTable::Create(2, {0b00, 0b10}, 0, 1);
  EXPECT_FALSE(bad.ok());
  const auto good = MappingTable::Create(2, {0b10, 0b11}, 0, 1);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->NumCodes(), 4u);
  EXPECT_EQ(good->void_code(), std::optional<uint64_t>(0));
  EXPECT_EQ(good->null_code(), std::optional<uint64_t>(1));
}

TEST(MappingTableTest, VoidAndNullMustDiffer) {
  EXPECT_FALSE(MappingTable::Create(2, {0b10}, 1, 1).ok());
}

TEST(MappingTableTest, RetrievalFunctionIsMinTerm) {
  const auto table = MappingTable::Create(3, {0b101});
  ASSERT_TRUE(table.ok());
  const auto f = table->RetrievalFunction(0);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->ToString(3), "B2B1'B0");
}

TEST(MappingTableTest, AddValueWithoutExpansion) {
  // Figure 2(a): domain {a,b,c} with codes 00,01,10 gains d -> 11.
  auto table = MappingTable::Create(2, {0b00, 0b01, 0b10});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->FirstFreeCode(), std::optional<uint64_t>(0b11));
  EXPECT_TRUE(table->AddValue(3, 0b11).ok());
  EXPECT_EQ(*table->CodeOf(3), 0b11u);
  EXPECT_EQ(table->FirstFreeCode(), std::nullopt);
}

TEST(MappingTableTest, AddValueRejectsSparseIds) {
  auto table = MappingTable::Create(2, {0b00});
  ASSERT_TRUE(table.ok());
  EXPECT_FALSE(table->AddValue(5, 0b01).ok());
}

TEST(MappingTableTest, AddValueRejectsTakenOrReservedCodes) {
  auto table = MappingTable::Create(2, {0b01}, 0);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->AddValue(1, 0b01).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(table->AddValue(1, 0b00).code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(table->AddValue(1, 0b10).ok());
}

TEST(MappingTableTest, ExpandWidthKeepsCodes) {
  // Figure 2(b): after expansion old codewords are zero-extended.
  auto table = MappingTable::Create(2, {0b00, 0b01, 0b10, 0b11});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->FirstFreeCode(), std::nullopt);
  EXPECT_TRUE(table->ExpandWidth(3).ok());
  EXPECT_EQ(table->width(), 3);
  EXPECT_EQ(*table->CodeOf(2), 0b10u);
  EXPECT_EQ(table->FirstFreeCode(), std::optional<uint64_t>(0b100));
  EXPECT_TRUE(table->AddValue(4, 0b100).ok());
}

TEST(MappingTableTest, ExpandWidthRejectsShrink) {
  auto table = MappingTable::Create(3, {0});
  ASSERT_TRUE(table.ok());
  EXPECT_FALSE(table->ExpandWidth(2).ok());
}

TEST(MappingTableTest, UnusedCodesAreComplement) {
  const auto table = MappingTable::Create(3, {0b001, 0b010}, 0);
  ASSERT_TRUE(table.ok());
  const std::vector<uint64_t> unused = table->UnusedCodes(100);
  // 8 codes - 2 values - void = 5 unused.
  EXPECT_EQ(unused.size(), 5u);
  for (uint64_t code : unused) {
    EXPECT_NE(code, 0u);
    EXPECT_NE(code, 0b001u);
    EXPECT_NE(code, 0b010u);
  }
}

TEST(MappingTableTest, UnusedCodesHonorsLimit) {
  const auto table = MappingTable::Create(4, {0});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->UnusedCodes(3).size(), 3u);
}

TEST(MappingTableTest, CodeOfUnknownValueFails) {
  const auto table = MappingTable::Create(2, {0b00});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->CodeOf(9).status().code(), StatusCode::kNotFound);
}

TEST(MappingTableTest, ToStringShowsBits) {
  const auto table = MappingTable::Create(2, {0b10});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->ToString(), "v0 -> 10\n");
}

}  // namespace
}  // namespace ebi
