#include "storage/engine/storage_engine.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "exec/thread_pool.h"
#include "storage/engine/buffer_pool.h"
#include "storage/engine/page_file.h"
#include "util/ewah_bitmap.h"
#include "util/random.h"
#include "util/rle_bitmap.h"

namespace ebi {
namespace engine {
namespace {

std::string TempPath(const char* tag) {
  return std::string(::testing::TempDir()) + "/ebi_engine_" + tag + ".bin";
}

BitVector RandomBits(size_t n, uint64_t seed, double density = 0.4) {
  Rng rng(seed);
  BitVector v(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(density)) {
      v.Set(i);
    }
  }
  return v;
}

void RemoveFiles(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".map").c_str());
  std::remove((path + ".map.tmp").c_str());
}

// ---------------------------------------------------------------- PageFile

TEST(PageFileTest, WriteReadRoundTrip) {
  const std::string path = TempPath("pf_roundtrip");
  auto file = PageFile::Open(path, PageFileOptions());
  ASSERT_TRUE(file.ok());
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  const uint32_t page = file->Allocate(1);
  ASSERT_TRUE(
      file->WritePage(page, /*slice=*/7, payload.data(), payload.size()).ok());
  std::vector<uint8_t> out;
  uint32_t slice = 0;
  ASSERT_TRUE(file->ReadPage(page, &out, &slice).ok());
  EXPECT_EQ(out, payload);
  EXPECT_EQ(slice, 7u);
  RemoveFiles(path);
}

TEST(PageFileTest, PayloadCapacityIsPageMinusHeader) {
  const std::string path = TempPath("pf_capacity");
  PageFileOptions options;
  options.page_size = 256;
  auto file = PageFile::Open(path, options);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file->PayloadCapacity(), 256 - PageFile::kHeaderBytes);
  const std::vector<uint8_t> too_big(file->PayloadCapacity() + 1, 0xAB);
  const uint32_t page = file->Allocate(1);
  EXPECT_FALSE(
      file->WritePage(page, 0, too_big.data(), too_big.size()).ok());
  RemoveFiles(path);
}

TEST(PageFileTest, CorruptPayloadFailsChecksum) {
  const std::string path = TempPath("pf_corrupt");
  {
    auto file = PageFile::Open(path, PageFileOptions());
    ASSERT_TRUE(file.ok());
    const std::vector<uint8_t> payload(100, 0x5A);
    ASSERT_TRUE(
        file->WritePage(file->Allocate(1), 0, payload.data(), payload.size())
            .ok());
    ASSERT_TRUE(file->Sync().ok());
  }
  {
    // Flip one payload byte on disk, past the 24-byte header.
    std::FILE* raw = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(raw, nullptr);
    ASSERT_EQ(std::fseek(raw, PageFile::kHeaderBytes + 10, SEEK_SET), 0);
    std::fputc(0xFF, raw);
    std::fclose(raw);
  }
  PageFileOptions recover;
  recover.truncate = false;
  auto file = PageFile::Open(path, recover);
  ASSERT_TRUE(file.ok());
  std::vector<uint8_t> out;
  const Status status = file->ReadPage(0, &out);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("torn or corrupt"), std::string::npos);
  RemoveFiles(path);
}

TEST(PageFileTest, MisdirectedWriteDetected) {
  const std::string path = TempPath("pf_misdirected");
  const size_t kPage = 4096;
  {
    auto file = PageFile::Open(path, PageFileOptions());
    ASSERT_TRUE(file.ok());
    const std::vector<uint8_t> a(50, 0x11);
    const std::vector<uint8_t> b(50, 0x22);
    ASSERT_TRUE(file->WritePage(file->Allocate(1), 0, a.data(), a.size()).ok());
    ASSERT_TRUE(file->WritePage(file->Allocate(1), 0, b.data(), b.size()).ok());
    ASSERT_TRUE(file->Sync().ok());
  }
  {
    // Simulate a misdirected write: page 0's bytes land in page 1's slot.
    // The checksum still holds, but the self-identifying page_no does not.
    std::FILE* raw = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(raw, nullptr);
    std::vector<uint8_t> page0(kPage);
    ASSERT_EQ(std::fread(page0.data(), 1, kPage, raw), kPage);
    ASSERT_EQ(std::fseek(raw, static_cast<long>(kPage), SEEK_SET), 0);
    ASSERT_EQ(std::fwrite(page0.data(), 1, kPage, raw), kPage);
    std::fclose(raw);
  }
  PageFileOptions recover;
  recover.truncate = false;
  auto file = PageFile::Open(path, recover);
  ASSERT_TRUE(file.ok());
  std::vector<uint8_t> out;
  const Status status = file->ReadPage(1, &out);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("misdirected"), std::string::npos);
  RemoveFiles(path);
}

TEST(PageFileTest, FaultInjectionTearsTheNthWrite) {
  const std::string path = TempPath("pf_fault");
  PageFileOptions options;
  options.fail_after_page_writes = 2;
  auto file = PageFile::Open(path, options);
  ASSERT_TRUE(file.ok());
  const std::vector<uint8_t> payload(200, 0x3C);
  ASSERT_TRUE(
      file->WritePage(file->Allocate(1), 0, payload.data(), payload.size())
          .ok());
  const uint32_t torn = file->Allocate(1);
  EXPECT_FALSE(
      file->WritePage(torn, 0, payload.data(), payload.size()).ok());
  // The torn page is half-written: reading it back must fail loudly.
  std::vector<uint8_t> out;
  EXPECT_FALSE(file->ReadPage(torn, &out).ok());
  RemoveFiles(path);
}

// -------------------------------------------------------------- BufferPool

TEST(BufferPoolTest, RejectsZeroCapacity) {
  BufferPoolOptions options;
  options.capacity_pages = 0;
  EXPECT_FALSE(BufferPool::Create(options).ok());
}

TEST(BufferPoolTest, HitsAndMissesAreCounted) {
  const std::string path = TempPath("bp_counts");
  auto file = PageFile::Open(path, PageFileOptions());
  ASSERT_TRUE(file.ok());
  const std::vector<uint8_t> payload(64, 0x77);
  const uint32_t page = file->Allocate(1);
  ASSERT_TRUE(file->WritePage(page, 0, payload.data(), payload.size()).ok());

  BufferPoolOptions options;
  options.capacity_pages = 4;
  auto pool = BufferPool::Create(options);
  ASSERT_TRUE(pool.ok());
  const uint32_t file_id = (*pool)->Register(&*file);
  {
    auto ref = (*pool)->Pin(file_id, page);
    ASSERT_TRUE(ref.ok());
    EXPECT_EQ(ref->size(), payload.size());
  }
  ASSERT_TRUE((*pool)->Pin(file_id, page).ok());
  const BufferPoolStats stats = (*pool)->stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  RemoveFiles(path);
}

TEST(BufferPoolTest, LruEvictsColdestUnpinnedPage) {
  const std::string path = TempPath("bp_lru");
  auto file = PageFile::Open(path, PageFileOptions());
  ASSERT_TRUE(file.ok());
  const std::vector<uint8_t> payload(32, 0x01);
  const uint32_t first = file->Allocate(4);
  for (uint32_t p = first; p < first + 4; ++p) {
    ASSERT_TRUE(file->WritePage(p, p, payload.data(), payload.size()).ok());
  }
  BufferPoolOptions options;
  options.capacity_pages = 2;
  auto pool = BufferPool::Create(options);
  ASSERT_TRUE(pool.ok());
  const uint32_t file_id = (*pool)->Register(&*file);

  ASSERT_TRUE((*pool)->Pin(file_id, 0).ok());
  ASSERT_TRUE((*pool)->Pin(file_id, 1).ok());
  // Touch page 0 so page 1 is the LRU victim.
  ASSERT_TRUE((*pool)->Pin(file_id, 0).ok());
  ASSERT_TRUE((*pool)->Pin(file_id, 2).ok());  // Evicts 1, not 0.
  const uint64_t misses_before = (*pool)->stats().misses;
  ASSERT_TRUE((*pool)->Pin(file_id, 0).ok());  // Still resident.
  EXPECT_EQ((*pool)->stats().misses, misses_before);
  EXPECT_EQ((*pool)->stats().evictions, 1u);
  RemoveFiles(path);
}

TEST(BufferPoolTest, PinnedPagesAreNotEvictable) {
  const std::string path = TempPath("bp_pinned");
  auto file = PageFile::Open(path, PageFileOptions());
  ASSERT_TRUE(file.ok());
  const std::vector<uint8_t> payload(16, 0x02);
  file->Allocate(3);
  for (uint32_t p = 0; p < 3; ++p) {
    ASSERT_TRUE(file->WritePage(p, p, payload.data(), payload.size()).ok());
  }
  BufferPoolOptions options;
  options.capacity_pages = 2;
  auto pool = BufferPool::Create(options);
  ASSERT_TRUE(pool.ok());
  const uint32_t file_id = (*pool)->Register(&*file);

  auto b = (*pool)->Pin(file_id, 1);
  ASSERT_TRUE(b.ok());
  {
    const auto a = (*pool)->Pin(file_id, 0);
    ASSERT_TRUE(a.ok());
    // Every frame pinned: a third fault has no victim.
    const auto c = (*pool)->Pin(file_id, 2);
    EXPECT_FALSE(c.ok());
    EXPECT_EQ(c.status().code(), StatusCode::kFailedPrecondition);
  }
  // Page 0's pin dropped: the fault can now evict it.
  EXPECT_TRUE((*pool)->Pin(file_id, 2).ok());
  RemoveFiles(path);
}

TEST(BufferPoolTest, DirtyFramesWriteBackOnEviction) {
  const std::string path = TempPath("bp_writeback");
  auto file = PageFile::Open(path, PageFileOptions());
  ASSERT_TRUE(file.ok());
  BufferPoolOptions options;
  options.capacity_pages = 1;
  auto pool = BufferPool::Create(options);
  ASSERT_TRUE(pool.ok());
  const uint32_t file_id = (*pool)->Register(&*file);

  file->Allocate(2);
  const std::vector<uint8_t> first(40, 0xAA);
  const std::vector<uint8_t> second(40, 0xBB);
  ASSERT_TRUE(
      (*pool)->WriteThrough(file_id, 0, 0, first.data(), first.size()).ok());
  // Faulting page 1 evicts dirty page 0, which must write back first.
  ASSERT_TRUE(
      (*pool)->WriteThrough(file_id, 1, 1, second.data(), second.size()).ok());
  ASSERT_TRUE((*pool)->Flush().ok());
  EXPECT_GE((*pool)->stats().writebacks, 1u);
  std::vector<uint8_t> out;
  ASSERT_TRUE(file->ReadPage(0, &out).ok());
  EXPECT_EQ(out, first);
  ASSERT_TRUE(file->ReadPage(1, &out).ok());
  EXPECT_EQ(out, second);
  RemoveFiles(path);
}

TEST(BufferPoolTest, PrefetchWarmsThePoolSynchronously) {
  const std::string path = TempPath("bp_prefetch");
  auto file = PageFile::Open(path, PageFileOptions());
  ASSERT_TRUE(file.ok());
  const std::vector<uint8_t> payload(24, 0x04);
  file->Allocate(3);
  for (uint32_t p = 0; p < 3; ++p) {
    ASSERT_TRUE(file->WritePage(p, p, payload.data(), payload.size()).ok());
  }
  BufferPoolOptions options;
  options.capacity_pages = 4;
  auto pool = BufferPool::Create(options);
  ASSERT_TRUE(pool.ok());
  const uint32_t file_id = (*pool)->Register(&*file);
  (*pool)->Prefetch(file_id, {0, 1, 2});
  EXPECT_EQ((*pool)->Resident(), 3u);
  EXPECT_EQ((*pool)->stats().prefetches, 3u);
  // Subsequent pins are all hits.
  ASSERT_TRUE((*pool)->Pin(file_id, 1).ok());
  EXPECT_EQ((*pool)->stats().hits, 1u);
  RemoveFiles(path);
}

TEST(BufferPoolTest, AsyncPrefetchDrainsBeforeDestruction) {
  const std::string path = TempPath("bp_async");
  auto file = PageFile::Open(path, PageFileOptions());
  ASSERT_TRUE(file.ok());
  const std::vector<uint8_t> payload(24, 0x05);
  file->Allocate(8);
  for (uint32_t p = 0; p < 8; ++p) {
    ASSERT_TRUE(file->WritePage(p, p, payload.data(), payload.size()).ok());
  }
  exec::ThreadPool workers(2);
  BufferPoolOptions options;
  options.capacity_pages = 16;
  options.prefetch_pool = &workers;
  auto pool = BufferPool::Create(options);
  ASSERT_TRUE(pool.ok());
  const uint32_t file_id = (*pool)->Register(&*file);
  (*pool)->Prefetch(file_id, {0, 1, 2, 3, 4, 5, 6, 7});
  // The destructor must block until every outstanding prefetch retired —
  // otherwise a worker touches a dead pool. ASan/TSan guard this.
  pool->reset();
  RemoveFiles(path);
}

// ------------------------------------------------------------ StorageEngine

StoredBitmap MakeStored(const BitVector& bits, BitmapFormat format) {
  switch (format) {
    case BitmapFormat::kRle:
      return StoredBitmap::FromRle(RleBitmap::Compress(bits));
    case BitmapFormat::kEwah:
      return StoredBitmap::FromEwah(EwahBitmap::Compress(bits));
    case BitmapFormat::kPlain:
      break;
  }
  return StoredBitmap::Make(bits, BitmapFormat::kPlain);
}

TEST(StorageEngineTest, PutGetRoundTripEveryFormat) {
  for (const BitmapFormat format :
       {BitmapFormat::kPlain, BitmapFormat::kRle, BitmapFormat::kEwah}) {
    const std::string path = TempPath("se_roundtrip");
    StorageEngineOptions options;
    options.pool_pages = 4;
    options.remove_on_close = true;
    auto engine = StorageEngine::Open(path, options);
    ASSERT_TRUE(engine.ok());
    const BitVector bits = RandomBits(1 << 15, 42);
    const auto id = (*engine)->PutSlice(MakeStored(bits, format));
    ASSERT_TRUE(id.ok());
    const auto loaded = (*engine)->GetSlice(*id);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded->ToBitVector(), bits);
  }
}

TEST(StorageEngineTest, MultiPageSliceSurvivesCapOnePool) {
  // A slice larger than the pool must still be readable: GetSlice pins
  // one page at a time, never the whole extent.
  const std::string path = TempPath("se_cap1");
  StorageEngineOptions options;
  options.pool_pages = 1;
  options.remove_on_close = true;
  auto engine = StorageEngine::Open(path, options);
  ASSERT_TRUE(engine.ok());
  const BitVector bits = RandomBits(1 << 17, 7);  // ~16 KB plain = 5 pages.
  const auto id = (*engine)->PutSlice(MakeStored(bits, BitmapFormat::kPlain));
  ASSERT_TRUE(id.ok());
  const auto pages = (*engine)->SlicePages(*id);
  ASSERT_TRUE(pages.ok());
  EXPECT_GT(*pages, 1u);
  const auto loaded = (*engine)->GetSlice(*id);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->ToBitVector(), bits);
}

TEST(StorageEngineTest, UpdateReusesOrRelocatesExtent) {
  const std::string path = TempPath("se_update");
  StorageEngineOptions options;
  options.pool_pages = 8;
  options.remove_on_close = true;
  auto engine = StorageEngine::Open(path, options);
  ASSERT_TRUE(engine.ok());
  const auto id =
      (*engine)->PutSlice(MakeStored(RandomBits(4096, 1), BitmapFormat::kPlain));
  ASSERT_TRUE(id.ok());
  // Same-size update reuses the extent in place.
  const BitVector replacement = RandomBits(4096, 2);
  ASSERT_TRUE(
      (*engine)
          ->UpdateSlice(*id, MakeStored(replacement, BitmapFormat::kPlain))
          .ok());
  auto loaded = (*engine)->GetSlice(*id);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->ToBitVector(), replacement);
  // A much larger payload relocates to a fresh extent.
  const BitVector grown = RandomBits(1 << 16, 3);
  ASSERT_TRUE(
      (*engine)->UpdateSlice(*id, MakeStored(grown, BitmapFormat::kPlain)).ok());
  loaded = (*engine)->GetSlice(*id);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->ToBitVector(), grown);
}

TEST(StorageEngineTest, SyncThenRecoverRoundTrip) {
  const std::string path = TempPath("se_recover");
  RemoveFiles(path);
  std::vector<BitVector> originals;
  std::vector<StorageEngine::SliceId> ids;
  {
    StorageEngineOptions options;
    options.pool_pages = 4;
    auto engine = StorageEngine::Open(path, options);
    ASSERT_TRUE(engine.ok());
    for (uint64_t i = 0; i < 6; ++i) {
      originals.push_back(RandomBits(3000 + 500 * i, i + 100));
      const auto id = (*engine)->PutSlice(
          MakeStored(originals.back(), BitmapFormat::kEwah));
      ASSERT_TRUE(id.ok());
      ids.push_back(*id);
    }
    ASSERT_TRUE((*engine)->Sync().ok());
  }
  {
    StorageEngineOptions options;
    options.pool_pages = 4;
    options.recover = true;
    options.remove_on_close = true;
    auto engine = StorageEngine::Open(path, options);
    ASSERT_TRUE(engine.ok());
    ASSERT_EQ((*engine)->NumSlices(), originals.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      ASSERT_TRUE((*engine)->VerifySlice(ids[i]).ok());
      const auto loaded = (*engine)->GetSlice(ids[i]);
      ASSERT_TRUE(loaded.ok());
      EXPECT_EQ(loaded->ToBitVector(), originals[i]) << "slice " << i;
    }
  }
}

TEST(StorageEngineTest, TornPageWriteIsDetectedAndOldStateRecovers) {
  const std::string path = TempPath("se_torn");
  RemoveFiles(path);
  BitVector committed;
  StorageEngine::SliceId committed_id = 0;
  {
    StorageEngineOptions options;
    options.pool_pages = 2;  // Small pool: evictions force page writes.
    options.fail_after_page_writes = 8;
    auto engine = StorageEngine::Open(path, options);
    ASSERT_TRUE(engine.ok());
    committed = RandomBits(1 << 15, 55);
    const auto id =
        (*engine)->PutSlice(MakeStored(committed, BitmapFormat::kPlain));
    ASSERT_TRUE(id.ok());
    committed_id = *id;
    ASSERT_TRUE((*engine)->Sync().ok());  // Commit point: sidecar written.
    // Keep appending until the injected fault tears a page write. The
    // engine surfaces the error on the write (eviction/flush) that hits it.
    Status failed = Status::OK();
    for (uint64_t i = 0; i < 32 && failed.ok(); ++i) {
      const auto next =
          (*engine)->PutSlice(MakeStored(RandomBits(1 << 15, i), BitmapFormat::kPlain));
      if (!next.ok()) {
        failed = next.status();
        break;
      }
      failed = (*engine)->Sync();
    }
    EXPECT_FALSE(failed.ok()) << "fault hook never fired";
  }
  {
    // Recovery: the last committed sidecar still describes only intact
    // extents; the committed slice reads back bit-identically.
    StorageEngineOptions options;
    options.pool_pages = 2;
    options.recover = true;
    options.remove_on_close = true;
    auto engine = StorageEngine::Open(path, options);
    ASSERT_TRUE(engine.ok());
    ASSERT_GE((*engine)->NumSlices(), 1u);
    const auto loaded = (*engine)->GetSlice(committed_id);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded->ToBitVector(), committed);
  }
}

TEST(StorageEngineTest, CrashBeforeMapRenameKeepsPreviousSidecar) {
  const std::string path = TempPath("se_prerename");
  RemoveFiles(path);
  BitVector first = RandomBits(2000, 9);
  {
    StorageEngineOptions options;
    options.pool_pages = 4;
    auto engine = StorageEngine::Open(path, options);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE(
        (*engine)->PutSlice(MakeStored(first, BitmapFormat::kPlain)).ok());
    ASSERT_TRUE((*engine)->Sync().ok());
  }
  {
    // Second generation: add a slice but crash before the sidecar rename.
    StorageEngineOptions options;
    options.pool_pages = 4;
    options.recover = true;
    options.fail_before_map_rename = true;
    auto engine = StorageEngine::Open(path, options);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE(
        (*engine)
            ->PutSlice(MakeStored(RandomBits(2000, 10), BitmapFormat::kPlain))
            .ok());
    EXPECT_FALSE((*engine)->Sync().ok());  // Injected pre-rename crash.
  }
  {
    // The old sidecar is untouched: one slice, bit-identical.
    StorageEngineOptions options;
    options.pool_pages = 4;
    options.recover = true;
    options.remove_on_close = true;
    auto engine = StorageEngine::Open(path, options);
    ASSERT_TRUE(engine.ok());
    EXPECT_EQ((*engine)->NumSlices(), 1u);
    const auto loaded = (*engine)->GetSlice(0);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded->ToBitVector(), first);
  }
}

TEST(StorageEngineTest, VerifySliceCatchesOnDiskCorruption) {
  const std::string path = TempPath("se_verify");
  RemoveFiles(path);
  StorageEngine::SliceId id = 0;
  {
    StorageEngineOptions options;
    options.pool_pages = 4;
    auto engine = StorageEngine::Open(path, options);
    ASSERT_TRUE(engine.ok());
    const auto put =
        (*engine)->PutSlice(MakeStored(RandomBits(5000, 77), BitmapFormat::kPlain));
    ASSERT_TRUE(put.ok());
    id = *put;
    ASSERT_TRUE((*engine)->VerifySlice(id).ok());
    ASSERT_TRUE((*engine)->Sync().ok());
  }
  {
    std::FILE* raw = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(raw, nullptr);
    ASSERT_EQ(std::fseek(raw, PageFile::kHeaderBytes + 100, SEEK_SET), 0);
    std::fputc(0xEE, raw);
    std::fclose(raw);
  }
  {
    StorageEngineOptions options;
    options.pool_pages = 4;
    options.recover = true;
    options.remove_on_close = true;
    auto engine = StorageEngine::Open(path, options);
    ASSERT_TRUE(engine.ok());
    EXPECT_FALSE((*engine)->VerifySlice(id).ok());
  }
}

TEST(StorageEngineTest, PageFaultsChargeTheAccountant) {
  const std::string path = TempPath("se_charges");
  IoAccountant io;
  StorageEngineOptions options;
  options.pool_pages = 2;
  options.io = &io;
  options.remove_on_close = true;
  auto engine = StorageEngine::Open(path, options);
  ASSERT_TRUE(engine.ok());
  const auto id =
      (*engine)->PutSlice(MakeStored(RandomBits(1 << 16, 5), BitmapFormat::kPlain));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE((*engine)->Sync().ok());
  // Writes were charged symmetrically.
  EXPECT_GT(io.stats().pages_written, 0u);
  EXPECT_GT(io.stats().bytes_written, 0u);
  io.Reset();
  // A cold read faults every extent page; bytes equal the stored form.
  size_t faulted = 0;
  ASSERT_TRUE((*engine)->GetSlice(*id, &faulted).ok());
  const auto stored_bytes = (*engine)->SliceBytes(*id);
  ASSERT_TRUE(stored_bytes.ok());
  EXPECT_EQ(io.stats().bytes_read, *stored_bytes);
  const auto pages = (*engine)->SlicePages(*id);
  ASSERT_TRUE(pages.ok());
  EXPECT_EQ(faulted, *pages);
  EXPECT_EQ(io.stats().pages_read, *pages);
}

}  // namespace
}  // namespace engine
}  // namespace ebi
