#include "query/maintenance.h"

#include <gtest/gtest.h>

#include "index/encoded_bitmap_index.h"
#include "index/simple_bitmap_index.h"
#include "obs/metrics.h"
#include "test_util.h"

namespace ebi {
namespace {

using testing_util::IntTable;
using testing_util::ScanEquals;

class MaintenanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = IntTable({1, 2, 3});
    encoded_ = std::make_unique<EncodedBitmapIndex>(
        &table_->column(0), &table_->existence(), &io_);
    simple_ = std::make_unique<SimpleBitmapIndex>(
        &table_->column(0), &table_->existence(), &io_);
    ASSERT_TRUE(encoded_->Build().ok());
    ASSERT_TRUE(simple_->Build().ok());
    driver_ = std::make_unique<MaintenanceDriver>(table_.get());
    ASSERT_TRUE(driver_->AttachIndex(encoded_.get()).ok());
    ASSERT_TRUE(driver_->AttachIndex(simple_.get()).ok());
  }

  void ExpectAgreement(int64_t v) {
    const auto a = encoded_->EvaluateEquals(Value::Int(v));
    const auto b = simple_->EvaluateEquals(Value::Int(v));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b) << v;
    EXPECT_EQ(*a, ScanEquals(*table_, table_->column(0), v)) << v;
  }

  IoAccountant io_;
  std::unique_ptr<Table> table_;
  std::unique_ptr<EncodedBitmapIndex> encoded_;
  std::unique_ptr<SimpleBitmapIndex> simple_;
  std::unique_ptr<MaintenanceDriver> driver_;
};

TEST_F(MaintenanceTest, AppendPropagatesToAllIndexes) {
  ASSERT_TRUE(driver_->AppendRow({Value::Int(2)}).ok());
  EXPECT_EQ(table_->NumRows(), 4u);
  ExpectAgreement(2);
}

TEST_F(MaintenanceTest, AppendWithDomainExpansion) {
  ASSERT_TRUE(driver_->AppendRow({Value::Int(99)}).ok());
  ExpectAgreement(99);
  ExpectAgreement(1);
}

TEST_F(MaintenanceTest, ManyAppendsAcrossWidthBoundaries) {
  for (int64_t v = 4; v < 30; ++v) {
    ASSERT_TRUE(driver_->AppendRow({Value::Int(v % 11)}).ok());
  }
  for (int64_t v = 0; v <= 11; ++v) {
    ExpectAgreement(v);
  }
}

TEST_F(MaintenanceTest, DeletePropagates) {
  ASSERT_TRUE(driver_->DeleteRow(1).ok());
  EXPECT_FALSE(table_->RowExists(1));
  ExpectAgreement(2);  // Value of the deleted row no longer matches.
  const auto result = encoded_->EvaluateEquals(Value::Int(2));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->IsZero());
}

TEST_F(MaintenanceTest, DeleteThenAppendSameValue) {
  ASSERT_TRUE(driver_->DeleteRow(0).ok());
  ASSERT_TRUE(driver_->AppendRow({Value::Int(1)}).ok());
  const auto result = encoded_->EvaluateEquals(Value::Int(1));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "0001");
}

TEST_F(MaintenanceTest, DeleteOutOfRangeRejected) {
  EXPECT_EQ(driver_->DeleteRow(99).code(), StatusCode::kOutOfRange);
}

TEST_F(MaintenanceTest, ArityErrorDoesNotCorruptIndexes) {
  EXPECT_FALSE(driver_->AppendRow({Value::Int(1), Value::Int(2)}).ok());
  EXPECT_EQ(table_->NumRows(), 3u);
  ExpectAgreement(1);
}

TEST_F(MaintenanceTest, NumIndexes) { EXPECT_EQ(driver_->NumIndexes(), 2u); }

TEST_F(MaintenanceTest, AttachNullIndexRejected) {
  EXPECT_EQ(driver_->AttachIndex(nullptr).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(driver_->NumIndexes(), 2u);
}

TEST_F(MaintenanceTest, AttachDuplicateIndexRejected) {
  EXPECT_EQ(driver_->AttachIndex(encoded_.get()).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(driver_->NumIndexes(), 2u);
  // The rejected duplicate must not double-append on the next row.
  ASSERT_TRUE(driver_->AppendRow({Value::Int(2)}).ok());
  ExpectAgreement(2);
}

TEST_F(MaintenanceTest, BatchedAppendMatchesPerRowResults) {
  std::vector<std::vector<Value>> batch;
  for (int64_t v = 4; v < 30; ++v) {
    batch.push_back({Value::Int(v % 11)});
  }
  ASSERT_TRUE(driver_->AppendRows(batch).ok());
  EXPECT_EQ(table_->NumRows(), 3u + batch.size());
  for (int64_t v = 0; v <= 11; ++v) {
    ExpectAgreement(v);
  }
}

TEST_F(MaintenanceTest, EmptyBatchIsANoOp) {
  ASSERT_TRUE(driver_->AppendRows({}).ok());
  EXPECT_EQ(table_->NumRows(), 3u);
  ExpectAgreement(1);
}

// The point of the batched path: a compressed encoded index decompresses
// and recompresses its slice set once per *batch*, while per-row appends
// pay one full rewrite per row. Asserted through the slice-rewrite
// counter, with correctness cross-checked against a scan.
TEST(MaintenanceBatchRewriteTest, CompressedBatchRewritesSlicesOnce) {
  IoAccountant io;
  std::unique_ptr<Table> table = IntTable({1, 2, 3});
  EncodedBitmapIndexOptions options;
  options.format = BitmapFormat::kEwah;
  EncodedBitmapIndex index(&table->column(0), &table->existence(), &io,
                           options);
  ASSERT_TRUE(index.Build().ok());
  MaintenanceDriver driver(table.get());
  ASSERT_TRUE(driver.AttachIndex(&index).ok());

  obs::Counter* rewrites = obs::MetricsRegistry::Global().GetCounter(
      obs::kMetricIndexSliceRewrites);

  // One batch of 8 rows, all carrying new distinct values, so the code
  // width grows too — still exactly one rewrite cycle.
  std::vector<std::vector<Value>> batch;
  for (int64_t v = 4; v < 12; ++v) {
    batch.push_back({Value::Int(v)});
  }
  const uint64_t before_batch = rewrites->Value();
  ASSERT_TRUE(driver.AppendRows(batch).ok());
  EXPECT_EQ(rewrites->Value() - before_batch, 1u);

  // The same rows appended one by one cost one rewrite each.
  const uint64_t before_rows = rewrites->Value();
  for (int64_t v = 12; v < 16; ++v) {
    ASSERT_TRUE(driver.AppendRow({Value::Int(v)}).ok());
  }
  EXPECT_EQ(rewrites->Value() - before_rows, 4u);

  for (int64_t v = 1; v < 16; ++v) {
    const auto got = index.EvaluateEquals(Value::Int(v));
    ASSERT_TRUE(got.ok()) << v;
    EXPECT_EQ(*got, ScanEquals(*table, table->column(0), v)) << v;
  }
}

}  // namespace
}  // namespace ebi
