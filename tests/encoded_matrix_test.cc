// Exhaustive option-matrix property tests for EncodedBitmapIndex: every
// combination of encoding strategy, void-codeword reservation, NULL
// presence, and logical reduction must answer identically to a table scan
// and survive appends, domain expansion, and deletions.

#include <gtest/gtest.h>

#include <tuple>

#include "index/encoded_bitmap_index.h"
#include "test_util.h"

namespace ebi {
namespace {

using testing_util::RandomIntTable;
using testing_util::ScanEquals;
using testing_util::ScanRange;

using MatrixParam =
    std::tuple<EncodingStrategy, bool /*reserve_void*/, bool /*with_nulls*/,
               bool /*reduction*/>;

class EncodedMatrixTest : public ::testing::TestWithParam<MatrixParam> {
 protected:
  void SetUp() override {
    const auto [strategy, reserve_void, with_nulls, reduction] = GetParam();
    table_ = RandomIntTable(350, 45, Seed(), with_nulls ? 0.15 : 0.0);
    EncodedBitmapIndexOptions options;
    options.strategy = strategy;
    options.reserve_void_zero = reserve_void;
    options.reduction.enable_reduction = reduction;
    options.random_seed = Seed() + 1;
    index_ = std::make_unique<EncodedBitmapIndex>(
        &table_->column(0), &table_->existence(), &io_, options);
    ASSERT_TRUE(index_->Build().ok());
  }

  uint64_t Seed() const {
    const auto [strategy, reserve_void, with_nulls, reduction] = GetParam();
    return static_cast<uint64_t>(strategy) * 8 +
           (reserve_void ? 4 : 0) + (with_nulls ? 2 : 0) +
           (reduction ? 1 : 0);
  }

  IoAccountant io_;
  std::unique_ptr<Table> table_;
  std::unique_ptr<EncodedBitmapIndex> index_;
};

TEST_P(EncodedMatrixTest, PointAndRangeAgreeWithScan) {
  for (int64_t v = 0; v < 45; v += 4) {
    const auto result = index_->EvaluateEquals(Value::Int(v));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result, ScanEquals(*table_, table_->column(0), v)) << v;
  }
  Rng rng(Seed() + 9);
  for (int q = 0; q < 8; ++q) {
    const int64_t lo = static_cast<int64_t>(rng.UniformInt(45));
    const int64_t hi = lo + static_cast<int64_t>(rng.UniformInt(15));
    const auto result = index_->EvaluateRange(lo, hi);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result, ScanRange(*table_, table_->column(0), lo, hi))
        << lo << ".." << hi;
  }
}

TEST_P(EncodedMatrixTest, SurvivesAppendsExpansionAndDeletes) {
  const auto [strategy, reserve_void, with_nulls, reduction] = GetParam();
  Rng rng(Seed() + 21);
  for (int step = 0; step < 40; ++step) {
    const size_t row = table_->NumRows();
    if (rng.Bernoulli(0.75)) {
      // Mix of known (0..44) and novel (45..59) values, plus NULLs when
      // the mapping can hold them.
      const bool null_row = with_nulls && rng.Bernoulli(0.1);
      const Value v = null_row
                          ? Value::Null()
                          : Value::Int(static_cast<int64_t>(
                                rng.UniformInt(60)));
      ASSERT_TRUE(table_->AppendRow({v}).ok());
      ASSERT_TRUE(index_->Append(row).ok());
    } else {
      const size_t victim =
          static_cast<size_t>(rng.UniformInt(table_->NumRows()));
      if (table_->RowExists(victim)) {
        ASSERT_TRUE(table_->DeleteRow(victim).ok());
        ASSERT_TRUE(index_->MarkDeleted(victim).ok());
      }
    }
  }
  for (int64_t v = 0; v < 60; v += 6) {
    const auto result = index_->EvaluateEquals(Value::Int(v));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result, ScanEquals(*table_, table_->column(0), v)) << v;
  }
  if (with_nulls) {
    size_t scan_nulls = 0;
    for (size_t r = 0; r < table_->NumRows(); ++r) {
      if (table_->RowExists(r) &&
          table_->column(0).ValueIdAt(r) == kNullValueId) {
        ++scan_nulls;
      }
    }
    const auto nulls = index_->EvaluateIsNull();
    ASSERT_TRUE(nulls.ok());
    EXPECT_EQ(nulls->Count(), scan_nulls);
  }
}

TEST_P(EncodedMatrixTest, InListEquivalentToUnionOfPoints) {
  Rng rng(Seed() + 33);
  std::vector<Value> values;
  BitVector expected(table_->NumRows());
  for (int i = 0; i < 7; ++i) {
    const int64_t v = static_cast<int64_t>(rng.UniformInt(50));
    values.push_back(Value::Int(v));
    expected.OrWith(ScanEquals(*table_, table_->column(0), v));
  }
  const auto result = index_->EvaluateIn(values);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, expected);
}

std::string MatrixParamName(
    const ::testing::TestParamInfo<MatrixParam>& info) {
  std::string name;
  switch (std::get<0>(info.param)) {
    case EncodingStrategy::kSequential:
      name = "Seq";
      break;
    case EncodingStrategy::kGray:
      name = "Gray";
      break;
    default:
      name = "Rand";
  }
  name += std::get<1>(info.param) ? "Void" : "NoVoid";
  name += std::get<2>(info.param) ? "Nulls" : "NoNulls";
  name += std::get<3>(info.param) ? "Red" : "Raw";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllOptionCombos, EncodedMatrixTest,
    ::testing::Combine(::testing::Values(EncodingStrategy::kSequential,
                                         EncodingStrategy::kGray,
                                         EncodingStrategy::kRandom),
                       ::testing::Bool(),   // reserve_void_zero.
                       ::testing::Bool(),   // with_nulls.
                       ::testing::Bool()),  // enable_reduction.
    MatrixParamName);

}  // namespace
}  // namespace ebi
