#include "index/simple_bitmap_index.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ebi {
namespace {

using testing_util::IntTable;
using testing_util::RandomIntTable;
using testing_util::ScanEquals;
using testing_util::ScanRange;

class SimpleBitmapIndexTest : public ::testing::Test {
 protected:
  void Init(std::unique_ptr<Table> table,
            SimpleBitmapIndexOptions options = {}) {
    table_ = std::move(table);
    index_ = std::make_unique<SimpleBitmapIndex>(
        &table_->column(0), &table_->existence(), &io_, options);
    ASSERT_TRUE(index_->Build().ok());
  }

  IoAccountant io_;
  std::unique_ptr<Table> table_;
  std::unique_ptr<SimpleBitmapIndex> index_;
};

TEST_F(SimpleBitmapIndexTest, OneVectorPerDistinctValue) {
  Init(IntTable({1, 2, 3, 1, 2, 1}));
  EXPECT_EQ(index_->NumVectors(), 3u);
  EXPECT_EQ(index_->Name(), "simple-bitmap");
}

TEST_F(SimpleBitmapIndexTest, EqualsMatchesScan) {
  Init(IntTable({5, 7, 5, 9, 7, 5}));
  const auto result = index_->EvaluateEquals(Value::Int(5));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, ScanEquals(*table_, table_->column(0), 5));
}

TEST_F(SimpleBitmapIndexTest, EqualsOnUnknownValueIsEmpty) {
  Init(IntTable({1, 2}));
  const auto result = index_->EvaluateEquals(Value::Int(42));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->IsZero());
}

TEST_F(SimpleBitmapIndexTest, InReadsOneVectorPerValuePlusExistence) {
  Init(IntTable({0, 1, 2, 3, 4, 5, 6, 7}));
  io_.Reset();
  const auto result = index_->EvaluateIn(
      {Value::Int(1), Value::Int(3), Value::Int(5)});
  ASSERT_TRUE(result.ok());
  // c_s = δ = 3, plus the mandatory existence AND (Section 3.1 /
  // Theorem 2.1 contrast).
  EXPECT_EQ(io_.stats().vectors_read, 4u);
  EXPECT_EQ(result->Count(), 3u);
}

TEST_F(SimpleBitmapIndexTest, RangeReadsDeltaVectors) {
  Init(IntTable({0, 1, 2, 3, 4, 5, 6, 7, 2, 3}));
  io_.Reset();
  const auto result = index_->EvaluateRange(2, 5);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(io_.stats().vectors_read, 5u);  // δ=4 + existence.
  EXPECT_EQ(*result, ScanRange(*table_, table_->column(0), 2, 5));
}

TEST_F(SimpleBitmapIndexTest, DeletedRowsAreMaskedOut) {
  Init(IntTable({1, 1, 1}));
  ASSERT_TRUE(table_->DeleteRow(1).ok());
  const auto result = index_->EvaluateEquals(Value::Int(1));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "101");
}

TEST_F(SimpleBitmapIndexTest, NullVectorAnswersIsNull) {
  Init(IntTable({1, INT64_MIN, 2, INT64_MIN}));
  const auto nulls = index_->EvaluateIsNull();
  ASSERT_TRUE(nulls.ok());
  EXPECT_EQ(nulls->ToString(), "0101");
  // NULLs never match equality.
  const auto eq = index_->EvaluateEquals(Value::Int(1));
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ(eq->ToString(), "1000");
}

TEST_F(SimpleBitmapIndexTest, AppendExistingValue) {
  Init(IntTable({1, 2}));
  ASSERT_TRUE(table_->AppendRow({Value::Int(2)}).ok());
  ASSERT_TRUE(index_->Append(2).ok());
  const auto result = index_->EvaluateEquals(Value::Int(2));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "011");
}

TEST_F(SimpleBitmapIndexTest, AppendNewValueGrowsVectors) {
  Init(IntTable({1, 2}));
  ASSERT_TRUE(table_->AppendRow({Value::Int(99)}).ok());
  ASSERT_TRUE(index_->Append(2).ok());
  EXPECT_EQ(index_->NumVectors(), 3u);
  const auto result = index_->EvaluateEquals(Value::Int(99));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "001");
}

TEST_F(SimpleBitmapIndexTest, AppendOutOfOrderRejected) {
  Init(IntTable({1}));
  EXPECT_EQ(index_->Append(5).code(), StatusCode::kInvalidArgument);
}

TEST_F(SimpleBitmapIndexTest, SparsityApproachesTheory) {
  // (m-1)/m sparsity on a balanced column (Section 2.1).
  Init(IntTable({0, 1, 2, 3, 0, 1, 2, 3}));
  EXPECT_DOUBLE_EQ(index_->AverageSparsity(), 0.75);
}

TEST_F(SimpleBitmapIndexTest, SizeGrowsLinearlyWithCardinality) {
  auto small = RandomIntTable(512, 4, 1);
  auto big = RandomIntTable(512, 64, 2);
  IoAccountant io;
  SimpleBitmapIndex small_idx(&small->column(0), &small->existence(), &io);
  SimpleBitmapIndex big_idx(&big->column(0), &big->existence(), &io);
  ASSERT_TRUE(small_idx.Build().ok());
  ASSERT_TRUE(big_idx.Build().ok());
  // 16x the cardinality => ~16x the bits.
  EXPECT_GT(big_idx.SizeBytes(), 10 * small_idx.SizeBytes());
}

TEST_F(SimpleBitmapIndexTest, CompressedModeMatchesPlain) {
  auto table = RandomIntTable(500, 20, 3);
  IoAccountant io;
  SimpleBitmapIndex plain(&table->column(0), &table->existence(), &io);
  SimpleBitmapIndex rle(
      &table->column(0), &table->existence(), &io,
      SimpleBitmapIndexOptions::WithFormat(BitmapFormat::kRle));
  SimpleBitmapIndex ewah(
      &table->column(0), &table->existence(), &io,
      SimpleBitmapIndexOptions::WithFormat(BitmapFormat::kEwah));
  ASSERT_TRUE(plain.Build().ok());
  ASSERT_TRUE(rle.Build().ok());
  ASSERT_TRUE(ewah.Build().ok());
  EXPECT_EQ(plain.Name(), "simple-bitmap");
  EXPECT_EQ(rle.Name(), "simple-bitmap-rle");
  EXPECT_EQ(ewah.Name(), "simple-bitmap-ewah");
  for (int64_t v = 0; v < 20; ++v) {
    const auto a = plain.EvaluateEquals(Value::Int(v));
    const auto b = rle.EvaluateEquals(Value::Int(v));
    const auto c = ewah.EvaluateEquals(Value::Int(v));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(*a, *b) << v;
    EXPECT_EQ(*a, *c) << v;
  }
  // Multi-value IN runs the compressed-OR path; ranges sweep many ids.
  const std::vector<Value> in_list = {Value::Int(1), Value::Int(4),
                                      Value::Int(17)};
  const auto pin = plain.EvaluateIn(in_list);
  const auto rin = rle.EvaluateIn(in_list);
  const auto ein = ewah.EvaluateIn(in_list);
  ASSERT_TRUE(pin.ok() && rin.ok() && ein.ok());
  EXPECT_EQ(*pin, *rin);
  EXPECT_EQ(*pin, *ein);
  const auto prange = plain.EvaluateRange(3, 15);
  const auto erange = ewah.EvaluateRange(3, 15);
  ASSERT_TRUE(prange.ok() && erange.ok());
  EXPECT_EQ(*prange, *erange);
}

TEST_F(SimpleBitmapIndexTest, CompressedModeSavesSpaceOnSparseVectors) {
  // Cardinality 100 over 5000 rows: each vector is 99% zeros.
  auto table = RandomIntTable(5000, 100, 4);
  IoAccountant io;
  SimpleBitmapIndex plain(&table->column(0), &table->existence(), &io);
  SimpleBitmapIndex rle(
      &table->column(0), &table->existence(), &io,
      SimpleBitmapIndexOptions::WithFormat(BitmapFormat::kRle));
  SimpleBitmapIndex ewah(
      &table->column(0), &table->existence(), &io,
      SimpleBitmapIndexOptions::WithFormat(BitmapFormat::kEwah));
  ASSERT_TRUE(plain.Build().ok());
  ASSERT_TRUE(rle.Build().ok());
  ASSERT_TRUE(ewah.Build().ok());
  EXPECT_LT(rle.SizeBytes(), plain.SizeBytes());
  EXPECT_LT(ewah.SizeBytes(), plain.SizeBytes());
}

TEST_F(SimpleBitmapIndexTest, CompressedAppendStaysCorrect) {
  for (BitmapFormat format : {BitmapFormat::kRle, BitmapFormat::kEwah}) {
    Init(IntTable({1, 2, 1}),
         SimpleBitmapIndexOptions::WithFormat(format));
    ASSERT_TRUE(table_->AppendRow({Value::Int(7)}).ok());
    ASSERT_TRUE(index_->Append(3).ok());
    ASSERT_TRUE(table_->AppendRow({Value::Int(1)}).ok());
    ASSERT_TRUE(index_->Append(4).ok());
    const auto one = index_->EvaluateEquals(Value::Int(1));
    ASSERT_TRUE(one.ok());
    EXPECT_EQ(one->ToString(), "10101") << BitmapFormatName(format);
    const auto seven = index_->EvaluateEquals(Value::Int(7));
    ASSERT_TRUE(seven.ok());
    EXPECT_EQ(seven->ToString(), "00010") << BitmapFormatName(format);
  }
}

TEST_F(SimpleBitmapIndexTest, RangeOnStringColumnRejected) {
  auto table = std::make_unique<Table>("T");
  ASSERT_TRUE(table->AddColumn("s", Column::Type::kString).ok());
  ASSERT_TRUE(table->AppendRow({Value::Str("x")}).ok());
  table_ = std::move(table);
  index_ = std::make_unique<SimpleBitmapIndex>(
      &table_->column(0), &table_->existence(), &io_);
  ASSERT_TRUE(index_->Build().ok());
  EXPECT_EQ(index_->EvaluateRange(0, 1).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ebi
