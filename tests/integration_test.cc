#include <gtest/gtest.h>

#include "ebi/ebi.h"
#include "test_util.h"

namespace ebi {
namespace {

using testing_util::RandomIntTable;

/// Cross-index agreement: every index family must return identical answers
/// for identical selections on random data — the strongest end-to-end
/// invariant the library offers.
class CrossIndexAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrossIndexAgreementTest, AllIndexesAgreeOnRandomWorkload) {
  const uint64_t seed = GetParam();
  auto table = RandomIntTable(600, 120, seed);
  IoAccountant io;

  SimpleBitmapIndex simple(&table->column(0), &table->existence(), &io);
  EncodedBitmapIndex encoded(&table->column(0), &table->existence(), &io);
  BitSlicedIndex sliced(&table->column(0), &table->existence(), &io);
  ProjectionIndex projection(&table->column(0), &table->existence(), &io);
  BTreeIndex btree(&table->column(0), &table->existence(), &io);
  ValueListIndex value_list(&table->column(0), &table->existence(), &io);
  RangeBasedBitmapIndex range_based(&table->column(0), &table->existence(),
                                    &io);
  DynamicBitmapIndex dynamic(&table->column(0), &table->existence(), &io);

  std::vector<SecondaryIndex*> indexes = {
      &simple, &encoded, &sliced,     &projection,
      &btree,  &value_list, &range_based, &dynamic};
  for (SecondaryIndex* index : indexes) {
    ASSERT_TRUE(index->Build().ok()) << index->Name();
  }

  Rng rng(seed * 31 + 1);
  for (int q = 0; q < 12; ++q) {
    const int64_t lo = static_cast<int64_t>(rng.UniformInt(120));
    const int64_t hi = lo + static_cast<int64_t>(rng.UniformInt(40));
    const auto reference = indexes[0]->EvaluateRange(lo, hi);
    ASSERT_TRUE(reference.ok());
    for (size_t i = 1; i < indexes.size(); ++i) {
      const auto result = indexes[i]->EvaluateRange(lo, hi);
      ASSERT_TRUE(result.ok()) << indexes[i]->Name();
      EXPECT_EQ(*result, *reference)
          << indexes[i]->Name() << " range " << lo << ".." << hi;
    }

    const Value point = Value::Int(static_cast<int64_t>(
        rng.UniformInt(130)));  // Sometimes absent values.
    const auto ref_eq = indexes[0]->EvaluateEquals(point);
    ASSERT_TRUE(ref_eq.ok());
    for (size_t i = 1; i < indexes.size(); ++i) {
      const auto result = indexes[i]->EvaluateEquals(point);
      ASSERT_TRUE(result.ok()) << indexes[i]->Name();
      EXPECT_EQ(*result, *ref_eq) << indexes[i]->Name();
    }
  }
}

TEST_P(CrossIndexAgreementTest, AgreementSurvivesAppendsAndDeletes) {
  const uint64_t seed = GetParam();
  auto table = RandomIntTable(200, 30, seed);
  IoAccountant io;
  SimpleBitmapIndex simple(&table->column(0), &table->existence(), &io);
  EncodedBitmapIndex encoded(&table->column(0), &table->existence(), &io);
  BTreeIndex btree(&table->column(0), &table->existence(), &io);
  ASSERT_TRUE(simple.Build().ok());
  ASSERT_TRUE(encoded.Build().ok());
  ASSERT_TRUE(btree.Build().ok());

  MaintenanceDriver driver(table.get());
  ASSERT_TRUE(driver.AttachIndex(&simple).ok());
  ASSERT_TRUE(driver.AttachIndex(&encoded).ok());
  ASSERT_TRUE(driver.AttachIndex(&btree).ok());

  Rng rng(seed + 77);
  for (int step = 0; step < 60; ++step) {
    if (rng.Bernoulli(0.8)) {
      ASSERT_TRUE(driver
                      .AppendRow({Value::Int(static_cast<int64_t>(
                          rng.UniformInt(45)))})  // Occasionally new values.
                      .ok());
    } else {
      const size_t row =
          static_cast<size_t>(rng.UniformInt(table->NumRows()));
      if (table->RowExists(row)) {
        ASSERT_TRUE(driver.DeleteRow(row).ok());
      }
    }
  }

  for (int64_t v = 0; v < 45; v += 4) {
    const auto a = simple.EvaluateEquals(Value::Int(v));
    const auto b = encoded.EvaluateEquals(Value::Int(v));
    const auto c = btree.EvaluateEquals(Value::Int(v));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(*a, *b) << v;
    EXPECT_EQ(*a, *c) << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossIndexAgreementTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(StarSchemaIntegrationTest, HierarchyRollupOnFactTable) {
  // End-to-end Figure 4/5 scenario: encode SALES.branch with the
  // salespoint hierarchy and roll up per alliance.
  StarSchemaConfig config;
  config.fact_rows = 3000;
  config.num_products = 50;
  const auto schema_or = BuildStarSchema(config);
  ASSERT_TRUE(schema_or.ok());
  const StarSchema& schema = **schema_or;

  const Column* branch = *schema.sales->FindColumn("branch");
  IoAccountant io;

  EncodedBitmapIndexOptions options;
  options.strategy = EncodingStrategy::kAnnealed;
  options.training_predicates =
      schema.salespoint_hierarchy.AllGroupPredicates();
  options.optimizer.iterations = 800;
  EncodedBitmapIndex index(branch, &schema.sales->existence(), &io,
                           options);
  ASSERT_TRUE(index.Build().ok());

  // Roll-up: count sales per alliance; totals must cover at least all
  // rows (alliances overlap via shared companies).
  size_t sum = 0;
  for (const char* alliance : {"X", "Y", "Z"}) {
    const auto members =
        schema.salespoint_hierarchy.Members("alliance", alliance);
    ASSERT_TRUE(members.ok());
    std::vector<Value> values;
    for (ValueId branch_id : *members) {
      values.push_back(Value::Int(static_cast<int64_t>(branch_id)));
    }
    const auto rows = index.EvaluateIn(values);
    ASSERT_TRUE(rows.ok());
    sum += rows->Count();
  }
  EXPECT_GE(sum, schema.sales->NumRows());

  // The trained encoding answers alliance selections with few vectors.
  const auto x_members =
      schema.salespoint_hierarchy.Members("alliance", "X");
  ASSERT_TRUE(x_members.ok());
  std::vector<Value> x_values;
  for (ValueId b : *x_members) {
    x_values.push_back(Value::Int(static_cast<int64_t>(b)));
  }
  const auto cost = index.AccessCostForIn(x_values);
  ASSERT_TRUE(cost.ok());
  EXPECT_LE(*cost, 3);
}

TEST(TpcdMixIntegrationTest, EncodedBeatsSimpleOnRangeHeavyMix) {
  // The Section 3.2 claim, measured: on a TPC-D-like mix (12/17 range
  // share) the encoded index reads far fewer bitmap vectors than the
  // simple index.
  const auto table_or = GenerateTable(
      "F", 4000, {{"a", 200, Distribution::kUniform}}, 21);
  ASSERT_TRUE(table_or.ok());
  const Table& table = **table_or;
  const Column* column = *table.FindColumn("a");

  IoAccountant simple_io;
  IoAccountant encoded_io;
  SimpleBitmapIndex simple(column, &table.existence(), &simple_io);
  EncodedBitmapIndex encoded(column, &table.existence(), &encoded_io);
  ASSERT_TRUE(simple.Build().ok());
  ASSERT_TRUE(encoded.Build().ok());

  QueryMixConfig mix;
  mix.num_queries = 60;
  mix.max_delta = 128;
  const auto queries = GenerateQueryMix("a", 200, mix);
  for (const Predicate& q : queries) {
    switch (q.kind) {
      case Predicate::Kind::kEquals: {
        ASSERT_TRUE(simple.EvaluateEquals(q.value).ok());
        ASSERT_TRUE(encoded.EvaluateEquals(q.value).ok());
        break;
      }
      case Predicate::Kind::kIn: {
        ASSERT_TRUE(simple.EvaluateIn(q.values).ok());
        ASSERT_TRUE(encoded.EvaluateIn(q.values).ok());
        break;
      }
      default: {
        ASSERT_TRUE(simple.EvaluateRange(q.lo, q.hi).ok());
        ASSERT_TRUE(encoded.EvaluateRange(q.lo, q.hi).ok());
      }
    }
  }
  EXPECT_LT(encoded_io.stats().vectors_read,
            simple_io.stats().vectors_read / 2);
}

}  // namespace
}  // namespace ebi
