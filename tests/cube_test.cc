#include "boolean/cube.h"

#include <gtest/gtest.h>

namespace ebi {
namespace {

TEST(CubeTest, MinTermSpecifiesAllVariables) {
  const Cube c = Cube::MinTerm(0b101, 3);
  EXPECT_EQ(c.mask, 0b111u);
  EXPECT_EQ(c.values, 0b101u);
  EXPECT_EQ(c.NumLiterals(), 3);
}

TEST(CubeTest, ConstructorMasksValues) {
  // Bits of `values` outside the mask must be dropped.
  const Cube c(0b111, 0b010);
  EXPECT_EQ(c.values, 0b010u);
}

TEST(CubeTest, CoversMatchingAssignment) {
  const Cube c(0b10, 0b11);  // B1 B0'
  EXPECT_TRUE(c.Covers(0b10));
  EXPECT_FALSE(c.Covers(0b11));
  EXPECT_FALSE(c.Covers(0b00));
}

TEST(CubeTest, PartialCubeCoversFreeVariables) {
  const Cube c(0b00, 0b10);  // B1'
  EXPECT_TRUE(c.Covers(0b00));
  EXPECT_TRUE(c.Covers(0b01));
  EXPECT_FALSE(c.Covers(0b10));
  EXPECT_FALSE(c.Covers(0b11));
}

TEST(CubeTest, EmptyMaskCoversEverything) {
  const Cube c(0, 0);
  EXPECT_TRUE(c.Covers(0));
  EXPECT_TRUE(c.Covers(0b1111));
  EXPECT_EQ(c.NumLiterals(), 0);
}

TEST(CubeTest, ContainsAbsorption) {
  const Cube big(0b00, 0b10);    // B1'
  const Cube small(0b01, 0b11);  // B1'B0
  EXPECT_TRUE(big.Contains(small));
  EXPECT_FALSE(small.Contains(big));
  EXPECT_TRUE(big.Contains(big));
}

TEST(CubeTest, CoverageSize) {
  EXPECT_EQ(Cube::MinTerm(0, 4).CoverageSize(4), 1u);
  EXPECT_EQ(Cube(0, 0b0011).CoverageSize(4), 4u);
  EXPECT_EQ(Cube(0, 0).CoverageSize(4), 16u);
}

TEST(CubeTest, TryCombineAdjacent) {
  // B1'B0' + B1'B0 = B1'.
  const auto merged =
      TryCombine(Cube::MinTerm(0b00, 2), Cube::MinTerm(0b01, 2));
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->mask, 0b10u);
  EXPECT_EQ(merged->values, 0b00u);
}

TEST(CubeTest, TryCombineRejectsDistanceTwo) {
  EXPECT_FALSE(
      TryCombine(Cube::MinTerm(0b00, 2), Cube::MinTerm(0b11, 2)).has_value());
}

TEST(CubeTest, TryCombineRejectsDifferentMasks) {
  EXPECT_FALSE(
      TryCombine(Cube(0b0, 0b01), Cube(0b00, 0b11)).has_value());
}

TEST(CubeTest, TryCombineRejectsIdentical) {
  const Cube c = Cube::MinTerm(0b01, 2);
  EXPECT_FALSE(TryCombine(c, c).has_value());
}

TEST(CubeTest, ToStringPaperNotation) {
  // f_a = B1'B0' from Figure 1's example.
  EXPECT_EQ(Cube::MinTerm(0b00, 2).ToString(2), "B1'B0'");
  EXPECT_EQ(Cube::MinTerm(0b01, 2).ToString(2), "B1'B0");
  EXPECT_EQ(Cube::MinTerm(0b10, 2).ToString(2), "B1B0'");
  EXPECT_EQ(Cube(0b00, 0b10).ToString(2), "B1'");
  EXPECT_EQ(Cube(0, 0).ToString(2), "1");
}

TEST(CubeTest, OrderingIsDeterministic) {
  const Cube a(0b0, 0b01);
  const Cube b(0b1, 0b01);
  const Cube c(0b0, 0b10);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b < c);
}

TEST(CubeTest, MergedCubeCoversBothParents) {
  const Cube x = Cube::MinTerm(0b0110, 4);
  const Cube y = Cube::MinTerm(0b0100, 4);
  const auto merged = TryCombine(x, y);
  ASSERT_TRUE(merged.has_value());
  EXPECT_TRUE(merged->Contains(x));
  EXPECT_TRUE(merged->Contains(y));
  EXPECT_EQ(merged->CoverageSize(4), 2u);
}

}  // namespace
}  // namespace ebi
