#include "index/range_based_bitmap_index.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ebi {
namespace {

using testing_util::IntTable;
using testing_util::RandomIntTable;
using testing_util::ScanEquals;
using testing_util::ScanRange;

class RangeBasedBitmapIndexTest : public ::testing::Test {
 protected:
  void Init(std::unique_ptr<Table> table,
            RangeBasedBitmapIndexOptions options = {}) {
    table_ = std::move(table);
    index_ = std::make_unique<RangeBasedBitmapIndex>(
        &table_->column(0), &table_->existence(), &io_, options);
    ASSERT_TRUE(index_->Build().ok());
  }

  IoAccountant io_;
  std::unique_ptr<Table> table_;
  std::unique_ptr<RangeBasedBitmapIndex> index_;
};

TEST_F(RangeBasedBitmapIndexTest, BucketBoundsAreIncreasing) {
  Init(RandomIntTable(1000, 500, 1));
  const auto& bounds = index_->bucket_lower_bounds();
  ASSERT_FALSE(bounds.empty());
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST_F(RangeBasedBitmapIndexTest, EqualPopulationUnderSkew) {
  // Zipf-like skew: bucket populations must stay within a reasonable
  // factor of each other (the [19] design goal).
  auto table = std::make_unique<Table>("T");
  ASSERT_TRUE(table->AddColumn("a", Column::Type::kInt64).ok());
  ZipfGenerator zipf(1000, 1.0, 9);
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(
        table->AppendRow({Value::Int(static_cast<int64_t>(zipf.Next()))})
            .ok());
  }
  RangeBasedBitmapIndexOptions options;
  options.num_buckets = 16;
  Init(std::move(table), options);
  // All rows land in some bucket.
  size_t total = 0;
  for (size_t b = 0; b < index_->NumVectors(); ++b) {
    const auto result =
        index_->EvaluateRange(index_->bucket_lower_bounds()[b],
                              b + 1 < index_->bucket_lower_bounds().size()
                                  ? index_->bucket_lower_bounds()[b + 1] - 1
                                  : 1000);
    ASSERT_TRUE(result.ok());
    total += result->Count();
  }
  EXPECT_EQ(total, 4000u);
}

TEST_F(RangeBasedBitmapIndexTest, RangeMatchesScan) {
  Init(RandomIntTable(800, 200, 2));
  for (const auto& [lo, hi] : std::vector<std::pair<int64_t, int64_t>>{
           {0, 199}, {13, 57}, {100, 100}, {150, 500}, {-10, 5}}) {
    const auto result = index_->EvaluateRange(lo, hi);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result, ScanRange(*table_, table_->column(0), lo, hi))
        << lo << ".." << hi;
  }
}

TEST_F(RangeBasedBitmapIndexTest, EqualsMatchesScan) {
  Init(RandomIntTable(400, 50, 3));
  for (int64_t v = 0; v < 50; v += 7) {
    const auto result = index_->EvaluateEquals(Value::Int(v));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result, ScanEquals(*table_, table_->column(0), v)) << v;
  }
}

TEST_F(RangeBasedBitmapIndexTest, BoundaryBucketsRequireCandidateChecks) {
  RangeBasedBitmapIndexOptions options;
  options.num_buckets = 4;
  Init(IntTable({0, 10, 20, 30, 40, 50, 60, 70}), options);
  // A range cutting through a bucket forces verification.
  const auto result = index_->EvaluateRange(15, 44);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(index_->last_candidates_checked(), 0u);
  EXPECT_EQ(*result, ScanRange(*table_, table_->column(0), 15, 44));
}

TEST_F(RangeBasedBitmapIndexTest, FullyCoveredBucketsSkipChecks) {
  RangeBasedBitmapIndexOptions options;
  options.num_buckets = 4;
  Init(IntTable({0, 1, 2, 3, 4, 5, 6, 7}), options);
  // Buckets are {0,1},{2,3},{4,5},{6,7}; [2,5] covers two whole buckets.
  const auto result = index_->EvaluateRange(2, 5);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(index_->last_candidates_checked(), 0u);
  EXPECT_EQ(result->Count(), 4u);
}

TEST_F(RangeBasedBitmapIndexTest, AppendKeepsBucketsCorrect) {
  Init(IntTable({0, 10, 20, 30}));
  ASSERT_TRUE(table_->AppendRow({Value::Int(15)}).ok());
  ASSERT_TRUE(index_->Append(4).ok());
  const auto result = index_->EvaluateRange(12, 22);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, ScanRange(*table_, table_->column(0), 12, 22));
}

TEST_F(RangeBasedBitmapIndexTest, DeletedRowsMasked) {
  Init(IntTable({5, 5, 5}));
  ASSERT_TRUE(table_->DeleteRow(1).ok());
  const auto result = index_->EvaluateEquals(Value::Int(5));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "101");
}

TEST_F(RangeBasedBitmapIndexTest, StringColumnRejected) {
  auto table = std::make_unique<Table>("T");
  ASSERT_TRUE(table->AddColumn("s", Column::Type::kString).ok());
  ASSERT_TRUE(table->AppendRow({Value::Str("x")}).ok());
  IoAccountant io;
  RangeBasedBitmapIndex index(&table->column(0), &table->existence(), &io);
  EXPECT_EQ(index.Build().code(), StatusCode::kInvalidArgument);
}

TEST_F(RangeBasedBitmapIndexTest, NullsExcluded) {
  Init(IntTable({1, INT64_MIN, 3}));
  const auto result = index_->EvaluateRange(0, 5);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "101");
}

TEST_F(RangeBasedBitmapIndexTest, CompressedFormatsMatchPlainRanges) {
  auto table = RandomIntTable(1200, 300, 13);
  IoAccountant io;
  RangeBasedBitmapIndex plain(&table->column(0), &table->existence(), &io);
  ASSERT_TRUE(plain.Build().ok());
  for (BitmapFormat format : {BitmapFormat::kRle, BitmapFormat::kEwah}) {
    RangeBasedBitmapIndexOptions options;
    options.format = format;
    RangeBasedBitmapIndex index(&table->column(0), &table->existence(),
                                &io, options);
    ASSERT_TRUE(index.Build().ok());
    EXPECT_EQ(index.Name(), std::string("range-based-bitmap") +
                                BitmapFormatSuffix(format));
    // Ranges that mix fully covered and boundary buckets.
    for (const auto& [lo, hi] : std::vector<std::pair<int64_t, int64_t>>{
             {0, 299}, {10, 250}, {100, 101}, {290, 500}}) {
      const auto a = plain.EvaluateRange(lo, hi);
      const auto b = index.EvaluateRange(lo, hi);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(*a, *b) << BitmapFormatName(format) << " [" << lo << ","
                        << hi << "]";
    }
  }
}

TEST_F(RangeBasedBitmapIndexTest, CompressedAppendMatchesScan) {
  RangeBasedBitmapIndexOptions options;
  options.num_buckets = 4;
  options.format = BitmapFormat::kEwah;
  Init(IntTable({10, 20, 30, 40, 50, 60, 70, 80}), options);
  ASSERT_TRUE(table_->AppendRow({Value::Int(35)}).ok());
  ASSERT_TRUE(index_->Append(8).ok());
  const auto result = index_->EvaluateRange(30, 45);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, ScanRange(*table_, table_->column(0), 30, 45));
}

}  // namespace
}  // namespace ebi
