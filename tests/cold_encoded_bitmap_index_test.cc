#include "index/cold_encoded_bitmap_index.h"

#include <gtest/gtest.h>

#include "index/encoded_bitmap_index.h"
#include "test_util.h"

namespace ebi {
namespace {

using testing_util::IntTable;
using testing_util::RandomIntTable;
using testing_util::ScanEquals;
using testing_util::ScanRange;

ColdEncodedBitmapIndexOptions TestOptions(size_t pool = 4) {
  ColdEncodedBitmapIndexOptions options;
  options.pool_pages = pool;
  options.directory = ::testing::TempDir();
  return options;
}

class ColdEncodedBitmapIndexTest : public ::testing::Test {
 protected:
  void Init(std::unique_ptr<Table> table, size_t pool = 4) {
    table_ = std::move(table);
    index_ = std::make_unique<ColdEncodedBitmapIndex>(
        &table_->column(0), &table_->existence(), &io_, TestOptions(pool));
    ASSERT_TRUE(index_->Build().ok());
  }

  IoAccountant io_;
  std::unique_ptr<Table> table_;
  std::unique_ptr<ColdEncodedBitmapIndex> index_;
};

TEST_F(ColdEncodedBitmapIndexTest, AnswersMatchScan) {
  Init(IntTable({5, 7, 5, 9, 7, 5, 11}));
  for (int64_t v : {5, 7, 9, 11, 404}) {
    const auto result = index_->EvaluateEquals(Value::Int(v));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result, ScanEquals(*table_, table_->column(0), v)) << v;
  }
}

TEST_F(ColdEncodedBitmapIndexTest, MatchesHotIndexOnRandomData) {
  auto table = RandomIntTable(400, 60, 31, 0.05);
  IoAccountant hot_io;
  IoAccountant cold_io;
  EncodedBitmapIndex hot(&table->column(0), &table->existence(), &hot_io);
  ColdEncodedBitmapIndex cold(&table->column(0), &table->existence(),
                              &cold_io, TestOptions());
  ASSERT_TRUE(hot.Build().ok());
  ASSERT_TRUE(cold.Build().ok());
  Rng rng(77);
  for (int q = 0; q < 15; ++q) {
    const int64_t lo = static_cast<int64_t>(rng.UniformInt(60));
    const int64_t hi = lo + static_cast<int64_t>(rng.UniformInt(20));
    const auto a = hot.EvaluateRange(lo, hi);
    const auto b = cold.EvaluateRange(lo, hi);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b) << lo << ".." << hi;
  }
}

TEST_F(ColdEncodedBitmapIndexTest, OnlyReferencedSlicesAreFaulted) {
  // Build-time Put()s warm the pool; drain it with a tiny pool so every
  // query read is observable.
  Init(IntTable({0, 1, 2, 3, 4, 5, 6, 7}), /*pool=*/1);
  index_->ResetStoreStats();
  io_.Reset();
  // {0..3} reduces to one variable (+dc) under the sequential mapping
  // shifted by void... measure simply: vector reads < total slices.
  const auto result = index_->EvaluateIn(
      {Value::Int(0), Value::Int(1), Value::Int(2), Value::Int(3)});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->Count(), 4u);
  EXPECT_LT(io_.stats().vectors_read,
            static_cast<uint64_t>(index_->NumVectors()));
}

TEST_F(ColdEncodedBitmapIndexTest, RepeatedQueriesHitThePool) {
  Init(RandomIntTable(300, 20, 41), /*pool=*/8);
  ASSERT_TRUE(index_->EvaluateEquals(Value::Int(3)).ok());
  index_->ResetStoreStats();
  io_.Reset();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(index_->EvaluateEquals(Value::Int(3)).ok());
  }
  // All slices stayed resident: no file reads charged.
  EXPECT_EQ(io_.stats().vectors_read, 0u);
  EXPECT_GT(index_->store_stats().hits, 0u);
  EXPECT_EQ(index_->store_stats().misses, 0u);
}

TEST_F(ColdEncodedBitmapIndexTest, TinyPoolForcesFaults) {
  Init(RandomIntTable(300, 200, 43), /*pool=*/1);
  ASSERT_TRUE(index_->EvaluateRange(0, 150).ok());
  index_->ResetStoreStats();
  io_.Reset();
  ASSERT_TRUE(index_->EvaluateRange(0, 150).ok());
  // More referenced slices than pool slots: some must fault and charge.
  EXPECT_GT(io_.stats().vectors_read, 0u);
  EXPECT_GT(index_->store_stats().misses, 0u);
}

TEST_F(ColdEncodedBitmapIndexTest, AppendsAndDeletes) {
  Init(IntTable({1, 2, 3}));
  ASSERT_TRUE(table_->AppendRow({Value::Int(2)}).ok());
  ASSERT_TRUE(index_->Append(3).ok());
  ASSERT_TRUE(table_->AppendRow({Value::Int(99)}).ok());  // New value.
  ASSERT_TRUE(index_->Append(4).ok());
  ASSERT_TRUE(table_->DeleteRow(1).ok());
  ASSERT_TRUE(index_->MarkDeleted(1).ok());
  const auto two = index_->EvaluateEquals(Value::Int(2));
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(two->ToString(), "00010");
  const auto nn = index_->EvaluateEquals(Value::Int(99));
  ASSERT_TRUE(nn.ok());
  EXPECT_EQ(nn->ToString(), "00001");
}

TEST_F(ColdEncodedBitmapIndexTest, WidthExpansionThroughStore) {
  ColdEncodedBitmapIndexOptions options = TestOptions();
  auto table = IntTable({0});
  table_ = std::move(table);
  index_ = std::make_unique<ColdEncodedBitmapIndex>(
      &table_->column(0), &table_->existence(), &io_, options);
  ASSERT_TRUE(index_->Build().ok());
  for (int64_t v = 1; v < 20; ++v) {
    ASSERT_TRUE(table_->AppendRow({Value::Int(v)}).ok());
    ASSERT_TRUE(index_->Append(static_cast<size_t>(v)).ok());
  }
  for (int64_t v = 0; v < 20; v += 5) {
    const auto result = index_->EvaluateEquals(Value::Int(v));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result, ScanEquals(*table_, table_->column(0), v)) << v;
  }
}

TEST_F(ColdEncodedBitmapIndexTest, CompressedStoreFormatsMatchScan) {
  for (BitmapFormat format : {BitmapFormat::kRle, BitmapFormat::kEwah}) {
    ColdEncodedBitmapIndexOptions options = TestOptions(/*pool=*/2);
    options.format = format;
    auto table = RandomIntTable(600, 40, 17);
    table_ = std::move(table);
    index_ = std::make_unique<ColdEncodedBitmapIndex>(
        &table_->column(0), &table_->existence(), &io_, options);
    ASSERT_TRUE(index_->Build().ok());
    for (int64_t v = 0; v < 40; v += 7) {
      const auto result = index_->EvaluateEquals(Value::Int(v));
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(*result, ScanEquals(*table_, table_->column(0), v))
          << BitmapFormatName(format) << " v=" << v;
    }
  }
}

}  // namespace
}  // namespace ebi
