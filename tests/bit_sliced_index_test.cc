#include "index/bit_sliced_index.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ebi {
namespace {

using testing_util::IntTable;
using testing_util::RandomIntTable;
using testing_util::ScanEquals;
using testing_util::ScanRange;

class BitSlicedIndexTest : public ::testing::Test {
 protected:
  void Init(std::unique_ptr<Table> table) {
    table_ = std::move(table);
    index_ = std::make_unique<BitSlicedIndex>(&table_->column(0),
                                              &table_->existence(), &io_);
    ASSERT_TRUE(index_->Build().ok());
  }

  IoAccountant io_;
  std::unique_ptr<Table> table_;
  std::unique_ptr<BitSlicedIndex> index_;
};

TEST_F(BitSlicedIndexTest, SliceCountIsValueRangeBits) {
  Init(IntTable({0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(index_->NumVectors(), 3u);
  EXPECT_EQ(index_->bias(), 0);
}

TEST_F(BitSlicedIndexTest, BiasHandlesArbitraryRanges) {
  Init(IntTable({100, 101, 102, 103}));
  EXPECT_EQ(index_->bias(), 100);
  EXPECT_EQ(index_->NumVectors(), 2u);
}

TEST_F(BitSlicedIndexTest, NegativeValues) {
  Init(IntTable({-5, -3, 0, 4}));
  EXPECT_EQ(index_->bias(), -5);
  const auto result = index_->EvaluateRange(-4, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, ScanRange(*table_, table_->column(0), -4, 1));
}

TEST_F(BitSlicedIndexTest, EqualsMatchesScan) {
  Init(IntTable({9, 4, 6, 2, 8, 0, 3, 7, 5, 1, 4, 4}));
  for (int64_t v = -1; v <= 10; ++v) {
    const auto result = index_->EvaluateEquals(Value::Int(v));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result, ScanEquals(*table_, table_->column(0), v)) << v;
  }
}

TEST_F(BitSlicedIndexTest, RangeMatchesScanExhaustively) {
  Init(IntTable({9, 4, 6, 2, 8, 0, 3, 7, 5, 1}));
  for (int64_t lo = -2; lo <= 10; ++lo) {
    for (int64_t hi = lo; hi <= 11; ++hi) {
      const auto result = index_->EvaluateRange(lo, hi);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(*result, ScanRange(*table_, table_->column(0), lo, hi))
          << lo << ".." << hi;
    }
  }
}

TEST_F(BitSlicedIndexTest, EmptyRangeIsEmpty) {
  Init(IntTable({1, 2, 3}));
  const auto result = index_->EvaluateRange(5, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->IsZero());
}

TEST_F(BitSlicedIndexTest, RangeReadsAtMostAllSlicesTwice) {
  // The slice-arithmetic algorithm runs two LessOrEqual passes: cost is
  // bounded by 2k + 1 reads however wide the range — the "wide range
  // searches" strength of bit-sliced indexes.
  Init(IntTable({0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}));
  const size_t k = index_->NumVectors();
  io_.Reset();
  ASSERT_TRUE(index_->EvaluateRange(5, 95).ok());
  EXPECT_LE(io_.stats().vectors_read, 2 * k + 1);
}

TEST_F(BitSlicedIndexTest, DeletedRowsExcluded) {
  Init(IntTable({5, 5, 5}));
  ASSERT_TRUE(table_->DeleteRow(1).ok());
  const auto result = index_->EvaluateEquals(Value::Int(5));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "101");
}

TEST_F(BitSlicedIndexTest, NullsExcluded) {
  Init(IntTable({3, INT64_MIN, 3}));
  const auto result = index_->EvaluateRange(0, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "101");
}

TEST_F(BitSlicedIndexTest, NullsShareBiasPatternButAreMasked) {
  // A NULL cell's slices read as bias_+0; ensure value==bias rows are not
  // confused with NULL rows.
  Init(IntTable({7, INT64_MIN, 7, 9}));
  const auto result = index_->EvaluateEquals(Value::Int(7));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "1010");
}

TEST_F(BitSlicedIndexTest, SumOnSlices) {
  Init(IntTable({1, 2, 3, 4, 5}));
  BitVector all(5, true);
  const auto sum = index_->Sum(all);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, 15);
  BitVector some(5);
  some.Set(1);
  some.Set(3);
  EXPECT_EQ(*index_->Sum(some), 6);
}

TEST_F(BitSlicedIndexTest, SumWithBias) {
  Init(IntTable({100, 200, 300}));
  BitVector all(3, true);
  EXPECT_EQ(*index_->Sum(all), 600);
}

TEST_F(BitSlicedIndexTest, SumSizeMismatchRejected) {
  Init(IntTable({1, 2}));
  EXPECT_EQ(index_->Sum(BitVector(5)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(BitSlicedIndexTest, MinMaxOnSlices) {
  Init(IntTable({42, 7, 99, 13, 56}));
  BitVector all(5, true);
  EXPECT_EQ(*index_->Min(all), 7);
  EXPECT_EQ(*index_->Max(all), 99);
  BitVector some(5);
  some.Set(0);
  some.Set(3);
  EXPECT_EQ(*index_->Min(some), 13);
  EXPECT_EQ(*index_->Max(some), 42);
}

TEST_F(BitSlicedIndexTest, MinMaxWithNegativeBias) {
  Init(IntTable({-10, 5, -3}));
  BitVector all(3, true);
  EXPECT_EQ(*index_->Min(all), -10);
  EXPECT_EQ(*index_->Max(all), 5);
}

TEST_F(BitSlicedIndexTest, MinMaxEmptySelectionRejected) {
  Init(IntTable({1, 2}));
  EXPECT_EQ(index_->Min(BitVector(2)).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(index_->Max(BitVector(2)).status().code(),
            StatusCode::kNotFound);
}

TEST_F(BitSlicedIndexTest, QuantileMatchesSortedRank) {
  Init(IntTable({10, 20, 30, 40, 50, 60, 70, 80, 90, 100}));
  BitVector all(10, true);
  EXPECT_EQ(*index_->Quantile(all, 0.5), 50);   // 5th smallest.
  EXPECT_EQ(*index_->Quantile(all, 0.1), 10);   // 1st.
  EXPECT_EQ(*index_->Quantile(all, 1.0), 100);  // 10th.
  EXPECT_EQ(*index_->Quantile(all, 0.25), 30);  // ceil(2.5) = 3rd.
}

TEST_F(BitSlicedIndexTest, QuantileWithDuplicates) {
  Init(IntTable({5, 5, 5, 9, 9}));
  BitVector all(5, true);
  EXPECT_EQ(*index_->Quantile(all, 0.5), 5);
  EXPECT_EQ(*index_->Quantile(all, 0.8), 9);
}

TEST_F(BitSlicedIndexTest, QuantileValidation) {
  Init(IntTable({1, 2, 3}));
  BitVector all(3, true);
  EXPECT_EQ(index_->Quantile(all, 0.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(index_->Quantile(all, 1.5).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(index_->Quantile(BitVector(3), 0.5).status().code(),
            StatusCode::kNotFound);
}

TEST_F(BitSlicedIndexTest, QuantileRandomizedAgainstSort) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    auto table = RandomIntTable(301, 500, seed);
    IoAccountant io;
    BitSlicedIndex index(&table->column(0), &table->existence(), &io);
    ASSERT_TRUE(index.Build().ok());
    std::vector<int64_t> sorted;
    for (size_t r = 0; r < table->NumRows(); ++r) {
      sorted.push_back(table->column(0).ValueAt(r).int_value);
    }
    std::sort(sorted.begin(), sorted.end());
    BitVector all(table->NumRows(), true);
    for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
      size_t rank = static_cast<size_t>(q * sorted.size());
      if (static_cast<double>(rank) < q * sorted.size()) {
        ++rank;
      }
      EXPECT_EQ(*index.Quantile(all, q), sorted[rank - 1])
          << "seed=" << seed << " q=" << q;
    }
  }
}

TEST_F(BitSlicedIndexTest, AppendWithinRange) {
  Init(IntTable({0, 5, 9}));
  ASSERT_TRUE(table_->AppendRow({Value::Int(7)}).ok());
  ASSERT_TRUE(index_->Append(3).ok());
  const auto result = index_->EvaluateEquals(Value::Int(7));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "0001");
}

TEST_F(BitSlicedIndexTest, AppendGrowsSlicesUpward) {
  Init(IntTable({0, 1, 2, 3}));
  EXPECT_EQ(index_->NumVectors(), 2u);
  ASSERT_TRUE(table_->AppendRow({Value::Int(200)}).ok());
  ASSERT_TRUE(index_->Append(4).ok());
  EXPECT_EQ(index_->NumVectors(), 8u);
  const auto result = index_->EvaluateEquals(Value::Int(200));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "00001");
  // Old values unchanged.
  const auto old = index_->EvaluateEquals(Value::Int(2));
  ASSERT_TRUE(old.ok());
  EXPECT_EQ(old->ToString(), "00100");
}

TEST_F(BitSlicedIndexTest, AppendBelowBiasRejected) {
  Init(IntTable({10, 20}));
  ASSERT_TRUE(table_->AppendRow({Value::Int(1)}).ok());
  EXPECT_EQ(index_->Append(2).code(), StatusCode::kUnimplemented);
}

TEST_F(BitSlicedIndexTest, StringColumnRejected) {
  auto table = std::make_unique<Table>("T");
  ASSERT_TRUE(table->AddColumn("s", Column::Type::kString).ok());
  ASSERT_TRUE(table->AppendRow({Value::Str("x")}).ok());
  IoAccountant io;
  BitSlicedIndex index(&table->column(0), &table->existence(), &io);
  EXPECT_EQ(index.Build().code(), StatusCode::kInvalidArgument);
}

TEST_F(BitSlicedIndexTest, RandomizedRangeAgreement) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    auto table = RandomIntTable(400, 1000, seed, 0.05);
    IoAccountant io;
    BitSlicedIndex index(&table->column(0), &table->existence(), &io);
    ASSERT_TRUE(index.Build().ok());
    Rng rng(seed + 55);
    for (int q = 0; q < 15; ++q) {
      const int64_t lo = static_cast<int64_t>(rng.UniformInt(1000)) - 10;
      const int64_t hi = lo + static_cast<int64_t>(rng.UniformInt(300));
      const auto result = index.EvaluateRange(lo, hi);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(*result, ScanRange(*table, table->column(0), lo, hi))
          << "seed=" << seed;
    }
  }
}

}  // namespace
}  // namespace ebi
