// Negated predicates (!=, NOT IN) across the executor and the planner,
// with SQL NULL semantics: NULL rows satisfy neither side of a negation.

#include <gtest/gtest.h>

#include "ebi/ebi.h"
#include "index/btree_index.h"
#include "test_util.h"

namespace ebi {
namespace {

using testing_util::IntTable;
using testing_util::RandomIntTable;

class NegationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = IntTable({1, 2, INT64_MIN, 3, 2, 1});
    index_ = std::make_unique<EncodedBitmapIndex>(
        &table_->column(0), &table_->existence(), &io_);
    ASSERT_TRUE(index_->Build().ok());
    executor_ = std::make_unique<SelectionExecutor>(table_.get(), &io_);
    executor_->RegisterIndex("a", index_.get());
  }

  IoAccountant io_;
  std::unique_ptr<Table> table_;
  std::unique_ptr<EncodedBitmapIndex> index_;
  std::unique_ptr<SelectionExecutor> executor_;
};

TEST_F(NegationTest, NotEqualsExcludesNulls) {
  const auto result =
      executor_->Select({Predicate::NotEq("a", Value::Int(1))});
  ASSERT_TRUE(result.ok());
  // Rows: 1 2 NULL 3 2 1 — != 1 keeps {2,3,2}, never the NULL.
  EXPECT_EQ(result->rows.ToString(), "010110");
}

TEST_F(NegationTest, NotInExcludesNullsAndMatches) {
  const auto result = executor_->Select(
      {Predicate::NotIn("a", {Value::Int(1), Value::Int(3)})});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.ToString(), "010010");
}

TEST_F(NegationTest, NegationExcludesDeletedRows) {
  ASSERT_TRUE(table_->DeleteRow(1).ok());
  ASSERT_TRUE(index_->MarkDeleted(1).ok());
  const auto result =
      executor_->Select({Predicate::NotEq("a", Value::Int(1))});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.ToString(), "000110");
}

TEST_F(NegationTest, ScanAgreesWithIndex) {
  for (const Predicate& p :
       {Predicate::NotEq("a", Value::Int(2)),
        Predicate::NotIn("a", {Value::Int(1), Value::Int(2)}),
        Predicate::NotIn("a", {Value::Int(99)})}) {
    const auto indexed = executor_->Select({p});
    const auto scanned = executor_->SelectByScan({p});
    ASSERT_TRUE(indexed.ok()) << p.ToString();
    ASSERT_TRUE(scanned.ok()) << p.ToString();
    EXPECT_EQ(indexed->rows, *scanned) << p.ToString();
  }
}

TEST_F(NegationTest, ToStringAndPositive) {
  const Predicate ne = Predicate::NotEq("a", Value::Int(3));
  EXPECT_EQ(ne.ToString(), "a != 3");
  EXPECT_TRUE(ne.IsNegated());
  EXPECT_EQ(ne.Positive().kind, Predicate::Kind::kEquals);
  const Predicate ni = Predicate::NotIn("a", {Value::Int(1)});
  EXPECT_EQ(ni.ToString(), "a NOT IN {1}");
  EXPECT_EQ(ni.Positive().kind, Predicate::Kind::kIn);
  EXPECT_FALSE(Predicate::Eq("a", Value::Int(1)).IsNegated());
}

TEST_F(NegationTest, PlannerRoutesNegationsToo) {
  auto table = RandomIntTable(600, 40, 7, /*null_fraction=*/0.1);
  IoAccountant io;
  SimpleBitmapIndex simple(&table->column(0), &table->existence(), &io);
  EncodedBitmapIndex encoded(&table->column(0), &table->existence(), &io);
  ASSERT_TRUE(simple.Build().ok());
  ASSERT_TRUE(encoded.Build().ok());
  AccessPathPlanner planner(table.get(), &io);
  planner.RegisterIndex("a", &simple);
  planner.RegisterIndex("a", &encoded);
  SelectionExecutor reference(table.get(), &io);

  for (const Predicate& p :
       {Predicate::NotEq("a", Value::Int(5)),
        Predicate::NotIn("a", {Value::Int(0), Value::Int(1),
                               Value::Int(2)})}) {
    const auto planned = planner.Select({p});
    const auto scanned = reference.SelectByScan({p});
    ASSERT_TRUE(planned.ok()) << p.ToString();
    ASSERT_TRUE(scanned.ok()) << p.ToString();
    EXPECT_EQ(planned->rows, *scanned) << p.ToString();
    EXPECT_GT(planned->count, 0u);
  }
}

TEST_F(NegationTest, ConjunctionWithNegation) {
  const auto result = executor_->Select(
      {Predicate::Between("a", 1, 3),
       Predicate::NotEq("a", Value::Int(2))});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.ToString(), "100101");
}

TEST_F(NegationTest, NullMaskFallbackForNullBlindIndexes) {
  // A B-tree has no NULL representation; negations through it must fall
  // back to the charged column scan and still honour SQL NULL semantics.
  auto table = IntTable({1, INT64_MIN, 2, 1});
  IoAccountant io;
  BTreeIndex btree(&table->column(0), &table->existence(), &io);
  ASSERT_TRUE(btree.Build().ok());
  SelectionExecutor executor(table.get(), &io);
  executor.RegisterIndex("a", &btree);
  io.Reset();
  const auto result =
      executor.Select({Predicate::NotEq("a", Value::Int(1))});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.ToString(), "0010");
  // The fallback scan was charged.
  EXPECT_GT(result->io.bytes_read, 0u);
}

TEST_F(NegationTest, NotInWithAllValuesIsEmptyExceptNothing) {
  const auto result = executor_->Select({Predicate::NotIn(
      "a", {Value::Int(1), Value::Int(2), Value::Int(3)})});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rows.IsZero());
}

}  // namespace
}  // namespace ebi
