#include "index/groupset_index.h"

#include <gtest/gtest.h>

#include <memory>

#include "storage/table.h"
#include "util/bit_util.h"

namespace ebi {
namespace {

std::unique_ptr<Table> ThreeColumnTable() {
  auto table = std::make_unique<Table>("T");
  EXPECT_TRUE(table->AddColumn("a", Column::Type::kInt64).ok());
  EXPECT_TRUE(table->AddColumn("b", Column::Type::kInt64).ok());
  EXPECT_TRUE(table->AddColumn("c", Column::Type::kInt64).ok());
  // 12 rows over small domains.
  const int64_t rows[][3] = {{0, 0, 0}, {0, 1, 1}, {1, 0, 0}, {1, 1, 1},
                             {2, 0, 0}, {2, 1, 1}, {0, 0, 1}, {1, 1, 0},
                             {0, 0, 0}, {2, 1, 0}, {1, 0, 1}, {0, 1, 0}};
  for (const auto& r : rows) {
    EXPECT_TRUE(
        table
            ->AppendRow({Value::Int(r[0]), Value::Int(r[1]),
                         Value::Int(r[2])})
            .ok());
  }
  return table;
}

class GroupsetIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = ThreeColumnTable();
    index_ = std::make_unique<GroupsetIndex>(
        std::vector<const Column*>{&table_->column(0), &table_->column(1),
                                   &table_->column(2)},
        &table_->existence(), &io_);
    ASSERT_TRUE(index_->Build().ok());
  }

  IoAccountant io_;
  std::unique_ptr<Table> table_;
  std::unique_ptr<GroupsetIndex> index_;
};

TEST_F(GroupsetIndexTest, VectorCountIsSumOfLogs) {
  // Cardinalities 3, 2, 2 (+ void codeword each): 2 + 2 + 2 = 6 vectors —
  // the paper's "20 instead of 10^7" arithmetic at toy scale.
  EXPECT_EQ(index_->NumVectors(), 6u);
  EXPECT_EQ(index_->NumMembers(), 3u);
}

TEST_F(GroupsetIndexTest, GroupBitmapIsConjunction) {
  const auto rows = index_->GroupBitmap(
      {Value::Int(0), Value::Int(0), Value::Int(0)});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->ToString(), "100000001000");
}

TEST_F(GroupsetIndexTest, GroupBitmapArityChecked) {
  EXPECT_EQ(index_->GroupBitmap({Value::Int(0)}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(GroupsetIndexTest, ForEachGroupPartitionsRows) {
  size_t total = 0;
  size_t groups = 0;
  ASSERT_TRUE(index_
                  ->ForEachGroup([&](const std::vector<Value>& values,
                                     const BitVector& rows) {
                    EXPECT_EQ(values.size(), 3u);
                    total += rows.Count();
                    ++groups;
                  })
                  .ok());
  EXPECT_EQ(total, 12u);
  EXPECT_GT(groups, 5u);
  EXPECT_EQ(*index_->CountGroups(), groups);
}

TEST_F(GroupsetIndexTest, GroupBitmapsMatchEnumeration) {
  ASSERT_TRUE(index_
                  ->ForEachGroup([&](const std::vector<Value>& values,
                                     const BitVector& rows) {
                    const auto direct = index_->GroupBitmap(values);
                    ASSERT_TRUE(direct.ok());
                    EXPECT_EQ(*direct, rows);
                  })
                  .ok());
}

TEST_F(GroupsetIndexTest, DeletedRowsLeaveGroups) {
  ASSERT_TRUE(table_->DeleteRow(0).ok());
  // Enumeration consults the existence bitmap directly, so the deleted row
  // drops out of every group.
  size_t total = 0;
  ASSERT_TRUE(index_
                  ->ForEachGroup([&](const std::vector<Value>&,
                                     const BitVector& rows) {
                    total += rows.Count();
                  })
                  .ok());
  EXPECT_EQ(total, 11u);
}

TEST_F(GroupsetIndexTest, AppendExtendsAllMembers) {
  ASSERT_TRUE(
      table_->AppendRow({Value::Int(0), Value::Int(1), Value::Int(1)})
          .ok());
  ASSERT_TRUE(index_->Append(12).ok());
  const auto rows = index_->GroupBitmap(
      {Value::Int(0), Value::Int(1), Value::Int(1)});
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->Get(12));
  EXPECT_TRUE(rows->Get(1));
}

TEST_F(GroupsetIndexTest, SpaceHeadlineNumber) {
  // The Section 4 headline: cardinalities 100 x 200 x 500 need 10^7 simple
  // bitmap vectors but only ceil(log2 100+1)+ceil(log2 201)+ceil(log2 501)
  // encoded ones. Verify the arithmetic the index reports.
  EXPECT_EQ(Log2Ceil(101) + Log2Ceil(201) + Log2Ceil(501), 7 + 8 + 9);
  EXPECT_EQ(100 * 200 * 500, 10000000);
}

TEST_F(GroupsetIndexTest, GroupBySumOnSlices) {
  // Use column c as "measure": group by (a, b) only.
  GroupsetIndex ab({&table_->column(0), &table_->column(1)},
                   &table_->existence(), &io_);
  ASSERT_TRUE(ab.Build().ok());
  BitSlicedIndex measure(&table_->column(2), &table_->existence(), &io_);
  ASSERT_TRUE(measure.Build().ok());

  const auto aggregates = ab.GroupBySum(&measure);
  ASSERT_TRUE(aggregates.ok());
  size_t total_rows = 0;
  int64_t total_sum = 0;
  for (const auto& agg : *aggregates) {
    total_rows += agg.count;
    total_sum += agg.sum;
  }
  EXPECT_EQ(total_rows, 12u);
  // Sum of column c over all rows.
  int64_t expected = 0;
  for (size_t r = 0; r < table_->NumRows(); ++r) {
    expected += table_->column(2).ValueAt(r).int_value;
  }
  EXPECT_EQ(total_sum, expected);
  // Spot-check one group: (a=0, b=0) -> rows 0, 6, 8 with c = 0, 1, 0.
  for (const auto& agg : *aggregates) {
    if (agg.group[0] == Value::Int(0) && agg.group[1] == Value::Int(0)) {
      EXPECT_EQ(agg.count, 3u);
      EXPECT_EQ(agg.sum, 1);
    }
  }
}

TEST_F(GroupsetIndexTest, EmptyColumnsRejected) {
  GroupsetIndex empty({}, &table_->existence(), &io_);
  EXPECT_EQ(empty.Build().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ebi
