#include "encoding/range_encoding.h"

#include <gtest/gtest.h>

namespace ebi {
namespace {

/// The predefined selections of Section 2.3's range-based example:
/// 6<=A<10, 8<=A<12, 10<=A<13, 16<=A<20 over domain [6, 20).
std::vector<HalfOpenRange> PaperRanges() {
  return {{6, 10}, {8, 12}, {10, 13}, {16, 20}};
}

TEST(RangeEncodingTest, Figure7Partition) {
  const auto enc = RangeBasedEncoding::Create(6, 20, PaperRanges());
  ASSERT_TRUE(enc.ok());
  const std::vector<HalfOpenRange> expected = {
      {6, 8}, {8, 10}, {10, 12}, {12, 13}, {13, 16}, {16, 20}};
  EXPECT_EQ(enc->intervals(), expected);
}

TEST(RangeEncodingTest, IntervalOfLookups) {
  const auto enc = RangeBasedEncoding::Create(6, 20, PaperRanges());
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(*enc->IntervalOf(6), 0u);
  EXPECT_EQ(*enc->IntervalOf(7), 0u);
  EXPECT_EQ(*enc->IntervalOf(8), 1u);
  EXPECT_EQ(*enc->IntervalOf(12), 3u);
  EXPECT_EQ(*enc->IntervalOf(19), 5u);
  EXPECT_FALSE(enc->IntervalOf(5).ok());
  EXPECT_FALSE(enc->IntervalOf(20).ok());
}

TEST(RangeEncodingTest, CoverSemanticsMatchIntervals) {
  const auto enc = RangeBasedEncoding::Create(6, 20, PaperRanges());
  ASSERT_TRUE(enc.ok());
  for (const HalfOpenRange& r : PaperRanges()) {
    const auto cover = enc->CoverForRange(r.lo, r.hi);
    ASSERT_TRUE(cover.ok()) << r.ToString();
    // The cover must accept exactly the codes of the covered intervals.
    for (size_t i = 0; i < enc->intervals().size(); ++i) {
      const bool inside = enc->intervals()[i].lo >= r.lo &&
                          enc->intervals()[i].hi <= r.hi;
      const uint64_t code = *enc->mapping().CodeOf(static_cast<ValueId>(i));
      EXPECT_EQ(CoverCovers(*cover, code), inside)
          << r.ToString() << " interval " << i;
    }
  }
}

TEST(RangeEncodingTest, PredefinedRangesAreCheap) {
  // Under the paper's hand encoding every predefined selection needs at
  // most 2 bitmap vectors; the optimizer should do as well in total.
  const auto enc = RangeBasedEncoding::Create(6, 20, PaperRanges());
  ASSERT_TRUE(enc.ok());
  int total = 0;
  for (const HalfOpenRange& r : PaperRanges()) {
    const auto cover = enc->CoverForRange(r.lo, r.hi);
    ASSERT_TRUE(cover.ok());
    total += DistinctVariables(*cover);
  }
  EXPECT_LE(total, 8);  // Paper encoding: 2+2+2+2.
}

TEST(RangeEncodingTest, PaperFigure8MappingReducesAsPrinted) {
  // Figure 8(a): [6,8)=000, [8,10)=001, [10,12)=101, [12,13)=100,
  // [13,16)=010, [16,20)=110 — with that mapping, "8 <= A < 12" reduces to
  // B1'B0 (Figure 8(b)).
  const auto mapping = MappingTable::Create(
      3, {0b000, 0b001, 0b101, 0b100, 0b010, 0b110});
  ASSERT_TRUE(mapping.ok());
  const std::vector<uint64_t> dc = mapping->UnusedCodes(8);
  // 8<=A<12 selects intervals 1 and 2 -> codes {001, 101}. The paper
  // prints B1'B0; exploiting the unused codewords {011, 111} as
  // don't-cares the exact minimizer does one better and returns plain B0
  // (codes xx1 are either selected or unused).
  Cover cover = ReduceRetrievalFunction({0b001, 0b101}, dc, 3);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], Cube(0b001, 0b001));  // B0.
  // Without don't-cares the reduction lands exactly on the paper's B1'B0.
  cover = ReduceRetrievalFunction({0b001, 0b101}, {}, 3);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], Cube(0b001, 0b011));  // B1'B0.
  // 6<=A<10 -> intervals 0,1 -> {000, 001} -> B2'B1'.
  cover = ReduceRetrievalFunction({0b000, 0b001}, dc, 3);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], Cube(0b000, 0b110));  // B2'B1'.
  // 10<=A<13 -> intervals 2,3 -> {101, 100} -> B2B1'.
  cover = ReduceRetrievalFunction({0b101, 0b100}, dc, 3);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], Cube(0b100, 0b110));  // B2B1'.
  // 16<=A<20 -> interval 5 -> {110}; dc {011,111} allows B2B1.
  cover = ReduceRetrievalFunction({0b110}, dc, 3);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], Cube(0b110, 0b110));  // B2B1.
}

TEST(RangeEncodingTest, UnalignedRangeRejected) {
  const auto enc = RangeBasedEncoding::Create(6, 20, PaperRanges());
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(enc->CoverForRange(7, 11).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(RangeEncodingTest, EmptyRangeGivesEmptyCover) {
  const auto enc = RangeBasedEncoding::Create(6, 20, PaperRanges());
  ASSERT_TRUE(enc.ok());
  const auto cover = enc->CoverForRange(10, 10);
  ASSERT_TRUE(cover.ok());
  EXPECT_TRUE(cover->empty());
}

TEST(RangeEncodingTest, WholeDomainSelection) {
  const auto enc = RangeBasedEncoding::Create(6, 20, PaperRanges());
  ASSERT_TRUE(enc.ok());
  const auto cover = enc->CoverForRange(6, 20);
  ASSERT_TRUE(cover.ok());
  // With the unused codewords as don't-cares the whole-domain selection is
  // a tautology: zero bitmap vectors read.
  EXPECT_EQ(DistinctVariables(*cover), 0);
}

TEST(RangeEncodingTest, NoPredefinedRangesDegenerates) {
  // No predefined selections: a single interval spanning the domain — the
  // degenerate case the paper mentions.
  const auto enc = RangeBasedEncoding::Create(0, 100, {});
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(enc->intervals().size(), 1u);
}

TEST(RangeEncodingTest, RejectsBadInputs) {
  EXPECT_FALSE(RangeBasedEncoding::Create(10, 10, {}).ok());
  EXPECT_FALSE(RangeBasedEncoding::Create(0, 10, {{5, 5}}).ok());
  EXPECT_FALSE(RangeBasedEncoding::Create(0, 10, {{5, 15}}).ok());
}

}  // namespace
}  // namespace ebi
