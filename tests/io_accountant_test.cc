#include "storage/io_accountant.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace ebi {
namespace {

TEST(IoAccountantTest, StartsAtZero) {
  IoAccountant io;
  EXPECT_EQ(io.stats().vectors_read, 0u);
  EXPECT_EQ(io.stats().pages_read, 0u);
  EXPECT_EQ(io.stats().bytes_read, 0u);
  EXPECT_EQ(io.stats().nodes_read, 0u);
  EXPECT_EQ(io.page_size(), IoAccountant::kDefaultPageSize);
}

TEST(IoAccountantTest, ChargeVectorCountsVectorAndPages) {
  IoAccountant io(4096);
  io.ChargeVectorRead(10000);  // 3 pages.
  EXPECT_EQ(io.stats().vectors_read, 1u);
  EXPECT_EQ(io.stats().bytes_read, 10000u);
  EXPECT_EQ(io.stats().pages_read, 3u);
}

TEST(IoAccountantTest, ChargeNodeCountsNodes) {
  IoAccountant io(4096);
  io.ChargeNodeRead(4096);
  EXPECT_EQ(io.stats().nodes_read, 1u);
  EXPECT_EQ(io.stats().pages_read, 1u);
  EXPECT_EQ(io.stats().vectors_read, 0u);
}

TEST(IoAccountantTest, PagesRoundUp) {
  IoAccountant io(100);
  io.ChargeBytes(1);
  EXPECT_EQ(io.stats().pages_read, 1u);
  io.ChargeBytes(100);
  EXPECT_EQ(io.stats().pages_read, 2u);
  io.ChargeBytes(101);
  EXPECT_EQ(io.stats().pages_read, 4u);
}

TEST(IoAccountantTest, ResetClears) {
  IoAccountant io;
  io.ChargeVectorRead(100);
  io.Reset();
  EXPECT_EQ(io.stats().vectors_read, 0u);
  EXPECT_EQ(io.stats().bytes_read, 0u);
}

TEST(IoAccountantTest, StatsSubtraction) {
  IoStats a{10, 20, 30, 40};
  IoStats b{1, 2, 3, 4};
  const IoStats d = a - b;
  EXPECT_EQ(d.vectors_read, 9u);
  EXPECT_EQ(d.pages_read, 18u);
  EXPECT_EQ(d.bytes_read, 27u);
  EXPECT_EQ(d.nodes_read, 36u);
}

TEST(IoAccountantTest, StatsSubtractionClampsToZero) {
  // Cumulative counters can only shrink if the accountant was Reset
  // mid-scope; the difference must clamp instead of wrapping to ~2^64.
  IoStats a{1, 2, 3, 4};
  IoStats b{10, 1, 30, 2};
  const IoStats d = a - b;
  EXPECT_EQ(d.vectors_read, 0u);
  EXPECT_EQ(d.pages_read, 1u);
  EXPECT_EQ(d.bytes_read, 0u);
  EXPECT_EQ(d.nodes_read, 2u);
}

TEST(IoAccountantTest, StatsAddition) {
  IoStats a{10, 20, 30, 40};
  IoStats b{1, 2, 3, 4};
  const IoStats sum = a + b;
  EXPECT_EQ(sum.vectors_read, 11u);
  EXPECT_EQ(sum.pages_read, 22u);
  EXPECT_EQ(sum.bytes_read, 33u);
  EXPECT_EQ(sum.nodes_read, 44u);

  IoStats acc;
  acc += a;
  acc.Merge(b);
  EXPECT_EQ(acc, sum);
}

TEST(IoAccountantTest, IoScopeMeasuresDelta) {
  IoAccountant io;
  io.ChargeVectorRead(8);
  const IoScope scope(&io);
  io.ChargeVectorRead(8);
  io.ChargeVectorRead(8);
  const IoStats delta = scope.Delta();
  EXPECT_EQ(delta.vectors_read, 2u);
}

TEST(IoAccountantTest, IoScopeSafeAcrossReset) {
  // A Reset inside an open scope leaves the baseline above the current
  // totals; Delta clamps to zero (never underflows to ~2^64) until
  // post-Reset activity climbs past the snapshot.
  IoAccountant io;
  io.ChargeVectorRead(8);
  io.ChargeVectorRead(8);
  const IoScope scope(&io);
  io.Reset();
  EXPECT_EQ(scope.Delta(), IoStats());
  io.ChargeVectorRead(8);
  EXPECT_EQ(scope.Delta(), IoStats());  // Still below the snapshot.
  io.ChargeVectorRead(8);
  io.ChargeVectorRead(8);
  const IoStats delta = scope.Delta();
  EXPECT_EQ(delta.vectors_read, 1u);
  EXPECT_EQ(delta.bytes_read, 8u);
}

TEST(IoAccountantTest, ConcurrentChargesAreNotLost) {
  // The accountant is shared by every worker in a parallel query; its
  // counters are atomic so concurrent charges from pool threads must all
  // land (no torn or lost increments under TSan or otherwise).
  IoAccountant io(4096);
  constexpr int kThreads = 4;
  constexpr int kChargesPerThread = 2500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&io] {
      for (int i = 0; i < kChargesPerThread; ++i) {
        io.ChargeVectorRead(8);
        io.ChargeNodeRead(4096);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const IoStats stats = io.stats();
  const uint64_t n = uint64_t{kThreads} * kChargesPerThread;
  EXPECT_EQ(stats.vectors_read, n);
  EXPECT_EQ(stats.nodes_read, n);
  EXPECT_EQ(stats.bytes_read, n * (8 + 4096));
}

TEST(IoAccountantTest, ChargeStatsAddsAllCounters) {
  IoAccountant io(4096);
  io.ChargeVectorRead(8);
  IoStats delta;
  delta.vectors_read = 3;
  delta.pages_read = 5;
  delta.bytes_read = 700;
  delta.nodes_read = 2;
  io.ChargeStats(delta);
  const IoStats stats = io.stats();
  EXPECT_EQ(stats.vectors_read, 4u);
  EXPECT_EQ(stats.bytes_read, 708u);
  EXPECT_EQ(stats.nodes_read, 2u);
  // Pages transfer as counted, not recomputed from the byte total.
  EXPECT_EQ(stats.pages_read, 6u);
}

TEST(IoAccountantTest, ToStringMentionsAllCounters) {
  IoStats s{1, 2, 3, 4};
  s.bytes_written = 5;
  s.pages_written = 6;
  const std::string text = s.ToString();
  EXPECT_NE(text.find("vectors=1"), std::string::npos);
  EXPECT_NE(text.find("pages=2"), std::string::npos);
  EXPECT_NE(text.find("bytes=3"), std::string::npos);
  EXPECT_NE(text.find("nodes=4"), std::string::npos);
  EXPECT_NE(text.find("bytes_w=5"), std::string::npos);
  EXPECT_NE(text.find("pages_w=6"), std::string::npos);
}

TEST(IoAccountantTest, ZeroPageSizeFallsBackToDefault) {
  // A zero page size would divide by zero on every charge; the
  // constructor substitutes the default and flags the input invalid.
  IoAccountant io(0);
  EXPECT_EQ(io.page_size(), IoAccountant::kDefaultPageSize);
  EXPECT_FALSE(io.page_size_valid());
  io.ChargeBytes(1);
  EXPECT_EQ(io.stats().pages_read, 1u);

  IoAccountant ok(512);
  EXPECT_TRUE(ok.page_size_valid());
}

TEST(IoAccountantTest, PageReadChargesOnePageAndItsBytes) {
  IoAccountant io(4096);
  io.ChargePageRead(100);
  io.ChargePageRead(4072);
  const IoStats stats = io.stats();
  // Each physical page is one page regardless of payload fill.
  EXPECT_EQ(stats.pages_read, 2u);
  EXPECT_EQ(stats.bytes_read, 4172u);
  EXPECT_EQ(stats.vectors_read, 0u);
}

TEST(IoAccountantTest, WriteChargesMirrorReadCharges) {
  IoAccountant io(4096);
  io.ChargePageWrite(4072);
  EXPECT_EQ(io.stats().pages_written, 1u);
  EXPECT_EQ(io.stats().bytes_written, 4072u);
  io.ChargeBytesWritten(10000);  // 3 pages, rounded up.
  EXPECT_EQ(io.stats().pages_written, 4u);
  EXPECT_EQ(io.stats().bytes_written, 14072u);
  // Reads are untouched by write charges.
  EXPECT_EQ(io.stats().pages_read, 0u);
  EXPECT_EQ(io.stats().bytes_read, 0u);
}

TEST(IoAccountantTest, VectorTouchCountsOnlyTheVector) {
  IoAccountant io(4096);
  io.ChargeVectorTouch();
  const IoStats stats = io.stats();
  EXPECT_EQ(stats.vectors_read, 1u);
  EXPECT_EQ(stats.bytes_read, 0u);
  EXPECT_EQ(stats.pages_read, 0u);
}

TEST(IoAccountantTest, WriteCountersFlowThroughArithmetic) {
  IoStats a{10, 20, 30, 40};
  a.bytes_written = 50;
  a.pages_written = 60;
  IoStats b{1, 2, 3, 4};
  b.bytes_written = 5;
  b.pages_written = 6;
  const IoStats sum = a + b;
  EXPECT_EQ(sum.bytes_written, 55u);
  EXPECT_EQ(sum.pages_written, 66u);
  const IoStats diff = a - b;
  EXPECT_EQ(diff.bytes_written, 45u);
  EXPECT_EQ(diff.pages_written, 54u);
  EXPECT_FALSE(a == b);
  IoAccountant io;
  io.ChargeStats(b);
  EXPECT_EQ(io.stats().bytes_written, 5u);
  EXPECT_EQ(io.stats().pages_written, 6u);
  io.Reset();
  EXPECT_EQ(io.stats().bytes_written, 0u);
  EXPECT_EQ(io.stats().pages_written, 0u);
}

}  // namespace
}  // namespace ebi
