#include "storage/engine/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/query_service.h"
#include "test_util.h"
#include "util/random.h"

namespace ebi {
namespace {

using testing_util::ScanEquals;

std::string TempPath(const char* tag) {
  return std::string(::testing::TempDir()) + "/ebi_wal_" + tag + ".log";
}

std::vector<uint8_t> Payload(std::initializer_list<uint8_t> bytes) {
  return std::vector<uint8_t>(bytes);
}

// ---------------------------------------------------------------- Wal core

TEST(WalTest, AppendReplayRoundTrip) {
  const std::string path = TempPath("roundtrip");
  std::remove(path.c_str());
  {
    auto wal = engine::Wal::Open(path, {});
    ASSERT_TRUE(wal.ok());
    const auto a = (*wal)->Append(engine::kWalRecordRowBatch, Payload({1, 2}));
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(*a, 0u);
    const auto b =
        (*wal)->Append(engine::kWalRecordCheckpoint, Payload({3, 4, 5}));
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*b, 1u);
  }
  const auto replay = engine::Wal::Replay(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_FALSE(replay->torn_tail);
  ASSERT_EQ(replay->records.size(), 2u);
  EXPECT_EQ(replay->records[0].type, engine::kWalRecordRowBatch);
  EXPECT_EQ(replay->records[0].lsn, 0u);
  EXPECT_EQ(replay->records[0].payload, Payload({1, 2}));
  EXPECT_EQ(replay->records[1].type, engine::kWalRecordCheckpoint);
  EXPECT_EQ(replay->records[1].payload, Payload({3, 4, 5}));
  std::remove(path.c_str());
}

TEST(WalTest, MissingFileReplaysEmpty) {
  const std::string path = TempPath("never_created");
  std::remove(path.c_str());
  const auto replay = engine::Wal::Replay(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->records.empty());
  EXPECT_FALSE(replay->torn_tail);
}

TEST(WalTest, ReopenContinuesLsnSequence) {
  const std::string path = TempPath("reopen");
  std::remove(path.c_str());
  {
    auto wal = engine::Wal::Open(path, {});
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(
        (*wal)->Append(engine::kWalRecordRowBatch, Payload({9})).ok());
  }
  auto wal = engine::Wal::Open(path, {});
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ((*wal)->next_lsn(), 1u);
  const auto lsn = (*wal)->Append(engine::kWalRecordRowBatch, Payload({8}));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 1u);
  std::remove(path.c_str());
}

TEST(WalTest, TornTailIsDetectedAndTruncatedOnOpen) {
  const std::string path = TempPath("torn");
  std::remove(path.c_str());
  uint64_t full_size = 0;
  {
    auto wal = engine::Wal::Open(path, {});
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(
        (*wal)->Append(engine::kWalRecordRowBatch, Payload({1, 1, 1})).ok());
    ASSERT_TRUE(
        (*wal)->Append(engine::kWalRecordRowBatch, Payload({2, 2, 2})).ok());
  }
  {
    std::FILE* raw = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(raw, nullptr);
    ASSERT_EQ(std::fseek(raw, 0, SEEK_END), 0);
    full_size = static_cast<uint64_t>(std::ftell(raw));
    std::fclose(raw);
    // Chop the final record mid-frame: a crash during the second append.
    ASSERT_EQ(::truncate(path.c_str(),
                            static_cast<off_t>(full_size - 5)),
              0);
  }
  const auto replay = engine::Wal::Replay(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->torn_tail);
  ASSERT_EQ(replay->records.size(), 1u);
  EXPECT_EQ(replay->records[0].payload, Payload({1, 1, 1}));
  // Open truncates the torn tail and continues after the last good record.
  auto wal = engine::Wal::Open(path, {});
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ((*wal)->next_lsn(), 1u);
  ASSERT_TRUE(
      (*wal)->Append(engine::kWalRecordRowBatch, Payload({3, 3, 3})).ok());
  const auto again = engine::Wal::Replay(path);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->torn_tail);
  ASSERT_EQ(again->records.size(), 2u);
  EXPECT_EQ(again->records[1].payload, Payload({3, 3, 3}));
  std::remove(path.c_str());
}

TEST(WalTest, CorruptMiddleRecordStopsReplayAtIt) {
  const std::string path = TempPath("corrupt");
  std::remove(path.c_str());
  {
    auto wal = engine::Wal::Open(path, {});
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(
        (*wal)->Append(engine::kWalRecordRowBatch, Payload({1})).ok());
    ASSERT_TRUE(
        (*wal)->Append(engine::kWalRecordRowBatch, Payload({2})).ok());
  }
  {
    // Flip a payload byte of the second record; its CRC no longer holds.
    std::FILE* raw = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(raw, nullptr);
    const long second_payload =
        static_cast<long>(2 * engine::Wal::kFrameHeaderBytes + 1);
    ASSERT_EQ(std::fseek(raw, second_payload, SEEK_SET), 0);
    std::fputc(0x5A, raw);
    std::fclose(raw);
  }
  const auto replay = engine::Wal::Replay(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->torn_tail);
  ASSERT_EQ(replay->records.size(), 1u);
  std::remove(path.c_str());
}

TEST(WalTest, FaultInjectedAppendFailsButRecordIsDurable) {
  const std::string path = TempPath("fault");
  std::remove(path.c_str());
  engine::WalOptions options;
  options.fail_after_appends = 2;
  auto wal = engine::Wal::Open(path, options);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(engine::kWalRecordRowBatch, Payload({1})).ok());
  // The 2nd append persists its record, then reports the injected crash.
  const auto crashed =
      (*wal)->Append(engine::kWalRecordRowBatch, Payload({2}));
  EXPECT_FALSE(crashed.ok());
  EXPECT_EQ(crashed.status().code(), StatusCode::kInternal);
  const auto replay = engine::Wal::Replay(path);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->records.size(), 2u);  // Durable despite the error.
  EXPECT_EQ(replay->records[1].payload, Payload({2}));
  std::remove(path.c_str());
}

TEST(WalTest, ResetEmptiesTheLog) {
  const std::string path = TempPath("reset");
  std::remove(path.c_str());
  auto wal = engine::Wal::Open(path, {});
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(engine::kWalRecordRowBatch, Payload({1})).ok());
  ASSERT_TRUE((*wal)->Reset().ok());
  EXPECT_EQ((*wal)->next_lsn(), 0u);
  const auto replay = engine::Wal::Replay(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->records.empty());
  std::remove(path.c_str());
}

TEST(WalTest, ConcurrentAppendsAllLand) {
  // The combiner is the only appender in production, but the WAL's
  // contract is thread-safety; TSan runs this leg.
  const std::string path = TempPath("concurrent");
  std::remove(path.c_str());
  engine::WalOptions options;
  options.sync_on_append = false;  // Throughput: one sync at the end.
  auto wal = engine::Wal::Open(path, options);
  ASSERT_TRUE(wal.ok());
  constexpr int kThreads = 4;
  constexpr int kAppendsPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&wal, t] {
      for (int i = 0; i < kAppendsPerThread; ++i) {
        const std::vector<uint8_t> payload(static_cast<size_t>(t) + 1,
                                           static_cast<uint8_t>(i));
        ASSERT_TRUE(
            (*wal)->Append(engine::kWalRecordRowBatch, payload).ok());
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  ASSERT_TRUE((*wal)->Sync().ok());
  const auto replay = engine::Wal::Replay(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_FALSE(replay->torn_tail);
  EXPECT_EQ(replay->records.size(),
            static_cast<size_t>(kThreads) * kAppendsPerThread);
  // LSNs are dense and ordered.
  for (size_t i = 0; i < replay->records.size(); ++i) {
    EXPECT_EQ(replay->records[i].lsn, i);
  }
  std::remove(path.c_str());
}

// ----------------------------------------------------------- RowBatch codec

TEST(RowBatchCodecTest, RoundTripMixedKinds) {
  std::vector<std::vector<Value>> rows = {
      {Value::Int(42), Value::Str("hello"), Value::Null()},
      {Value::Int(-7), Value::Str(""), Value::Int(0)},
  };
  const std::vector<uint8_t> payload = engine::EncodeRowBatch(1234, rows);
  const auto decoded = engine::DecodeRowBatch(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->first_row, 1234u);
  ASSERT_EQ(decoded->rows.size(), 2u);
  EXPECT_EQ(decoded->rows[0][0].int_value, 42);
  EXPECT_EQ(decoded->rows[0][1].string_value, "hello");
  EXPECT_TRUE(decoded->rows[0][2].is_null());
  EXPECT_EQ(decoded->rows[1][0].int_value, -7);
  EXPECT_EQ(decoded->rows[1][1].string_value, "");
}

TEST(RowBatchCodecTest, TruncationFuzzNeverCrashesOrMisdecodes) {
  std::vector<std::vector<Value>> rows;
  Rng rng(2026);
  for (int r = 0; r < 20; ++r) {
    std::vector<Value> row;
    for (int c = 0; c < 3; ++c) {
      switch (rng.UniformInt(3)) {
        case 0:
          row.push_back(Value::Int(static_cast<int64_t>(rng.Next())));
          break;
        case 1:
          row.push_back(Value::Str(std::string(rng.UniformInt(20), 'x')));
          break;
        default:
          row.push_back(Value::Null());
      }
    }
    rows.push_back(std::move(row));
  }
  const std::vector<uint8_t> payload = engine::EncodeRowBatch(7, rows);
  // Every strict prefix must be rejected with a Status — never a crash,
  // never a silently short batch.
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    const std::vector<uint8_t> prefix(payload.begin(),
                                      payload.begin() + cut);
    const auto decoded = engine::DecodeRowBatch(prefix);
    EXPECT_FALSE(decoded.ok()) << "prefix of " << cut << " bytes decoded";
  }
  // Random byte flips: either rejected or decode to *some* batch — the
  // point is no crash/UB; ASan guards the allocation paths.
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> mutated = payload;
    const size_t at = rng.UniformInt(mutated.size());
    mutated[at] = static_cast<uint8_t>(rng.Next());
    const auto decoded = engine::DecodeRowBatch(mutated);
    (void)decoded;
  }
}

TEST(RowBatchCodecTest, TrailingGarbageRejected) {
  std::vector<uint8_t> payload =
      engine::EncodeRowBatch(0, {{Value::Int(1)}});
  payload.push_back(0xFF);
  EXPECT_FALSE(engine::DecodeRowBatch(payload).ok());
}

// ------------------------------------------------- Durable serve recovery

std::unique_ptr<Table> BaseTable(size_t rows) {
  auto table = std::make_unique<Table>("durable");
  EXPECT_TRUE(table->AddColumn("a", Column::Type::kInt64).ok());
  EXPECT_TRUE(table->AddColumn("s", Column::Type::kString).ok());
  for (size_t i = 0; i < rows; ++i) {
    EXPECT_TRUE(table
                    ->AppendRow({Value::Int(static_cast<int64_t>(i % 7)),
                                 Value::Str(i % 2 == 0 ? "even" : "odd")})
                    .ok());
  }
  return table;
}

std::vector<serve::IndexSpec> Specs() {
  return {{"a", IndexKind::kEncodedBitmap}};
}

std::vector<std::vector<Value>> Batch(int64_t tag, size_t rows) {
  std::vector<std::vector<Value>> batch;
  for (size_t i = 0; i < rows; ++i) {
    batch.push_back({Value::Int(tag), Value::Str("appended")});
  }
  return batch;
}

/// The fixed query set recovery is judged by: row sets must be
/// bit-identical between the pre-crash committed state and the recovered
/// service.
std::vector<std::vector<Predicate>> FixedQueries() {
  std::vector<std::vector<Predicate>> queries;
  for (int64_t v = 0; v < 7; ++v) {
    queries.push_back({Predicate::Eq("a", Value::Int(v))});
  }
  queries.push_back({Predicate::Between("a", 2, 5)});
  return queries;
}

std::vector<BitVector> RunQueries(serve::QueryService& service) {
  std::vector<BitVector> results;
  for (const auto& predicates : FixedQueries()) {
    const auto served = service.Select(predicates);
    EXPECT_TRUE(served.ok());
    results.push_back(served.ok() ? served->selection.rows : BitVector());
  }
  return results;
}

TEST(DurableServeTest, AppendsSurviveRestart) {
  const std::string path = TempPath("durable_restart");
  std::remove(path.c_str());
  serve::ServeOptions options;
  options.wal_path = path;
  std::vector<BitVector> before;
  {
    serve::QueryService service(options);
    ASSERT_TRUE(service.Start(BaseTable(40), Specs()).ok());
    ASSERT_TRUE(service.Append(Batch(3, 5)).ok());
    ASSERT_TRUE(service.Append(Batch(6, 4)).ok());
    before = RunQueries(service);
    ASSERT_TRUE(service.Shutdown().ok());
  }
  {
    // Restart from the *base* table: the WAL replays both batches.
    serve::QueryService service(options);
    ASSERT_TRUE(service.Start(BaseTable(40), Specs()).ok());
    EXPECT_EQ(service.snapshots().Acquire()->NumRows(), 49u);
    EXPECT_EQ(RunQueries(service), before);
    ASSERT_TRUE(service.Shutdown().ok());
  }
  std::remove(path.c_str());
}

TEST(DurableServeTest, ReplayIsIdempotentAcrossRepeatedRestarts) {
  const std::string path = TempPath("durable_idem");
  std::remove(path.c_str());
  serve::ServeOptions options;
  options.wal_path = path;
  {
    serve::QueryService service(options);
    ASSERT_TRUE(service.Start(BaseTable(20), Specs()).ok());
    ASSERT_TRUE(service.Append(Batch(1, 3)).ok());
    ASSERT_TRUE(service.Shutdown().ok());
  }
  // Three restarts, each replaying the same log onto the same base: the
  // first_row key must prevent double-application every time.
  for (int restart = 0; restart < 3; ++restart) {
    serve::QueryService service(options);
    ASSERT_TRUE(service.Start(BaseTable(20), Specs()).ok());
    EXPECT_EQ(service.snapshots().Acquire()->NumRows(), 23u)
        << "restart " << restart;
    ASSERT_TRUE(service.Shutdown().ok());
  }
  std::remove(path.c_str());
}

TEST(DurableServeTest, RestartFromCaughtUpTableSkipsEveryBatch) {
  const std::string path = TempPath("durable_caughtup");
  std::remove(path.c_str());
  serve::ServeOptions options;
  options.wal_path = path;
  {
    serve::QueryService service(options);
    ASSERT_TRUE(service.Start(BaseTable(10), Specs()).ok());
    ASSERT_TRUE(service.Append(Batch(2, 6)).ok());
    ASSERT_TRUE(service.Shutdown().ok());
  }
  {
    // The operator checkpointed: the base table already contains the 16
    // rows. Replay must skip the batch, not append it twice.
    auto caught_up = BaseTable(10);
    for (auto& row : Batch(2, 6)) {
      ASSERT_TRUE(caught_up->AppendRow(row).ok());
    }
    serve::QueryService service(options);
    ASSERT_TRUE(service.Start(std::move(caught_up), Specs()).ok());
    EXPECT_EQ(service.snapshots().Acquire()->NumRows(), 16u);
    ASSERT_TRUE(service.Shutdown().ok());
  }
  std::remove(path.c_str());
}

TEST(DurableServeTest, WalGapFailsStartLoudly) {
  const std::string path = TempPath("durable_gap");
  std::remove(path.c_str());
  serve::ServeOptions options;
  options.wal_path = path;
  {
    serve::QueryService service(options);
    ASSERT_TRUE(service.Start(BaseTable(30), Specs()).ok());
    ASSERT_TRUE(service.Append(Batch(1, 2)).ok());
    ASSERT_TRUE(service.Shutdown().ok());
  }
  // A base table *shorter* than the batch's first_row means rows are
  // missing between the checkpoint and the log: refuse to serve.
  serve::QueryService service(options);
  const Status started = service.Start(BaseTable(10), Specs());
  EXPECT_FALSE(started.ok());
  EXPECT_NE(started.message().find("WAL gap"), std::string::npos);
  std::remove(path.c_str());
}

/// Kill-point: the crash happens after the WAL append made the batch
/// durable but before the publish. The Append caller sees an error, yet
/// recovery must surface the batch — WAL-durable *is* committed.
TEST(DurableServeTest, KillMidPublishRecoversCommittedState) {
  const std::string path = TempPath("durable_kill");
  std::remove(path.c_str());
  serve::ServeOptions options;
  options.wal_path = path;
  options.wal_fail_after_appends = 2;  // 2nd WAL append "crashes".
  std::vector<BitVector> committed;
  {
    serve::QueryService service(options);
    ASSERT_TRUE(service.Start(BaseTable(35), Specs()).ok());
    ASSERT_TRUE(service.Append(Batch(4, 3)).ok());
    const auto crashed = service.Append(Batch(5, 2));
    EXPECT_FALSE(crashed.ok());  // Publish never happened in-process.
    // In-process view still shows only the first batch.
    EXPECT_EQ(service.snapshots().Acquire()->NumRows(), 38u);
    ASSERT_TRUE(service.Shutdown().ok());
  }
  {
    // Reference for the *committed* state: base + both batches (the
    // second was WAL-durable before the simulated crash).
    auto reference_table = BaseTable(35);
    for (auto& row : Batch(4, 3)) {
      ASSERT_TRUE(reference_table->AppendRow(row).ok());
    }
    for (auto& row : Batch(5, 2)) {
      ASSERT_TRUE(reference_table->AppendRow(row).ok());
    }
    serve::ServeOptions reference_options;  // No WAL: plain service.
    serve::QueryService reference(reference_options);
    ASSERT_TRUE(reference.Start(std::move(reference_table), Specs()).ok());
    committed = RunQueries(reference);
    ASSERT_TRUE(reference.Shutdown().ok());
  }
  {
    // Recovery from the base table: replay must reconstruct base + both
    // batches and answer the fixed query set bit-identically.
    serve::ServeOptions recovered_options;
    recovered_options.wal_path = path;
    serve::QueryService service(recovered_options);
    ASSERT_TRUE(service.Start(BaseTable(35), Specs()).ok());
    EXPECT_EQ(service.snapshots().Acquire()->NumRows(), 40u);
    EXPECT_EQ(RunQueries(service), committed);
    ASSERT_TRUE(service.Shutdown().ok());
  }
  std::remove(path.c_str());
}

/// Kill-point: the final WAL record itself is torn (crash mid-append).
/// The batch was never durable, so recovery serves everything before it.
TEST(DurableServeTest, TornFinalRecordRecoversToPriorBatch) {
  const std::string path = TempPath("durable_tornfinal");
  std::remove(path.c_str());
  serve::ServeOptions options;
  options.wal_path = path;
  {
    serve::QueryService service(options);
    ASSERT_TRUE(service.Start(BaseTable(25), Specs()).ok());
    ASSERT_TRUE(service.Append(Batch(2, 4)).ok());
    ASSERT_TRUE(service.Append(Batch(3, 3)).ok());
    ASSERT_TRUE(service.Shutdown().ok());
  }
  {
    // Tear the tail: drop the last 7 bytes of the final record.
    std::FILE* raw = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(raw, nullptr);
    ASSERT_EQ(std::fseek(raw, 0, SEEK_END), 0);
    const long size = std::ftell(raw);
    std::fclose(raw);
    ASSERT_GT(size, 7);
    ASSERT_EQ(::truncate(path.c_str(), static_cast<off_t>(size - 7)), 0);
  }
  {
    serve::QueryService service(options);
    ASSERT_TRUE(service.Start(BaseTable(25), Specs()).ok());
    // First batch replayed; the torn second batch is gone.
    EXPECT_EQ(service.snapshots().Acquire()->NumRows(), 29u);
    // The service keeps serving appends after truncating the tail.
    ASSERT_TRUE(service.Append(Batch(6, 1)).ok());
    EXPECT_EQ(service.snapshots().Acquire()->NumRows(), 30u);
    ASSERT_TRUE(service.Shutdown().ok());
  }
  std::remove(path.c_str());
}

TEST(DurableServeTest, ConcurrentDurableAppendsCombineAndRecover) {
  const std::string path = TempPath("durable_concurrent");
  std::remove(path.c_str());
  serve::ServeOptions options;
  options.wal_path = path;
  constexpr int kAppenders = 4;
  constexpr int kBatches = 5;
  {
    serve::QueryService service(options);
    ASSERT_TRUE(service.Start(BaseTable(10), Specs()).ok());
    std::vector<std::thread> threads;
    for (int t = 0; t < kAppenders; ++t) {
      threads.emplace_back([&service, t] {
        for (int i = 0; i < kBatches; ++i) {
          ASSERT_TRUE(service.Append(Batch(t % 7, 2)).ok());
        }
      });
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
    ASSERT_TRUE(service.Shutdown().ok());
  }
  {
    serve::QueryService service(options);
    ASSERT_TRUE(service.Start(BaseTable(10), Specs()).ok());
    EXPECT_EQ(service.snapshots().Acquire()->NumRows(),
              10u + kAppenders * kBatches * 2u);
    ASSERT_TRUE(service.Shutdown().ok());
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ebi
