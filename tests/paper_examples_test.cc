// Consolidated fixtures for worked examples in the paper's running text
// that don't belong to a single module: the Section 2.2 NULL/NotExist
// encoding, the Q1/Q2 comparison of Section 3.1, and the Section 2.2
// footnote-3 don't-care optimization.

#include <gtest/gtest.h>

#include "boolean/quine_mccluskey.h"
#include "boolean/reduction.h"
#include "encoding/mapping_table.h"
#include "index/encoded_bitmap_index.h"
#include "index/simple_bitmap_index.h"
#include "test_util.h"

namespace ebi {
namespace {

using testing_util::IntTable;

TEST(PaperExamplesTest, Section22NullEncodingReduction) {
  // "encode {NotExist, NULL, a, b, c, d, e} as {000, 010, 011, 100, 101,
  //  110, 111}" — then the selection {NULL, a, b, c} reduces to
  //  B2'B1 + B2B1', with the existence conjunct dropped (Theorem 2.1).
  const std::vector<uint64_t> onset = {0b010, 0b011, 0b100, 0b101};
  const std::vector<uint64_t> dc = {0b001};  // The only unused codeword.
  const Cover cover = ReduceRetrievalFunction(onset, dc, 3);
  EXPECT_EQ(cover.size(), 2u);
  EXPECT_EQ(DistinctVariables(cover), 2);  // B2 and B1 only.
  // Semantically: covers exactly the onset among real codewords, and
  // never the void codeword 000.
  for (uint64_t code : onset) {
    EXPECT_TRUE(CoverCovers(cover, code)) << code;
  }
  EXPECT_FALSE(CoverCovers(cover, 0b000));  // void.
  EXPECT_FALSE(CoverCovers(cover, 0b110));  // d.
  EXPECT_FALSE(CoverCovers(cover, 0b111));  // e.
}

TEST(PaperExamplesTest, Section31QueryQ1AndQ2) {
  // Q1: A = a; Q2: A = a OR A = b, on the Figure 1 setup (domain
  // {a,b,c}, a=00, b=01, c=10). Simple reads 1 vs 2 vectors; encoded
  // reads 2 vs 1 — the paper's point-vs-range tradeoff in miniature.
  auto table = IntTable({0, 2, 1, 0, 1});  // a c b a b with a=0,b=1,c=2.
  IoAccountant simple_io;
  IoAccountant encoded_io;
  SimpleBitmapIndex simple(&table->column(0), &table->existence(),
                           &simple_io);
  EncodedBitmapIndexOptions options;
  options.reserve_void_zero = false;  // Figure 1 uses codes 00, 01, 10.
  EncodedBitmapIndex encoded(&table->column(0), &table->existence(),
                             &encoded_io, options);
  ASSERT_TRUE(simple.Build().ok());
  ASSERT_TRUE(encoded.Build().ok());

  // Q1.
  simple_io.Reset();
  encoded_io.Reset();
  const auto q1_simple = simple.EvaluateEquals(Value::Int(0));
  const auto q1_encoded = encoded.EvaluateEquals(Value::Int(0));
  ASSERT_TRUE(q1_simple.ok());
  ASSERT_TRUE(q1_encoded.ok());
  EXPECT_EQ(*q1_simple, *q1_encoded);
  const uint64_t q1_s = simple_io.stats().vectors_read;
  const uint64_t q1_e = encoded_io.stats().vectors_read;

  // Q2.
  simple_io.Reset();
  encoded_io.Reset();
  const auto q2_simple =
      simple.EvaluateIn({Value::Int(0), Value::Int(1)});
  const auto q2_encoded =
      encoded.EvaluateIn({Value::Int(0), Value::Int(1)});
  ASSERT_TRUE(q2_simple.ok());
  ASSERT_TRUE(q2_encoded.ok());
  EXPECT_EQ(*q2_simple, *q2_encoded);
  const uint64_t q2_s = simple_io.stats().vectors_read;
  const uint64_t q2_e = encoded_io.stats().vectors_read;

  // Point: simple cheaper. Range: encoded cheaper. (Both sides carry one
  // existence read in this configuration, so the *relative* order is the
  // paper's.)
  EXPECT_LT(q1_s, q1_e);
  EXPECT_LT(q2_e, q2_s);
  // And the paper's absolute counts net of the existence read: 1 vs 2
  // for Q1, 2 vs 1 for Q2.
  EXPECT_EQ(q1_s - 1, 1u);
  EXPECT_EQ(q1_e - 1, 2u);
  EXPECT_EQ(q2_s - 1, 2u);
  EXPECT_EQ(q2_e - 1, 1u);
}

TEST(PaperExamplesTest, Footnote3DontCareXorAvoidance) {
  // Footnote 3: for A = b OR A = c on Figure 1's codes, f_b + f_c =
  // B1'B0 + B1B0' (an XOR — two cubes), but adding the unused codeword 11
  // as don't-care yields B1 + B0 (an OR of single literals). Both are
  // valid; the minimizer must find a 2-cube cover either way and with the
  // don't-care the cubes become single literals.
  const std::vector<uint64_t> onset = {0b01, 0b10};
  const Cover without_dc = MinimizeQm(onset, {}, 2);
  EXPECT_EQ(without_dc.size(), 2u);
  EXPECT_EQ(TotalLiterals(without_dc), 4);  // B1'B0 + B1B0'.
  const Cover with_dc = MinimizeQm(onset, {0b11}, 2);
  EXPECT_EQ(with_dc.size(), 2u);
  EXPECT_EQ(TotalLiterals(with_dc), 2);  // B1 + B0.
  EXPECT_FALSE(CoverCovers(with_dc, 0b00));
}

TEST(PaperExamplesTest, TwelveThousandProductsHeadline) {
  // Section 2.2's opening arithmetic, verified on a real (scaled) build:
  // the vector count is exactly ceil(log2 m), never m.
  auto table = std::make_unique<Table>("SALES");
  ASSERT_TRUE(table->AddColumn("product", Column::Type::kInt64).ok());
  const size_t m = 3000;
  for (size_t r = 0; r < 2 * m; ++r) {
    ASSERT_TRUE(
        table->AppendRow({Value::Int(static_cast<int64_t>(r % m))}).ok());
  }
  IoAccountant io;
  EncodedBitmapIndexOptions options;
  options.reserve_void_zero = false;
  EncodedBitmapIndex index(&table->column(0), &table->existence(), &io,
                           options);
  ASSERT_TRUE(index.Build().ok());
  EXPECT_EQ(index.NumVectors(), 12u);  // ceil(log2 3000).
  SimpleBitmapIndex simple(&table->column(0), &table->existence(), &io);
  ASSERT_TRUE(simple.Build().ok());
  EXPECT_EQ(simple.NumVectors(), m);
  // 12 slices vs 3000 vectors; at this (small) row count the mapping
  // table is a visible fraction of the encoded index, so the net factor
  // is ~25x rather than the asymptotic 250x.
  EXPECT_LT(index.SizeBytes() * 20, simple.SizeBytes());
}

}  // namespace
}  // namespace ebi
