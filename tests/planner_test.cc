#include "query/planner.h"

#include <gtest/gtest.h>

#include "index/bit_sliced_index.h"
#include "index/encoded_bitmap_index.h"
#include "index/simple_bitmap_index.h"
#include "test_util.h"
#include "workload/generator.h"

namespace ebi {
namespace {

using testing_util::RandomIntTable;

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = RandomIntTable(4000, 200, 13);
    const Column* col = &table_->column(0);
    const BitVector* ex = &table_->existence();
    simple_ = std::make_unique<SimpleBitmapIndex>(col, ex, &io_);
    encoded_ = std::make_unique<EncodedBitmapIndex>(col, ex, &io_);
    sliced_ = std::make_unique<BitSlicedIndex>(col, ex, &io_);
    ASSERT_TRUE(simple_->Build().ok());
    ASSERT_TRUE(encoded_->Build().ok());
    ASSERT_TRUE(sliced_->Build().ok());
    planner_ = std::make_unique<AccessPathPlanner>(table_.get(), &io_);
    planner_->RegisterIndex("a", simple_.get());
    planner_->RegisterIndex("a", encoded_.get());
    planner_->RegisterIndex("a", sliced_.get());
  }

  IoAccountant io_;
  std::unique_ptr<Table> table_;
  std::unique_ptr<SimpleBitmapIndex> simple_;
  std::unique_ptr<EncodedBitmapIndex> encoded_;
  std::unique_ptr<BitSlicedIndex> sliced_;
  std::unique_ptr<AccessPathPlanner> planner_;
};

TEST_F(PlannerTest, PointQueriesPreferSimpleBitmaps) {
  // Section 3.1: "for single value selection, simple bitmap indexing
  // performs better" — 2 vectors vs ceil(log2 m).
  const auto path = planner_->Choose(Predicate::Eq("a", Value::Int(5)));
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->index, simple_.get());
  EXPECT_EQ(path->delta, 1u);
}

TEST_F(PlannerTest, WideInListsPreferEncodedBitmaps) {
  // δ = 40 >> log2(200): encoded wins.
  std::vector<Value> values;
  for (int64_t v = 0; v < 40; ++v) {
    values.push_back(Value::Int(v));
  }
  const auto path = planner_->Choose(Predicate::In("a", values));
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->index, encoded_.get());
  EXPECT_EQ(path->delta, 40u);
}

TEST_F(PlannerTest, CrossoverNearLog2M) {
  // Sweep δ: below log2(m)+1 simple must win, far above encoded must win.
  const int k = 8;  // ceil(log2 201) with the void codeword.
  std::vector<Value> small_list = {Value::Int(0), Value::Int(1)};
  const auto small = planner_->Choose(Predicate::In("a", small_list));
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small->index, simple_.get());

  std::vector<Value> big_list;
  for (int64_t v = 0; v < 3 * k; ++v) {
    big_list.push_back(Value::Int(v));
  }
  const auto big = planner_->Choose(Predicate::In("a", big_list));
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(big->index, encoded_.get());
}

TEST_F(PlannerTest, RangeShapeComputesDelta) {
  const auto shape = planner_->ShapeOf(Predicate::Between("a", 10, 29));
  ASSERT_TRUE(shape.ok());
  EXPECT_EQ(shape->kind, SelectionShape::Kind::kRange);
  // Roughly 20 distinct values exist in [10, 29] on this dense column.
  EXPECT_GE(shape->delta, 15u);
  EXPECT_LE(shape->delta, 20u);
}

TEST_F(PlannerTest, SelectExecutesChosenPaths) {
  std::vector<AccessPath> paths;
  const auto result = planner_->Select(
      {Predicate::Eq("a", Value::Int(3)), Predicate::Between("a", 0, 99)},
      &paths);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0].index, simple_.get());
  // Result equals the scan reference.
  SelectionExecutor reference(table_.get(), &io_);
  const auto scanned = reference.SelectByScan(
      {Predicate::Eq("a", Value::Int(3)), Predicate::Between("a", 0, 99)});
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(result->rows, *scanned);
}

TEST_F(PlannerTest, PlannedBeatsSingleIndexOnMixedConjunction) {
  // A point predicate and a wide range: the planner mixes simple (point)
  // and encoded/sliced (range); measure that the planned I/O is no worse
  // than forcing everything through the simple index.
  const std::vector<Predicate> query = {
      Predicate::Eq("a", Value::Int(7)), Predicate::Between("a", 0, 150)};
  io_.Reset();
  const auto planned = planner_->Select(query);
  ASSERT_TRUE(planned.ok());
  const uint64_t planned_vectors = planned->io.vectors_read;

  SelectionExecutor simple_only(table_.get(), &io_);
  simple_only.RegisterIndex("a", simple_.get());
  io_.Reset();
  const auto forced = simple_only.Select(query);
  ASSERT_TRUE(forced.ok());
  EXPECT_EQ(planned->rows, forced->rows);
  EXPECT_LT(planned_vectors, forced->io.vectors_read);
}

TEST_F(PlannerTest, IsNullRoutesOnlyToCapableIndexes) {
  // A table with NULLs: the bit-sliced index cannot answer IS NULL, the
  // simple and encoded ones can; the planner must never pick the sliced
  // one for that predicate.
  auto table = RandomIntTable(500, 30, 99, /*null_fraction=*/0.2);
  IoAccountant io;
  BitSlicedIndex sliced(&table->column(0), &table->existence(), &io);
  SimpleBitmapIndex simple(&table->column(0), &table->existence(), &io);
  ASSERT_TRUE(sliced.Build().ok());
  ASSERT_TRUE(simple.Build().ok());
  AccessPathPlanner planner(table.get(), &io);
  planner.RegisterIndex("a", &sliced);
  const auto unroutable = planner.Choose(Predicate::IsNull("a"));
  EXPECT_EQ(unroutable.status().code(), StatusCode::kNotFound);
  planner.RegisterIndex("a", &simple);
  const auto routed = planner.Choose(Predicate::IsNull("a"));
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(routed->index, &simple);
  const auto result = planner.Select({Predicate::IsNull("a")});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->count, 0u);
}

TEST_F(PlannerTest, MissingColumnRejected) {
  EXPECT_EQ(planner_->Choose(Predicate::Eq("zz", Value::Int(1)))
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(PlannerTest, EmptyConjunctionSelectsExisting) {
  const auto result = planner_->Select({});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->count, table_->NumRows());
}

}  // namespace
}  // namespace ebi
