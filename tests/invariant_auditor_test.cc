#include "analysis/auditor.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "exec/thread_pool.h"
#include "index/cold_encoded_bitmap_index.h"
#include "index/index_factory.h"
#include "index/persistence.h"
#include "index/sharded_index.h"
#include "storage/segmented_table.h"
#include "test_util.h"
#include "util/rle_bitmap.h"

namespace ebi {
namespace {

using testing_util::IntTable;
using testing_util::RandomIntTable;

// ---------------------------------------------------------------------------
// Mapping-table invariants (Definition 2.1, Theorem 2.1).

TEST(InvariantAuditorTest, CleanMappingPasses) {
  auto mapping = MappingTable::Create(3, {1, 2, 3, 4, 5}, /*void_code=*/0,
                                      /*null_code=*/6);
  ASSERT_TRUE(mapping.ok());
  const AuditReport report = InvariantAuditor::AuditMapping(*mapping);
  EXPECT_TRUE(report.clean()) << report.ToString();
  EXPECT_GT(report.checks_run, 0u);
}

TEST(InvariantAuditorTest, DetectsNonBijectiveMapping) {
  // Two values sharing codeword 1 — MappingTable::Create itself rejects
  // this, so the raw-parts entry point is the seeding route.
  const AuditReport report =
      InvariantAuditor::AuditMappingParts(2, {1, 2, 1});
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(report.Has(ViolationKind::kDuplicateCodeword))
      << report.ToString();
}

TEST(InvariantAuditorTest, DetectsCodewordOutOfWidth) {
  const AuditReport report =
      InvariantAuditor::AuditMappingParts(2, {1, 5});
  EXPECT_TRUE(report.Has(ViolationKind::kCodewordOutOfWidth))
      << report.ToString();
}

TEST(InvariantAuditorTest, DetectsReservedCodeAssignedToLiveValue) {
  // Theorem 2.1 reserves codeword 0 for the void tuples; a live value
  // occupying it breaks the existence-free selection guarantee.
  const AuditReport report = InvariantAuditor::AuditMappingParts(
      2, {0, 1, 2}, /*void_code=*/uint64_t{0});
  EXPECT_TRUE(report.Has(ViolationKind::kReservedCodeAssigned))
      << report.ToString();
  // The collision also surfaces as a duplicate between the reservation
  // and the value's codeword.
  EXPECT_TRUE(report.Has(ViolationKind::kDuplicateCodeword));
}

TEST(InvariantAuditorTest, ReservedCodesAloneAreClean) {
  const AuditReport report = InvariantAuditor::AuditMappingParts(
      2, {1, 2, 3}, /*void_code=*/uint64_t{0});
  EXPECT_TRUE(report.clean()) << report.ToString();
}

// ---------------------------------------------------------------------------
// Selection well-definedness (Definition 2.5, Figure 3).

TEST(InvariantAuditorTest, WellDefinedSelectionIsClean) {
  // Figure 3(a): a=000, b=100, c=001, d=101, e=011, f=111, g=010, h=110.
  auto mapping = MappingTable::Create(
      3, {0b000, 0b100, 0b001, 0b101, 0b011, 0b111, 0b010, 0b110});
  ASSERT_TRUE(mapping.ok());
  const AuditReport report =
      InvariantAuditor::AuditSelection(*mapping, {0, 1, 2, 3});
  EXPECT_TRUE(report.clean()) << report.ToString();
}

TEST(InvariantAuditorTest, DetectsNotWellDefinedSelection) {
  // Figure 3(b): the improper mapping for {a,b,c,d}.
  auto mapping = MappingTable::Create(
      3, {0b000, 0b011, 0b001, 0b101, 0b100, 0b111, 0b010, 0b110});
  ASSERT_TRUE(mapping.ok());
  const AuditReport report =
      InvariantAuditor::AuditSelection(*mapping, {0, 1, 2, 3});
  EXPECT_TRUE(report.Has(ViolationKind::kSelectionNotWellDefined))
      << report.ToString();
}

// ---------------------------------------------------------------------------
// Bitmap length / compressed-form contracts.

TEST(InvariantAuditorTest, DetectsWrongLengthBitVector) {
  const AuditReport report =
      InvariantAuditor::AuditBitVector(BitVector(5), /*expected_bits=*/10);
  EXPECT_TRUE(report.Has(ViolationKind::kBitmapLengthMismatch))
      << report.ToString();
}

TEST(InvariantAuditorTest, CleanBitVectorPassesTailCheck) {
  BitVector bits(70);
  bits.Set(69);
  const AuditReport report =
      InvariantAuditor::AuditBitVector(bits, /*expected_bits=*/70);
  EXPECT_TRUE(report.clean()) << report.ToString();
}

TEST(InvariantAuditorTest, DetectsDirtyTailInRawWords) {
  // BitVector's own mutators always mask the tail, so padding-bit
  // corruption has to be seeded through the raw-words overload — the
  // shape a buggy serializer or direct word writer would produce.
  const std::vector<uint64_t> dirty = {0, uint64_t{1} << 40};
  const AuditReport report =
      InvariantAuditor::AuditBitVectorWords(dirty, /*declared_bits=*/70);
  EXPECT_TRUE(report.Has(ViolationKind::kBitmapTailDirty))
      << report.ToString();

  const std::vector<uint64_t> clean = {~uint64_t{0}, (uint64_t{1} << 6) - 1};
  EXPECT_TRUE(
      InvariantAuditor::AuditBitVectorWords(clean, 70).clean());
  // Word-multiple sizes have no padding, so nothing can be dirty.
  EXPECT_TRUE(
      InvariantAuditor::AuditBitVectorWords({~uint64_t{0}}, 64).clean());
}

TEST(InvariantAuditorTest, DetectsWrongWordCountInRawWords) {
  const AuditReport report = InvariantAuditor::AuditBitVectorWords(
      {0, 0, 0}, /*declared_bits=*/70);
  EXPECT_TRUE(report.Has(ViolationKind::kBitmapLengthMismatch))
      << report.ToString();
}

TEST(InvariantAuditorTest, DetectsRleRunSumMismatch) {
  const AuditReport report =
      InvariantAuditor::AuditRleRuns({3, 2}, /*declared_bits=*/6);
  EXPECT_TRUE(report.Has(ViolationKind::kRleRunSumMismatch))
      << report.ToString();
}

TEST(InvariantAuditorTest, DetectsCorruptEwahWords) {
  // A marker claiming two literal words but providing none.
  const std::vector<uint64_t> words = {uint64_t{2} << 33};
  const AuditReport report =
      InvariantAuditor::AuditEwahWords(words, /*declared_bits=*/128);
  EXPECT_TRUE(report.Has(ViolationKind::kEwahFormatMismatch))
      << report.ToString();
}

TEST(InvariantAuditorTest, StoredBitmapCleanInEveryFormat) {
  BitVector bits(200);
  for (size_t i = 0; i < 200; i += 7) {
    bits.Set(i);
  }
  for (const BitmapFormat format :
       {BitmapFormat::kPlain, BitmapFormat::kRle, BitmapFormat::kEwah}) {
    const StoredBitmap stored = StoredBitmap::Make(bits, format);
    const AuditReport report =
        InvariantAuditor::AuditStoredBitmap(stored, 200);
    EXPECT_TRUE(report.clean()) << report.ToString();
  }
}

// ---------------------------------------------------------------------------
// Persisted bitmaps (index/persistence.h streams).

TEST(InvariantAuditorTest, CleanPersistedBitmapRoundTrips) {
  BitVector bits(100);
  bits.Set(3);
  bits.Set(64);
  std::ostringstream out;
  ASSERT_TRUE(
      SaveStoredBitmap(out, StoredBitmap::Make(bits, BitmapFormat::kRle))
          .ok());
  std::istringstream in(out.str());
  const AuditReport report = InvariantAuditor::AuditPersistedBitmap(in, 100);
  EXPECT_TRUE(report.clean()) << report.ToString();
}

TEST(InvariantAuditorTest, DetectsTruncatedPersistedBitmap) {
  BitVector bits(100);
  bits.Set(3);
  std::ostringstream out;
  ASSERT_TRUE(
      SaveStoredBitmap(out, StoredBitmap::Make(bits, BitmapFormat::kEwah))
          .ok());
  const std::string full = out.str();
  std::istringstream in(full.substr(0, full.size() / 2));
  const AuditReport report = InvariantAuditor::AuditPersistedBitmap(in, 100);
  EXPECT_TRUE(report.Has(ViolationKind::kPersistedBitmapCorrupt))
      << report.ToString();
}

TEST(InvariantAuditorTest, DetectsFormatMismatchedPersistedBitmap) {
  // A BitVector stream is not a StoredBitmap stream: the section magic
  // differs, so loading must reject rather than misinterpret it.
  std::ostringstream out;
  ASSERT_TRUE(SaveBitVector(out, BitVector(64)).ok());
  std::istringstream in(out.str());
  const AuditReport report = InvariantAuditor::AuditPersistedBitmap(in, 64);
  EXPECT_TRUE(report.Has(ViolationKind::kPersistedBitmapCorrupt))
      << report.ToString();
}

TEST(InvariantAuditorTest, DetectsWrongLengthPersistedBitmap) {
  BitVector bits(100);
  std::ostringstream out;
  ASSERT_TRUE(
      SaveStoredBitmap(out, StoredBitmap::Make(bits, BitmapFormat::kPlain))
          .ok());
  std::istringstream in(out.str());
  const AuditReport report =
      InvariantAuditor::AuditPersistedBitmap(in, /*expected_bits=*/200);
  EXPECT_TRUE(report.Has(ViolationKind::kBitmapLengthMismatch))
      << report.ToString();
}

// ---------------------------------------------------------------------------
// Whole-index audits.

TEST(InvariantAuditorTest, CleanAuditAcrossIndexFamilies) {
  auto table = RandomIntTable(300, 25, 11, 0.05);
  for (const IndexKind kind :
       {IndexKind::kSimpleBitmap, IndexKind::kSimpleBitmapRle,
        IndexKind::kSimpleBitmapEwah, IndexKind::kEncodedBitmap,
        IndexKind::kBitSliced, IndexKind::kBaseBitSliced,
        IndexKind::kRangeBasedBitmap, IndexKind::kDynamicBitmap}) {
    IoAccountant io;
    auto index = MakeSecondaryIndex(kind, &table->column(0),
                                    &table->existence(), &io);
    ASSERT_TRUE(index != nullptr) << IndexKindName(kind);
    ASSERT_TRUE(index->Build().ok()) << IndexKindName(kind);
    const AuditReport report =
        InvariantAuditor::AuditIndex(*index, table->NumRows());
    EXPECT_TRUE(report.clean())
        << IndexKindName(kind) << ": " << report.ToString();
    EXPECT_GT(report.checks_run, 0u) << IndexKindName(kind);
  }
}

TEST(InvariantAuditorTest, CleanAuditOnColdIndex) {
  auto table = RandomIntTable(200, 20, 5);
  IoAccountant io;
  ColdEncodedBitmapIndexOptions options;
  options.directory = ::testing::TempDir();
  options.format = BitmapFormat::kEwah;
  ColdEncodedBitmapIndex index(&table->column(0), &table->existence(), &io,
                               options);
  ASSERT_TRUE(index.Build().ok());
  AuditReport report = InvariantAuditor::AuditIndex(index, table->NumRows());
  EXPECT_TRUE(report.clean()) << report.ToString();
  // The cold walk must actually fetch slices through the store.
  EXPECT_GE(report.checks_run, index.NumSlices());
}

TEST(InvariantAuditorTest, DetectsStaleIndexAfterTableGrows) {
  auto table = IntTable({1, 2, 3, 1, 2, 3, 1, 2});
  IoAccountant io;
  auto index = MakeSecondaryIndex(IndexKind::kSimpleBitmap,
                                  &table->column(0), &table->existence(),
                                  &io);
  ASSERT_TRUE(index->Build().ok());
  // Grow the table without maintaining the index: every vector is now one
  // row short of the table.
  ASSERT_TRUE(table->AppendRow({Value::Int(1)}).ok());
  const AuditReport report =
      InvariantAuditor::AuditIndex(*index, table->NumRows());
  EXPECT_TRUE(report.Has(ViolationKind::kBitmapLengthMismatch))
      << report.ToString();
}

// ---------------------------------------------------------------------------
// Sharded indexes: per-shard audits plus the partition contract.

struct ShardedHarness {
  std::unique_ptr<Table> table;
  std::unique_ptr<SegmentedTable> segments;
  std::unique_ptr<exec::ThreadPool> pool;
  std::unique_ptr<IoAccountant> io = std::make_unique<IoAccountant>();
  std::unique_ptr<ShardedIndex> index;
};

ShardedHarness MakeSharded(IndexKind kind, size_t rows,
                           size_t segment_rows) {
  ShardedHarness h;
  h.table = RandomIntTable(rows, 20, 42, 0.1);
  auto parts = SegmentedTable::Partition(*h.table, segment_rows);
  EXPECT_TRUE(parts.ok());
  h.segments = std::make_unique<SegmentedTable>(std::move(parts).value());
  h.pool = std::make_unique<exec::ThreadPool>(3);
  h.index = std::make_unique<ShardedIndex>(
      h.segments.get(), &h.table->column(0), &h.table->existence(), kind,
      h.pool.get(), h.io.get());
  EXPECT_TRUE(h.index->Build().ok());
  return h;
}

TEST(InvariantAuditorTest, CleanAuditOnShardedIndexes) {
  for (const IndexKind kind :
       {IndexKind::kSimpleBitmapEwah, IndexKind::kEncodedBitmap,
        IndexKind::kBitSliced, IndexKind::kRangeBasedBitmap}) {
    ShardedHarness h = MakeSharded(kind, 400, 64);
    const AuditReport report =
        InvariantAuditor::AuditShardedIndex(*h.index, h.table->NumRows());
    EXPECT_TRUE(report.clean())
        << IndexKindName(kind) << ": " << report.ToString();
    EXPECT_GT(report.checks_run, 0u);
  }
}

TEST(InvariantAuditorTest, DetectsShardPartitionMismatch) {
  ShardedHarness h = MakeSharded(IndexKind::kEncodedBitmap, 300, 50);
  const AuditReport report =
      InvariantAuditor::AuditShardedIndex(*h.index, h.table->NumRows() + 5);
  EXPECT_TRUE(report.Has(ViolationKind::kShardPartitionMismatch))
      << report.ToString();
}

// ---------------------------------------------------------------------------
// Report plumbing.

TEST(InvariantAuditorTest, ReportMergeAndToString) {
  AuditReport a = InvariantAuditor::AuditMappingParts(2, {1, 2, 1});
  const size_t a_checks = a.checks_run;
  const size_t a_violations = a.violations.size();
  AuditReport b = InvariantAuditor::AuditRleRuns({3, 2}, 6);
  a.Merge(b);
  EXPECT_EQ(a.checks_run, a_checks + b.checks_run);
  EXPECT_EQ(a.violations.size(), a_violations + 1);
  EXPECT_EQ(a.CountOf(ViolationKind::kRleRunSumMismatch), 1u);
  const std::string rendered = a.ToString();
  EXPECT_NE(rendered.find("DuplicateCodeword"), std::string::npos);
  EXPECT_NE(rendered.find("RleRunSumMismatch"), std::string::npos);
}

}  // namespace
}  // namespace ebi
