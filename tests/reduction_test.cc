#include "boolean/reduction.h"

#include <gtest/gtest.h>

#include "boolean/quine_mccluskey.h"
#include "util/random.h"

namespace ebi {
namespace {

TEST(ReductionTest, DisabledReductionReturnsRawMinTerms) {
  ReductionOptions options;
  options.enable_reduction = false;
  const Cover cover = ReduceRetrievalFunction({0b00, 0b01}, {}, 2, options);
  EXPECT_EQ(cover.size(), 2u);
  EXPECT_EQ(DistinctVariables(cover), 2);
}

TEST(ReductionTest, EnabledReductionMatchesQm) {
  const Cover cover = ReduceRetrievalFunction({0b00, 0b01}, {}, 2);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], Cube(0b00, 0b10));
}

TEST(ReductionTest, EmptyOnsetStaysEmpty) {
  EXPECT_TRUE(ReduceRetrievalFunction({}, {0, 1}, 2).empty());
}

TEST(ReductionTest, HeuristicFixpointMergesChains) {
  // Eight consecutive min-terms collapse to a single free cube.
  Cover cover;
  for (uint64_t m = 0; m < 8; ++m) {
    cover.push_back(Cube::MinTerm(m, 3));
  }
  const Cover reduced = ReduceCoverHeuristic(cover);
  ASSERT_EQ(reduced.size(), 1u);
  EXPECT_EQ(reduced[0].mask, 0u);
}

TEST(ReductionTest, HeuristicAbsorbsContainedCubes) {
  const Cover cover = {Cube(0b00, 0b10), Cube::MinTerm(0b00, 2)};
  const Cover reduced = ReduceCoverHeuristic(cover);
  ASSERT_EQ(reduced.size(), 1u);
  EXPECT_EQ(reduced[0], Cube(0b00, 0b10));
}

TEST(ReductionTest, HeuristicPreservesSemantics) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const int k = 4;
    std::vector<uint64_t> onset;
    for (uint64_t m = 0; m < (uint64_t{1} << k); ++m) {
      if (rng.Bernoulli(0.45)) {
        onset.push_back(m);
      }
    }
    Cover raw;
    for (uint64_t m : onset) {
      raw.push_back(Cube::MinTerm(m, k));
    }
    const Cover reduced = ReduceCoverHeuristic(raw);
    EXPECT_TRUE(CoversEquivalent(raw, reduced, k)) << "trial " << trial;
    EXPECT_LE(reduced.size(), raw.size());
  }
}

TEST(ReductionTest, LargeDontCareSetIsSkipped) {
  ReductionOptions options;
  options.max_dontcare_terms = 2;
  std::vector<uint64_t> dc = {2, 3, 6, 7};  // 4 > 2: must be ignored.
  const Cover with_cap = ReduceRetrievalFunction({0, 1}, dc, 3, options);
  const Cover without_dc = ReduceRetrievalFunction({0, 1}, {}, 3, options);
  EXPECT_EQ(with_cap.size(), without_dc.size());
  EXPECT_EQ(DistinctVariables(with_cap), DistinctVariables(without_dc));
}

TEST(ReductionTest, HeuristicPathKeepsOnlyUsefulCubes) {
  // Force the heuristic path with a tiny exact threshold.
  ReductionOptions options;
  options.exact_max_terms = 1;
  const std::vector<uint64_t> onset = {0b000, 0b001};
  const std::vector<uint64_t> dc = {0b010, 0b011};
  const Cover cover = ReduceRetrievalFunction(onset, dc, 3, options);
  // Every returned cube must cover at least one onset codeword.
  for (const Cube& cube : cover) {
    EXPECT_TRUE(cube.Covers(0b000) || cube.Covers(0b001))
        << cube.ToString(3);
  }
  // And the onset must be covered.
  EXPECT_TRUE(CoverCovers(cover, 0b000));
  EXPECT_TRUE(CoverCovers(cover, 0b001));
  // The offset must not.
  EXPECT_FALSE(CoverCovers(cover, 0b100));
  EXPECT_FALSE(CoverCovers(cover, 0b111));
}

TEST(ReductionTest, HeuristicAndExactAgreeOnPrefixCosts) {
  // On prefix selections both paths find the subcube structure.
  ReductionOptions heuristic;
  heuristic.exact_max_terms = 1;
  for (int j = 1; j <= 4; ++j) {
    std::vector<uint64_t> onset;
    for (uint64_t c = 0; c < (uint64_t{1} << j); ++c) {
      onset.push_back(c);
    }
    const Cover exact = ReduceRetrievalFunction(onset, {}, 5);
    const Cover heur = ReduceRetrievalFunction(onset, {}, 5, heuristic);
    EXPECT_EQ(DistinctVariables(exact), 5 - j);
    EXPECT_EQ(DistinctVariables(heur), 5 - j);
  }
}

TEST(ReductionTest, VariablePreferenceReducesVectorCount) {
  // prefer_fewer_variables steers tie-breaks; the result must still be
  // correct and no worse in distinct variables than the unbiased one.
  ReductionOptions biased;
  biased.prefer_fewer_variables = true;
  ReductionOptions unbiased;
  unbiased.prefer_fewer_variables = false;
  const std::vector<uint64_t> onset = {0, 1, 2, 5, 6, 7};
  const Cover a = ReduceRetrievalFunction(onset, {}, 3, biased);
  const Cover b = ReduceRetrievalFunction(onset, {}, 3, unbiased);
  EXPECT_TRUE(CoversEquivalent(a, b, 3));
}

}  // namespace
}  // namespace ebi
