#include "obs/telemetry.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ebi {
namespace obs {
namespace {

// --- TraceSampler ----------------------------------------------------------

TEST(TraceSamplerTest, RateZeroNeverSamples) {
  TraceSampler sampler(0.0);
  for (uint64_t seq = 0; seq < 1000; ++seq) {
    EXPECT_FALSE(sampler.DecideFor(seq));
  }
}

TEST(TraceSamplerTest, RateOneAlwaysSamples) {
  TraceSampler sampler(1.0);
  for (uint64_t seq = 0; seq < 1000; ++seq) {
    EXPECT_TRUE(sampler.DecideFor(seq));
  }
}

TEST(TraceSamplerTest, RateClampsOutOfRange) {
  EXPECT_DOUBLE_EQ(TraceSampler(-0.5).rate(), 0.0);
  EXPECT_DOUBLE_EQ(TraceSampler(7.0).rate(), 1.0);
}

TEST(TraceSamplerTest, DecisionsAreDeterministic) {
  // Two samplers at the same rate agree on every sequence number — the
  // sampled set is a pure function of (rate, seq), reproducible across
  // processes and runs.
  TraceSampler a(0.25);
  TraceSampler b(0.25);
  for (uint64_t seq = 0; seq < 4096; ++seq) {
    EXPECT_EQ(a.DecideFor(seq), b.DecideFor(seq)) << seq;
  }
}

TEST(TraceSamplerTest, DecideDrawsSequentially) {
  TraceSampler stateful(0.5);
  TraceSampler pure(0.5);
  for (uint64_t seq = 0; seq < 256; ++seq) {
    EXPECT_EQ(stateful.Decide(), pure.DecideFor(seq)) << seq;
  }
}

TEST(TraceSamplerTest, SampledFractionTracksRate) {
  TraceSampler sampler(0.3);
  size_t sampled = 0;
  const size_t n = 20000;
  for (uint64_t seq = 0; seq < n; ++seq) {
    sampled += sampler.DecideFor(seq) ? 1 : 0;
  }
  const double fraction = static_cast<double>(sampled) / n;
  EXPECT_NEAR(fraction, 0.3, 0.02);
}

// --- TraceRing -------------------------------------------------------------

CapturedTrace MakeCapture(double elapsed_ms) {
  CapturedTrace capture;
  capture.elapsed_ms = elapsed_ms;
  capture.root.name = "query";
  capture.root.attrs.emplace_back("rows", AttrValue::Uint(7));
  return capture;
}

TEST(TraceRingTest, KeepsMostRecentCaptures) {
  TraceRing ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 10; ++i) {
    ring.Push(MakeCapture(static_cast<double>(i)));
  }
  EXPECT_EQ(ring.TotalCaptured(), 10u);
  const std::vector<CapturedTrace> captures = ring.Snapshot();
  ASSERT_EQ(captures.size(), 4u);
  // The four most recent pushes survive, oldest first.
  for (size_t i = 0; i < captures.size(); ++i) {
    EXPECT_EQ(captures[i].seq, 6 + i);
    EXPECT_DOUBLE_EQ(captures[i].elapsed_ms, static_cast<double>(6 + i));
    EXPECT_EQ(captures[i].root.name, "query");
  }
}

TEST(TraceRingTest, CapacityClampsToOne) {
  TraceRing ring(0);
  EXPECT_EQ(ring.capacity(), 1u);
  ring.Push(MakeCapture(1.0));
  ring.Push(MakeCapture(2.0));
  const std::vector<CapturedTrace> captures = ring.Snapshot();
  ASSERT_EQ(captures.size(), 1u);
  EXPECT_DOUBLE_EQ(captures[0].elapsed_ms, 2.0);
}

TEST(TraceRingTest, DumpJsonRendersSpanTrees) {
  TraceRing ring(2);
  ring.Push(MakeCapture(1.5));
  const std::string json = ring.DumpJson();
  EXPECT_NE(json.find("\"seq\":0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"elapsed_ms\":1.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"query\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"rows\":7"), std::string::npos) << json;
}

TEST(TraceRingTest, ConcurrentPushesNeverLoseOrTearCaptures) {
  // TSan target (scripts/repro.sh runs this suite under
  // -fsanitize=thread): concurrent writers claim distinct slots via the
  // atomic head and lock only their slot.
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 500;
  TraceRing ring(64);
  exec::ThreadPool pool(4);
  pool.ParallelFor(0, kThreads, [&](size_t t) {
    for (size_t i = 0; i < kPerThread; ++i) {
      ring.Push(MakeCapture(static_cast<double>(t)));
    }
  });
  EXPECT_EQ(ring.TotalCaptured(), kThreads * kPerThread);
  const std::vector<CapturedTrace> captures = ring.Snapshot();
  EXPECT_EQ(captures.size(), ring.capacity());
  for (size_t i = 0; i < captures.size(); ++i) {
    // Every surviving capture is whole: a moved-in root, not a torn mix.
    EXPECT_EQ(captures[i].root.name, "query");
    ASSERT_EQ(captures[i].root.attrs.size(), 1u);
    if (i > 0) {
      EXPECT_LT(captures[i - 1].seq, captures[i].seq);
    }
  }
}

// --- SlowQueryLog ----------------------------------------------------------

TEST(SlowQueryLogTest, ThresholdClassifies) {
  SlowQueryLog log(8, 100.0);
  EXPECT_FALSE(log.IsSlow(99.9));
  EXPECT_TRUE(log.IsSlow(100.0));
  EXPECT_TRUE(log.IsSlow(250.0));
}

TEST(SlowQueryLogTest, KeepsMostRecentEntriesAndDumps) {
  SlowQueryLog log(2, 50.0);
  for (int i = 0; i < 3; ++i) {
    SlowQueryEntry entry;
    entry.epoch = static_cast<uint64_t>(i);
    entry.query = "a = " + std::to_string(i);
    entry.total_ms = 60.0 + i;
    log.Push(std::move(entry));
  }
  EXPECT_EQ(log.TotalCaptured(), 3u);
  const std::vector<SlowQueryEntry> entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].query, "a = 1");
  EXPECT_EQ(entries[1].query, "a = 2");
  const std::string json = log.DumpJson();
  EXPECT_NE(json.find("\"query\":\"a = 2\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"total_ms\":62"), std::string::npos) << json;
  // No trace was attached, so no span tree rides along.
  EXPECT_EQ(json.find("\"trace\""), std::string::npos) << json;
}

// --- Exporter goldens ------------------------------------------------------

/// A private registry with one counter and one small histogram whose
/// rendering is fully deterministic.
void FillRegistry(MetricsRegistry* registry) {
  registry->GetCounter("test.requests")->Increment(3);
  Histogram* latency =
      registry->GetHistogram("test.latency_ms", {1.0, 2.0, 5.0});
  latency->Observe(0.5);
  latency->Observe(1.5);
  latency->Observe(10.0);
}

TEST(MetricsExportTest, PrometheusGolden) {
  MetricsRegistry registry;
  FillRegistry(&registry);
  const std::string expected =
      "# TYPE test_requests counter\n"
      "test_requests 3\n"
      "# TYPE test_latency_ms histogram\n"
      "test_latency_ms_bucket{le=\"1\"} 1\n"
      "test_latency_ms_bucket{le=\"2\"} 2\n"
      "test_latency_ms_bucket{le=\"5\"} 2\n"
      "test_latency_ms_bucket{le=\"+Inf\"} 3\n"
      "test_latency_ms_sum 12\n"
      "test_latency_ms_count 3\n";
  EXPECT_EQ(registry.RenderPrometheus(), expected);
}

TEST(MetricsExportTest, JsonGolden) {
  MetricsRegistry registry;
  FillRegistry(&registry);
  const std::string expected =
      "{\"counters\":{\"test.requests\":3},"
      "\"histograms\":{\"test.latency_ms\":{"
      "\"count\":3,\"sum\":12,\"mean\":4,"
      "\"p50\":1.5,\"p99\":5,\"p999\":5,"
      "\"bounds\":[1,2,5],\"buckets\":[1,1,0,1]}}}";
  EXPECT_EQ(registry.RenderJson(), expected);
}

TEST(MetricsExportTest, QuantileInterpolatesWithinBucket) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("test.q", {10.0, 20.0});
  // 10 observations in (10, 20]: quantiles interpolate linearly inside
  // the bucket.
  for (int i = 0; i < 10; ++i) {
    histogram->Observe(15.0);
  }
  EXPECT_DOUBLE_EQ(histogram->Quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(histogram->Quantile(0.5), 15.0);
  EXPECT_DOUBLE_EQ(histogram->Quantile(1.0), 20.0);
  // Overflow values report the last finite bound.
  histogram->Observe(1000.0);
  EXPECT_DOUBLE_EQ(histogram->Quantile(1.0), 20.0);
}

TEST(MetricsExportTest, EmptyHistogramQuantileIsZero) {
  MetricsRegistry registry;
  EXPECT_DOUBLE_EQ(registry.GetHistogram("test.empty")->Quantile(0.5), 0.0);
}

TEST(MetricsExportTest, PrometheusMetricNamesAreMangled) {
  MetricsRegistry registry;
  registry.GetCounter("test.with-dash.and.dots")->Increment();
  const std::string out = registry.RenderPrometheus();
  EXPECT_NE(out.find("test_with_dash_and_dots 1"), std::string::npos) << out;
}

// --- SpanJson --------------------------------------------------------------

TEST(SpanJsonTest, RendersNestedSpansWithTiming) {
  TraceSpan root;
  root.name = "serve.request";
  root.elapsed_ms = 2.0;
  TraceSpan child;
  child.name = "executor.select";
  child.elapsed_ms = 1.0;
  child.attrs.emplace_back("rows", AttrValue::Uint(42));
  root.children.push_back(std::move(child));
  const std::string expected =
      "{\"name\":\"serve.request\",\"elapsed_ms\":2,\"attrs\":{},"
      "\"children\":[{\"name\":\"executor.select\",\"elapsed_ms\":1,"
      "\"attrs\":{\"rows\":42},\"children\":[]}]}";
  EXPECT_EQ(SpanJson(root), expected);
}

}  // namespace
}  // namespace obs
}  // namespace ebi
