#include "index/encoded_bitmap_index.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/bit_util.h"

namespace ebi {
namespace {

using testing_util::IntTable;
using testing_util::RandomIntTable;
using testing_util::ScanEquals;
using testing_util::ScanRange;

class EncodedBitmapIndexTest : public ::testing::Test {
 protected:
  void Init(std::unique_ptr<Table> table,
            EncodedBitmapIndexOptions options = {}) {
    table_ = std::move(table);
    index_ = std::make_unique<EncodedBitmapIndex>(
        &table_->column(0), &table_->existence(), &io_, options);
    ASSERT_TRUE(index_->Build().ok());
  }

  IoAccountant io_;
  std::unique_ptr<Table> table_;
  std::unique_ptr<EncodedBitmapIndex> index_;
};

TEST_F(EncodedBitmapIndexTest, LogarithmicVectorCount) {
  // Section 2.2's headline: ceil(log2 m) vectors instead of m. With the
  // void codeword reserved, 3 values need ceil(log2 4) = 2 vectors.
  Init(IntTable({10, 20, 30, 10}));
  EXPECT_EQ(index_->NumVectors(), 2u);
  EXPECT_EQ(index_->Name(), "encoded-bitmap");
}

TEST_F(EncodedBitmapIndexTest, TwelveThousandProductsNeedFourteenVectors) {
  // The motivating example: 12000 products -> 14 bitmap vectors. (Scaled
  // here: the arithmetic is in the mapping width, not the data size.)
  EncodedBitmapIndexOptions options;
  options.reserve_void_zero = false;
  auto table = RandomIntTable(2000, 1500, 5);
  // Not all 1500 values necessarily occur; check against the actual
  // cardinality.
  table_ = std::move(table);
  index_ = std::make_unique<EncodedBitmapIndex>(
      &table_->column(0), &table_->existence(), &io_, options);
  ASSERT_TRUE(index_->Build().ok());
  EXPECT_EQ(index_->NumVectors(),
            static_cast<size_t>(Log2Ceil(table_->column(0).Cardinality())));
}

TEST_F(EncodedBitmapIndexTest, EqualsMatchesScan) {
  Init(IntTable({5, 7, 5, 9, 7, 5, 11}));
  for (int64_t v : {5, 7, 9, 11, 404}) {
    const auto result = index_->EvaluateEquals(Value::Int(v));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result, ScanEquals(*table_, table_->column(0), v)) << v;
  }
}

TEST_F(EncodedBitmapIndexTest, InListMatchesScan) {
  Init(IntTable({0, 1, 2, 3, 4, 5, 0, 2, 4}));
  const auto result = index_->EvaluateIn(
      {Value::Int(0), Value::Int(2), Value::Int(5)});
  ASSERT_TRUE(result.ok());
  BitVector expected = ScanEquals(*table_, table_->column(0), 0);
  expected.OrWith(ScanEquals(*table_, table_->column(0), 2));
  expected.OrWith(ScanEquals(*table_, table_->column(0), 5));
  EXPECT_EQ(*result, expected);
}

TEST_F(EncodedBitmapIndexTest, RangeMatchesScan) {
  Init(IntTable({9, 4, 6, 2, 8, 0, 3, 7, 5, 1}));
  for (const auto& [lo, hi] : std::vector<std::pair<int64_t, int64_t>>{
           {0, 9}, {2, 5}, {7, 7}, {8, 3}, {-5, 100}}) {
    const auto result = index_->EvaluateRange(lo, hi);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result, ScanRange(*table_, table_->column(0), lo, hi))
        << lo << ".." << hi;
  }
}

TEST_F(EncodedBitmapIndexTest, ReductionBoundsVectorReads) {
  // δ = m/2 on a sequential encoding reads at most ceil(log2 m) vectors —
  // the paper's step-function bound, vs δ for simple bitmaps.
  Init(IntTable({0, 1, 2, 3, 4, 5, 6, 7}));
  io_.Reset();
  const auto result = index_->EvaluateRange(0, 3);  // Codes 1..4 of 1..8.
  ASSERT_TRUE(result.ok());
  EXPECT_LE(io_.stats().vectors_read,
            static_cast<uint64_t>(index_->NumVectors()));
  EXPECT_EQ(result->Count(), 4u);
}

TEST_F(EncodedBitmapIndexTest, WholeDomainSelectionReadsNoSlices) {
  // All m = 3 values selected in a 2-bit space without void reservation:
  // the unused codeword is a don't-care, the expression is a tautology,
  // and no slice is read — only the existence bitmap.
  EncodedBitmapIndexOptions options;
  options.reserve_void_zero = false;
  Init(IntTable({1, 2, 3}), options);
  io_.Reset();
  const auto result =
      index_->EvaluateIn({Value::Int(1), Value::Int(2), Value::Int(3)});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(io_.stats().vectors_read, 1u);  // Existence only.
  EXPECT_EQ(result->Count(), 3u);
}

TEST_F(EncodedBitmapIndexTest, AblationRawMinTermsReadAllVectors) {
  EncodedBitmapIndexOptions options;
  options.reduction.enable_reduction = false;
  Init(IntTable({0, 1, 2, 3, 4, 5, 6, 7}), options);
  io_.Reset();
  const auto result = index_->EvaluateRange(0, 3);
  ASSERT_TRUE(result.ok());
  // Without reduction every min-term references every vector.
  EXPECT_EQ(io_.stats().vectors_read,
            static_cast<uint64_t>(index_->NumVectors()));
  EXPECT_EQ(result->Count(), 4u);
}

TEST_F(EncodedBitmapIndexTest, Theorem21NoExistenceReadWithVoidZero) {
  // With void = 0 reserved, selections need no existence AND: deleting a
  // row re-encodes it to 0, and no retrieval function covers 0.
  Init(IntTable({1, 2, 1, 2}));
  ASSERT_TRUE(table_->DeleteRow(0).ok());
  ASSERT_TRUE(index_->MarkDeleted(0).ok());
  io_.Reset();
  const auto result = index_->EvaluateEquals(Value::Int(1));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "0010");
  // Exactly the cover's vectors were read; existence (not a slice) was not
  // charged: with 2 slices the cover for a single value reads 2 vectors.
  EXPECT_LE(io_.stats().vectors_read, 2u);
}

TEST_F(EncodedBitmapIndexTest, NoVoidCodeFallsBackToExistenceAnd) {
  EncodedBitmapIndexOptions options;
  options.reserve_void_zero = false;
  Init(IntTable({1, 2, 1, 2}), options);
  ASSERT_TRUE(table_->DeleteRow(0).ok());
  ASSERT_TRUE(index_->MarkDeleted(0).ok());  // No-op without void code.
  io_.Reset();
  const auto result = index_->EvaluateEquals(Value::Int(1));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "0010");
  // One extra vector read: the existence bitmap (Theorem 2.1's point).
  EXPECT_GE(io_.stats().vectors_read, 2u);
}

TEST_F(EncodedBitmapIndexTest, NullsGetTheirOwnCodeword) {
  Init(IntTable({1, INT64_MIN, 2, INT64_MIN, 1}));
  ASSERT_TRUE(index_->mapping().null_code().has_value());
  const auto nulls = index_->EvaluateIsNull();
  ASSERT_TRUE(nulls.ok());
  EXPECT_EQ(nulls->ToString(), "01010");
  // NULL rows never satisfy value selections.
  const auto eq = index_->EvaluateEquals(Value::Int(1));
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ(eq->ToString(), "10001");
}

TEST_F(EncodedBitmapIndexTest, IsNullWithoutNullCodeFails) {
  Init(IntTable({1, 2}));
  EXPECT_EQ(index_->EvaluateIsNull().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(EncodedBitmapIndexTest, AppendKnownValueSetsKBits) {
  // Figure 2 intro: appending b writes its codeword, nothing else changes.
  Init(IntTable({1, 2, 3}));
  const size_t vectors_before = index_->NumVectors();
  ASSERT_TRUE(table_->AppendRow({Value::Int(2)}).ok());
  ASSERT_TRUE(index_->Append(3).ok());
  EXPECT_EQ(index_->NumVectors(), vectors_before);
  const auto result = index_->EvaluateEquals(Value::Int(2));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "0101");
}

TEST_F(EncodedBitmapIndexTest, DomainExpansionWithoutNewVector) {
  // Figure 2(a): domain {a,b,c} (+void) in 2 bits is full; use 3 values
  // without void so a free codeword remains.
  EncodedBitmapIndexOptions options;
  options.reserve_void_zero = false;
  Init(IntTable({10, 20, 30}), options);
  EXPECT_EQ(index_->NumVectors(), 2u);
  ASSERT_TRUE(table_->AppendRow({Value::Int(40)}).ok());
  ASSERT_TRUE(index_->Append(3).ok());
  EXPECT_EQ(index_->NumVectors(), 2u);  // Equation (1) held.
  const auto result = index_->EvaluateEquals(Value::Int(40));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "0001");
}

TEST_F(EncodedBitmapIndexTest, DomainExpansionAddsVector) {
  // Figure 2(b): the 5th value forces a new all-zero bitmap vector.
  EncodedBitmapIndexOptions options;
  options.reserve_void_zero = false;
  Init(IntTable({10, 20, 30, 40}), options);
  EXPECT_EQ(index_->NumVectors(), 2u);
  ASSERT_TRUE(table_->AppendRow({Value::Int(50)}).ok());
  ASSERT_TRUE(index_->Append(4).ok());
  EXPECT_EQ(index_->NumVectors(), 3u);
  // Old values must still be retrievable (functions revised by B2').
  for (int64_t v : {10, 20, 30, 40, 50}) {
    const auto result = index_->EvaluateEquals(Value::Int(v));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result, ScanEquals(*table_, table_->column(0), v)) << v;
  }
}

TEST_F(EncodedBitmapIndexTest, RepeatedExpansionStaysCorrect) {
  Init(IntTable({0}));
  for (int64_t v = 1; v < 40; ++v) {
    ASSERT_TRUE(table_->AppendRow({Value::Int(v)}).ok());
    ASSERT_TRUE(index_->Append(static_cast<size_t>(v)).ok());
  }
  EXPECT_EQ(index_->NumVectors(),
            static_cast<size_t>(Log2Ceil(41)));  // 40 values + void.
  for (int64_t v = 0; v < 40; v += 7) {
    const auto result = index_->EvaluateEquals(Value::Int(v));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result, ScanEquals(*table_, table_->column(0), v)) << v;
  }
}

TEST_F(EncodedBitmapIndexTest, CoverForInExposesReducedExpression) {
  Init(IntTable({0, 1, 2, 3, 4, 5, 6, 7}));
  const auto cover =
      index_->CoverForIn({Value::Int(0), Value::Int(1), Value::Int(2),
                          Value::Int(3)});
  ASSERT_TRUE(cover.ok());
  const auto cost = index_->AccessCostForIn(
      {Value::Int(0), Value::Int(1), Value::Int(2), Value::Int(3)});
  ASSERT_TRUE(cost.ok());
  EXPECT_EQ(DistinctVariables(*cover), *cost);
  EXPECT_LT(*cost, static_cast<int>(index_->NumVectors()) + 1);
}

TEST_F(EncodedBitmapIndexTest, CustomMappingIsUsed) {
  auto table = IntTable({7, 8, 9});
  auto mapping = MappingTable::Create(2, {0b01, 0b10, 0b11}, 0);
  ASSERT_TRUE(mapping.ok());
  table_ = std::move(table);
  index_ = std::make_unique<EncodedBitmapIndex>(
      &table_->column(0), &table_->existence(), &io_);
  ASSERT_TRUE(index_->SetMapping(std::move(mapping).value()).ok());
  ASSERT_TRUE(index_->Build().ok());
  EXPECT_EQ(*index_->mapping().CodeOf(0), 0b01u);
  const auto result = index_->EvaluateEquals(Value::Int(8));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "010");
}

TEST_F(EncodedBitmapIndexTest, CustomMappingTooSmallRejected) {
  auto table = IntTable({7, 8, 9});
  auto mapping = MappingTable::Create(2, {0b01}, 0);
  ASSERT_TRUE(mapping.ok());
  table_ = std::move(table);
  index_ = std::make_unique<EncodedBitmapIndex>(
      &table_->column(0), &table_->existence(), &io_);
  ASSERT_TRUE(index_->SetMapping(std::move(mapping).value()).ok());
  EXPECT_EQ(index_->Build().code(), StatusCode::kFailedPrecondition);
}

TEST_F(EncodedBitmapIndexTest, SparsityIsAboutOneHalf) {
  // Section 3.1: encoded bitmap sparsity ~ 1/2, independent of m.
  auto table = RandomIntTable(4000, 200, 6);
  table_ = std::move(table);
  EncodedBitmapIndexOptions options;
  options.reserve_void_zero = false;
  index_ = std::make_unique<EncodedBitmapIndex>(
      &table_->column(0), &table_->existence(), &io_, options);
  ASSERT_TRUE(index_->Build().ok());
  double total_density = 0.0;
  for (const BitVector& slice : index_->slices()) {
    total_density += 1.0 - slice.Sparsity();
  }
  const double avg = total_density / index_->slices().size();
  EXPECT_GT(avg, 0.35);
  EXPECT_LT(avg, 0.65);
}

TEST_F(EncodedBitmapIndexTest, RandomizedAgreementWithScan) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    auto table = RandomIntTable(300, 37, seed, /*null_fraction=*/0.1);
    IoAccountant io;
    EncodedBitmapIndex index(&table->column(0), &table->existence(), &io);
    ASSERT_TRUE(index.Build().ok());
    Rng rng(seed + 100);
    for (int q = 0; q < 10; ++q) {
      const int64_t lo = static_cast<int64_t>(rng.UniformInt(37));
      const int64_t hi = lo + static_cast<int64_t>(rng.UniformInt(10));
      const auto result = index.EvaluateRange(lo, hi);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(*result, ScanRange(*table, table->column(0), lo, hi))
          << "seed=" << seed << " range " << lo << ".." << hi;
    }
  }
}

TEST_F(EncodedBitmapIndexTest, GrayAndRandomStrategiesStayCorrect) {
  for (const EncodingStrategy strategy :
       {EncodingStrategy::kGray, EncodingStrategy::kRandom,
        EncodingStrategy::kSequential}) {
    EncodedBitmapIndexOptions options;
    options.strategy = strategy;
    auto table = RandomIntTable(200, 25, 11);
    IoAccountant io;
    EncodedBitmapIndex index(&table->column(0), &table->existence(), &io,
                             options);
    ASSERT_TRUE(index.Build().ok());
    for (int64_t v = 0; v < 25; v += 3) {
      const auto result = index.EvaluateEquals(Value::Int(v));
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(*result, ScanEquals(*table, table->column(0), v));
    }
  }
}

TEST_F(EncodedBitmapIndexTest, TrainedEncodingReducesPredicateCost) {
  // Train on the Figure 3 selections and verify they cost one vector.
  EncodedBitmapIndexOptions options;
  options.strategy = EncodingStrategy::kAnnealed;
  options.reserve_void_zero = false;
  options.training_predicates = {{0, 1, 2, 3}, {2, 3, 4, 5}};
  options.optimizer.iterations = 2500;
  Init(IntTable({0, 1, 2, 3, 4, 5, 6, 7}), options);
  const auto cost = index_->AccessCostForIn(
      {Value::Int(0), Value::Int(1), Value::Int(2), Value::Int(3)});
  ASSERT_TRUE(cost.ok());
  EXPECT_EQ(*cost, 1);
}

TEST_F(EncodedBitmapIndexTest, CompressedFormatsMatchPlainQueries) {
  auto table = RandomIntTable(800, 30, 11);
  IoAccountant io;
  EncodedBitmapIndex plain(&table->column(0), &table->existence(), &io);
  ASSERT_TRUE(plain.Build().ok());
  for (BitmapFormat format : {BitmapFormat::kRle, BitmapFormat::kEwah}) {
    EncodedBitmapIndexOptions options;
    options.format = format;
    EncodedBitmapIndex index(&table->column(0), &table->existence(), &io,
                             options);
    ASSERT_TRUE(index.Build().ok());
    EXPECT_EQ(index.Name(), std::string("encoded-bitmap") +
                                BitmapFormatSuffix(format));
    EXPECT_EQ(index.NumVectors(), plain.NumVectors());
    for (int64_t v : {0, 7, 15, 29}) {
      const auto a = plain.EvaluateEquals(Value::Int(v));
      const auto b = index.EvaluateEquals(Value::Int(v));
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(*a, *b) << BitmapFormatName(format) << " v=" << v;
    }
    const auto pr = plain.EvaluateRange(5, 20);
    const auto cr = index.EvaluateRange(5, 20);
    ASSERT_TRUE(pr.ok());
    ASSERT_TRUE(cr.ok());
    EXPECT_EQ(*pr, *cr) << BitmapFormatName(format);
  }
}

TEST_F(EncodedBitmapIndexTest, CompressedFormatMaintenanceStaysCorrect) {
  for (BitmapFormat format : {BitmapFormat::kRle, BitmapFormat::kEwah}) {
    EncodedBitmapIndexOptions options;
    options.format = format;
    Init(IntTable({1, 2, 3, 1}), options);
    // Append of a known value, then a domain expansion, then a delete.
    ASSERT_TRUE(table_->AppendRow({Value::Int(2)}).ok());
    ASSERT_TRUE(index_->Append(4).ok());
    ASSERT_TRUE(table_->AppendRow({Value::Int(9)}).ok());
    ASSERT_TRUE(index_->Append(5).ok());
    ASSERT_TRUE(table_->DeleteRow(0).ok());
    ASSERT_TRUE(index_->MarkDeleted(0).ok());
    const auto one = index_->EvaluateEquals(Value::Int(1));
    ASSERT_TRUE(one.ok());
    EXPECT_EQ(one->ToString(), "000100") << BitmapFormatName(format);
    const auto two = index_->EvaluateEquals(Value::Int(2));
    ASSERT_TRUE(two.ok());
    EXPECT_EQ(two->ToString(), "010010") << BitmapFormatName(format);
    const auto nine = index_->EvaluateEquals(Value::Int(9));
    ASSERT_TRUE(nine.ok());
    EXPECT_EQ(nine->ToString(), "000001") << BitmapFormatName(format);
  }
}

TEST_F(EncodedBitmapIndexTest, AppendBeforeBuildRejected) {
  auto table = IntTable({1});
  IoAccountant io;
  EncodedBitmapIndex index(&table->column(0), &table->existence(), &io);
  EXPECT_EQ(index.Append(0).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(index.EvaluateEquals(Value::Int(1)).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace ebi
