#include "index/persistence.h"

#include <gtest/gtest.h>

#include <sstream>

#include "test_util.h"
#include "util/random.h"

namespace ebi {
namespace {

using testing_util::IntTable;
using testing_util::RandomIntTable;
using testing_util::ScanEquals;

TEST(PersistenceTest, BitVectorRoundTrip) {
  BitVector bits(130);
  bits.Set(0);
  bits.Set(64);
  bits.Set(129);
  std::stringstream stream;
  ASSERT_TRUE(SaveBitVector(stream, bits).ok());
  const auto loaded = LoadBitVector(stream);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, bits);
}

TEST(PersistenceTest, EmptyBitVectorRoundTrip) {
  std::stringstream stream;
  ASSERT_TRUE(SaveBitVector(stream, BitVector()).ok());
  const auto loaded = LoadBitVector(stream);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0u);
}

TEST(PersistenceTest, BitVectorBadMagicRejected) {
  std::stringstream stream("garbage bytes here........");
  EXPECT_EQ(LoadBitVector(stream).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PersistenceTest, TruncatedStreamRejected) {
  BitVector bits(1000, true);
  std::stringstream stream;
  ASSERT_TRUE(SaveBitVector(stream, bits).ok());
  const std::string full = stream.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_EQ(LoadBitVector(cut).status().code(), StatusCode::kOutOfRange);
}

TEST(PersistenceTest, StoredBitmapRoundTripEveryFormat) {
  BitVector bits(300);
  for (size_t i = 0; i < 300; i += 7) {
    bits.Set(i);
  }
  bits.Set(299);
  for (const BitmapFormat format :
       {BitmapFormat::kPlain, BitmapFormat::kRle, BitmapFormat::kEwah}) {
    const StoredBitmap original = StoredBitmap::Make(bits, format);
    std::stringstream stream;
    ASSERT_TRUE(SaveStoredBitmap(stream, original).ok());
    const auto loaded = LoadStoredBitmap(stream);
    ASSERT_TRUE(loaded.ok()) << BitmapFormatName(format);
    EXPECT_EQ(loaded->format(), format);
    EXPECT_EQ(loaded->size(), original.size());
    EXPECT_EQ(loaded->SizeBytes(), original.SizeBytes())
        << "physical layout changed across the round trip";
    EXPECT_EQ(loaded->ToBitVector(), bits) << BitmapFormatName(format);
  }
}

TEST(PersistenceTest, EmptyStoredBitmapRoundTrip) {
  for (const BitmapFormat format :
       {BitmapFormat::kPlain, BitmapFormat::kRle, BitmapFormat::kEwah}) {
    const StoredBitmap original = StoredBitmap::Make(BitVector(), format);
    std::stringstream stream;
    ASSERT_TRUE(SaveStoredBitmap(stream, original).ok());
    const auto loaded = LoadStoredBitmap(stream);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded->size(), 0u);
  }
}

TEST(PersistenceTest, StoredBitmapBadMagicRejected) {
  std::stringstream stream("not a stored bitmap, honest......");
  EXPECT_EQ(LoadStoredBitmap(stream).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PersistenceTest, StoredBitmapUnknownTagRejected) {
  // A valid magic followed by a format tag the reader does not know.
  std::stringstream good;
  ASSERT_TRUE(
      SaveStoredBitmap(good, StoredBitmap::Make(BitVector(8), BitmapFormat::kPlain))
          .ok());
  std::string bytes = good.str();
  bytes[4] = 42;  // Overwrite the little-endian format tag.
  std::stringstream bad(bytes);
  EXPECT_EQ(LoadStoredBitmap(bad).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PersistenceTest, StoredBitmapTruncationRejected) {
  BitVector bits(2048);
  for (size_t i = 0; i < 2048; i += 3) {
    bits.Set(i);
  }
  for (const BitmapFormat format :
       {BitmapFormat::kPlain, BitmapFormat::kRle, BitmapFormat::kEwah}) {
    std::stringstream stream;
    ASSERT_TRUE(
        SaveStoredBitmap(stream, StoredBitmap::Make(bits, format)).ok());
    const std::string full = stream.str();
    std::stringstream cut(full.substr(0, full.size() - 5));
    EXPECT_EQ(LoadStoredBitmap(cut).status().code(),
              StatusCode::kOutOfRange)
        << BitmapFormatName(format);
  }
}

TEST(PersistenceTest, StoredBitmapTruncationFuzzEveryFormat) {
  // Randomized truncation sweep: a stored bitmap cut at *any* byte
  // boundary must come back as a descriptive Status — never a crash, an
  // over-allocation on a garbage length, or a silently short bitmap.
  Rng rng(20260809);
  BitVector bits(5000);
  for (size_t i = 0; i < 5000; ++i) {
    if (rng.Bernoulli(0.3)) {
      bits.Set(i);
    }
  }
  for (const BitmapFormat format :
       {BitmapFormat::kPlain, BitmapFormat::kRle, BitmapFormat::kEwah}) {
    std::stringstream stream;
    ASSERT_TRUE(
        SaveStoredBitmap(stream, StoredBitmap::Make(bits, format)).ok());
    const std::string full = stream.str();
    for (int trial = 0; trial < 150; ++trial) {
      const size_t cut = rng.UniformInt(full.size());  // Strict prefix.
      std::stringstream truncated(full.substr(0, cut));
      const auto loaded = LoadStoredBitmap(truncated);
      EXPECT_FALSE(loaded.ok())
          << BitmapFormatName(format) << " decoded a " << cut
          << "-byte prefix of " << full.size();
      EXPECT_FALSE(loaded.status().message().empty());
    }
    // Byte-flip sweep: corrupted streams must never crash; they either
    // fail loudly or (e.g. a flipped payload bit) decode to some bitmap.
    for (int trial = 0; trial < 150; ++trial) {
      std::string mutated = full;
      mutated[rng.UniformInt(mutated.size())] =
          static_cast<char>(rng.Next());
      std::stringstream garbled(mutated);
      const auto loaded = LoadStoredBitmap(garbled);
      (void)loaded;
    }
  }
}

TEST(PersistenceTest, StoredBitmapRleRunSumMismatchRejected) {
  // Runs summing to a different total than the declared size must be
  // rejected rather than silently re-normalized.
  const StoredBitmap original = StoredBitmap::Make(
      BitVector::FromString("0011100"), BitmapFormat::kRle);
  std::stringstream stream;
  ASSERT_TRUE(SaveStoredBitmap(stream, original).ok());
  std::string bytes = stream.str();
  bytes[8] = static_cast<char>(bytes[8] + 1);  // Bump the declared size.
  std::stringstream bad(bytes);
  EXPECT_EQ(LoadStoredBitmap(bad).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PersistenceTest, StoredBitmapCorruptEwahWordsRejected) {
  BitVector bits(512);
  for (size_t i = 0; i < 512; i += 2) {
    bits.Set(i);
  }
  const StoredBitmap original =
      StoredBitmap::Make(bits, BitmapFormat::kEwah);
  std::stringstream stream;
  ASSERT_TRUE(SaveStoredBitmap(stream, original).ok());
  std::string bytes = stream.str();
  // Smash the first marker word (right after magic, tag, size, count).
  for (size_t i = 24; i < 32 && i < bytes.size(); ++i) {
    bytes[i] = static_cast<char>(0xFF);
  }
  std::stringstream bad(bytes);
  EXPECT_FALSE(LoadStoredBitmap(bad).ok());
}

TEST(PersistenceTest, StoredBitmapsShareStreamWithOtherSections) {
  std::stringstream stream;
  const BitVector plain = BitVector::FromString("1010");
  const StoredBitmap rle =
      StoredBitmap::Make(BitVector::FromString("000111"), BitmapFormat::kRle);
  ASSERT_TRUE(SaveBitVector(stream, plain).ok());
  ASSERT_TRUE(SaveStoredBitmap(stream, rle).ok());
  const auto first = LoadBitVector(stream);
  const auto second = LoadStoredBitmap(stream);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, plain);
  EXPECT_EQ(second->ToBitVector(), BitVector::FromString("000111"));
}

TEST(PersistenceTest, MappingTableRoundTrip) {
  const auto mapping =
      MappingTable::Create(3, {0b001, 0b010, 0b100}, 0, 0b111);
  ASSERT_TRUE(mapping.ok());
  std::stringstream stream;
  ASSERT_TRUE(SaveMappingTable(stream, *mapping).ok());
  const auto loaded = LoadMappingTable(stream);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->width(), 3);
  EXPECT_EQ(loaded->void_code(), std::optional<uint64_t>(0));
  EXPECT_EQ(loaded->null_code(), std::optional<uint64_t>(0b111));
  for (ValueId v = 0; v < 3; ++v) {
    EXPECT_EQ(*loaded->CodeOf(v), *mapping->CodeOf(v));
  }
}

TEST(PersistenceTest, MappingTableWithoutReservedCodes) {
  const auto mapping = MappingTable::Create(2, {0, 1, 2, 3});
  ASSERT_TRUE(mapping.ok());
  std::stringstream stream;
  ASSERT_TRUE(SaveMappingTable(stream, *mapping).ok());
  const auto loaded = LoadMappingTable(stream);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded->void_code().has_value());
  EXPECT_FALSE(loaded->null_code().has_value());
}

TEST(PersistenceTest, EncodedIndexRoundTripAnswersIdentically) {
  auto table = RandomIntTable(500, 40, 21, /*null_fraction=*/0.1);
  IoAccountant io;
  EncodedBitmapIndex original(&table->column(0), &table->existence(), &io);
  ASSERT_TRUE(original.Build().ok());

  std::stringstream stream;
  ASSERT_TRUE(SaveEncodedBitmapIndex(stream, original).ok());
  const auto loaded = LoadEncodedBitmapIndex(
      stream, &table->column(0), &table->existence(), &io);
  ASSERT_TRUE(loaded.ok());

  EXPECT_EQ((*loaded)->NumVectors(), original.NumVectors());
  for (int64_t v = 0; v < 40; v += 3) {
    const auto a = original.EvaluateEquals(Value::Int(v));
    const auto b = (*loaded)->EvaluateEquals(Value::Int(v));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b) << v;
  }
  const auto nulls = (*loaded)->EvaluateIsNull();
  ASSERT_TRUE(nulls.ok());
  EXPECT_EQ(*nulls, *original.EvaluateIsNull());
}

TEST(PersistenceTest, LoadedIndexSupportsAppends) {
  auto table = IntTable({1, 2, 3});
  IoAccountant io;
  EncodedBitmapIndex original(&table->column(0), &table->existence(), &io);
  ASSERT_TRUE(original.Build().ok());
  std::stringstream stream;
  ASSERT_TRUE(SaveEncodedBitmapIndex(stream, original).ok());
  const auto loaded = LoadEncodedBitmapIndex(
      stream, &table->column(0), &table->existence(), &io);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(table->AppendRow({Value::Int(9)}).ok());
  ASSERT_TRUE((*loaded)->Append(3).ok());
  const auto rows = (*loaded)->EvaluateEquals(Value::Int(9));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->ToString(), "0001");
}

TEST(PersistenceTest, LoadAgainstWrongColumnRejected) {
  auto table = IntTable({1, 2, 3});
  IoAccountant io;
  EncodedBitmapIndex original(&table->column(0), &table->existence(), &io);
  ASSERT_TRUE(original.Build().ok());
  std::stringstream stream;
  ASSERT_TRUE(SaveEncodedBitmapIndex(stream, original).ok());

  // A column with more rows than the saved slices cover.
  auto other = IntTable({1, 2, 3, 4, 5});
  EXPECT_FALSE(LoadEncodedBitmapIndex(stream, &other->column(0),
                                      &other->existence(), &io)
                   .ok());
}

TEST(PersistenceTest, MultipleObjectsInOneStream) {
  std::stringstream stream;
  const BitVector a = BitVector::FromString("101");
  const BitVector b = BitVector::FromString("0110");
  ASSERT_TRUE(SaveBitVector(stream, a).ok());
  ASSERT_TRUE(SaveBitVector(stream, b).ok());
  const auto la = LoadBitVector(stream);
  const auto lb = LoadBitVector(stream);
  ASSERT_TRUE(la.ok());
  ASSERT_TRUE(lb.ok());
  EXPECT_EQ(*la, a);
  EXPECT_EQ(*lb, b);
}

}  // namespace
}  // namespace ebi
