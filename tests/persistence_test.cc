#include "index/persistence.h"

#include <gtest/gtest.h>

#include <sstream>

#include "test_util.h"

namespace ebi {
namespace {

using testing_util::IntTable;
using testing_util::RandomIntTable;
using testing_util::ScanEquals;

TEST(PersistenceTest, BitVectorRoundTrip) {
  BitVector bits(130);
  bits.Set(0);
  bits.Set(64);
  bits.Set(129);
  std::stringstream stream;
  ASSERT_TRUE(SaveBitVector(stream, bits).ok());
  const auto loaded = LoadBitVector(stream);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, bits);
}

TEST(PersistenceTest, EmptyBitVectorRoundTrip) {
  std::stringstream stream;
  ASSERT_TRUE(SaveBitVector(stream, BitVector()).ok());
  const auto loaded = LoadBitVector(stream);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0u);
}

TEST(PersistenceTest, BitVectorBadMagicRejected) {
  std::stringstream stream("garbage bytes here........");
  EXPECT_EQ(LoadBitVector(stream).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PersistenceTest, TruncatedStreamRejected) {
  BitVector bits(1000, true);
  std::stringstream stream;
  ASSERT_TRUE(SaveBitVector(stream, bits).ok());
  const std::string full = stream.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_EQ(LoadBitVector(cut).status().code(), StatusCode::kOutOfRange);
}

TEST(PersistenceTest, MappingTableRoundTrip) {
  const auto mapping =
      MappingTable::Create(3, {0b001, 0b010, 0b100}, 0, 0b111);
  ASSERT_TRUE(mapping.ok());
  std::stringstream stream;
  ASSERT_TRUE(SaveMappingTable(stream, *mapping).ok());
  const auto loaded = LoadMappingTable(stream);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->width(), 3);
  EXPECT_EQ(loaded->void_code(), std::optional<uint64_t>(0));
  EXPECT_EQ(loaded->null_code(), std::optional<uint64_t>(0b111));
  for (ValueId v = 0; v < 3; ++v) {
    EXPECT_EQ(*loaded->CodeOf(v), *mapping->CodeOf(v));
  }
}

TEST(PersistenceTest, MappingTableWithoutReservedCodes) {
  const auto mapping = MappingTable::Create(2, {0, 1, 2, 3});
  ASSERT_TRUE(mapping.ok());
  std::stringstream stream;
  ASSERT_TRUE(SaveMappingTable(stream, *mapping).ok());
  const auto loaded = LoadMappingTable(stream);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded->void_code().has_value());
  EXPECT_FALSE(loaded->null_code().has_value());
}

TEST(PersistenceTest, EncodedIndexRoundTripAnswersIdentically) {
  auto table = RandomIntTable(500, 40, 21, /*null_fraction=*/0.1);
  IoAccountant io;
  EncodedBitmapIndex original(&table->column(0), &table->existence(), &io);
  ASSERT_TRUE(original.Build().ok());

  std::stringstream stream;
  ASSERT_TRUE(SaveEncodedBitmapIndex(stream, original).ok());
  const auto loaded = LoadEncodedBitmapIndex(
      stream, &table->column(0), &table->existence(), &io);
  ASSERT_TRUE(loaded.ok());

  EXPECT_EQ((*loaded)->NumVectors(), original.NumVectors());
  for (int64_t v = 0; v < 40; v += 3) {
    const auto a = original.EvaluateEquals(Value::Int(v));
    const auto b = (*loaded)->EvaluateEquals(Value::Int(v));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b) << v;
  }
  const auto nulls = (*loaded)->EvaluateIsNull();
  ASSERT_TRUE(nulls.ok());
  EXPECT_EQ(*nulls, *original.EvaluateIsNull());
}

TEST(PersistenceTest, LoadedIndexSupportsAppends) {
  auto table = IntTable({1, 2, 3});
  IoAccountant io;
  EncodedBitmapIndex original(&table->column(0), &table->existence(), &io);
  ASSERT_TRUE(original.Build().ok());
  std::stringstream stream;
  ASSERT_TRUE(SaveEncodedBitmapIndex(stream, original).ok());
  const auto loaded = LoadEncodedBitmapIndex(
      stream, &table->column(0), &table->existence(), &io);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(table->AppendRow({Value::Int(9)}).ok());
  ASSERT_TRUE((*loaded)->Append(3).ok());
  const auto rows = (*loaded)->EvaluateEquals(Value::Int(9));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->ToString(), "0001");
}

TEST(PersistenceTest, LoadAgainstWrongColumnRejected) {
  auto table = IntTable({1, 2, 3});
  IoAccountant io;
  EncodedBitmapIndex original(&table->column(0), &table->existence(), &io);
  ASSERT_TRUE(original.Build().ok());
  std::stringstream stream;
  ASSERT_TRUE(SaveEncodedBitmapIndex(stream, original).ok());

  // A column with more rows than the saved slices cover.
  auto other = IntTable({1, 2, 3, 4, 5});
  EXPECT_FALSE(LoadEncodedBitmapIndex(stream, &other->column(0),
                                      &other->existence(), &io)
                   .ok());
}

TEST(PersistenceTest, MultipleObjectsInOneStream) {
  std::stringstream stream;
  const BitVector a = BitVector::FromString("101");
  const BitVector b = BitVector::FromString("0110");
  ASSERT_TRUE(SaveBitVector(stream, a).ok());
  ASSERT_TRUE(SaveBitVector(stream, b).ok());
  const auto la = LoadBitVector(stream);
  const auto lb = LoadBitVector(stream);
  ASSERT_TRUE(la.ok());
  ASSERT_TRUE(lb.ok());
  EXPECT_EQ(*la, a);
  EXPECT_EQ(*lb, b);
}

}  // namespace
}  // namespace ebi
