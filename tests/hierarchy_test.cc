#include "encoding/hierarchy.h"

#include <gtest/gtest.h>

#include "encoding/well_defined.h"

namespace ebi {
namespace {

/// Figure 5(a): 12 branches (ValueIds 0-11 for branches 1-12), companies
/// a-e and alliances X, Y, Z with m:N memberships.
Hierarchy Figure5Hierarchy() {
  Hierarchy h(12);
  HierarchyLevel company{"company",
                         {{"a", {0, 1, 2, 3}},
                          {"b", {4, 5}},
                          {"c", {6, 7}},
                          {"d", {2, 3, 8, 9}},
                          {"e", {8, 9, 10, 11}}}};
  HierarchyLevel alliance{"alliance",
                          {{"X", {0, 1, 2, 3, 4, 5, 6, 7}},
                           {"Y", {6, 7, 2, 3, 8, 9}},
                           {"Z", {2, 3, 8, 9, 10, 11}}}};
  EXPECT_TRUE(h.AddLevel(std::move(company)).ok());
  EXPECT_TRUE(h.AddLevel(std::move(alliance)).ok());
  return h;
}

/// Figure 5(b)'s hand-crafted hierarchy encoding for branches 1-12.
MappingTable Figure5Mapping() {
  const std::vector<uint64_t> codes = {
      0b0000, 0b0001, 0b0100, 0b0101,  // branches 1-4.
      0b0010, 0b0011,                  // branches 5-6.
      0b0110, 0b0111,                  // branches 7-8.
      0b1100, 0b1101,                  // branches 9-10.
      0b1111, 0b1110,                  // branches 11-12.
  };
  auto result = MappingTable::Create(4, codes);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(HierarchyTest, MembersLookup) {
  const Hierarchy h = Figure5Hierarchy();
  const auto members = h.Members("company", "b");
  ASSERT_TRUE(members.ok());
  EXPECT_EQ(*members, (std::vector<ValueId>{4, 5}));
}

TEST(HierarchyTest, MembersLookupFailures) {
  const Hierarchy h = Figure5Hierarchy();
  EXPECT_EQ(h.Members("company", "zz").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(h.Members("nope", "a").status().code(), StatusCode::kNotFound);
}

TEST(HierarchyTest, RejectsOutOfRangeMembers) {
  Hierarchy h(4);
  HierarchyLevel level{"l", {{"g", {0, 9}}}};
  EXPECT_EQ(h.AddLevel(std::move(level)).code(), StatusCode::kOutOfRange);
}

TEST(HierarchyTest, RejectsEmptyGroups) {
  Hierarchy h(4);
  HierarchyLevel level{"l", {{"g", {}}}};
  EXPECT_EQ(h.AddLevel(std::move(level)).code(),
            StatusCode::kInvalidArgument);
}

TEST(HierarchyTest, RejectsDuplicateLevels) {
  Hierarchy h(4);
  EXPECT_TRUE(h.AddLevel({"l", {{"g", {0}}}}).ok());
  EXPECT_EQ(h.AddLevel({"l", {{"g2", {1}}}}).code(),
            StatusCode::kAlreadyExists);
}

TEST(HierarchyTest, AllGroupPredicatesCollectsEveryGroup) {
  const Hierarchy h = Figure5Hierarchy();
  EXPECT_EQ(h.AllGroupPredicates().size(), 8u);  // 5 companies + 3 alliances.
}

TEST(HierarchyTest, PaperMappingGivesAllianceXCostOne) {
  // Section 2.3: "for selection alliance = X, only one bit vector is
  // accessed" under Figure 5(b)'s encoding.
  const MappingTable mapping = Figure5Mapping();
  const Hierarchy h = Figure5Hierarchy();
  const auto members = h.Members("alliance", "X");
  ASSERT_TRUE(members.ok());
  const auto cost = AccessCost(mapping, *members);
  ASSERT_TRUE(cost.ok());
  EXPECT_EQ(*cost, 1);
}

TEST(HierarchyTest, PaperMappingCostsAcrossAllGroups) {
  // Every company/alliance selection under Figure 5(b) should need far
  // fewer than the worst case of 4 vectors; alliance Z = {3,4,9,10,11,12}
  // (ids 2,3,8,9,10,11) -> codes 01xx? no: {0100,0101,1100,1101,1111,1110}
  // = x10x + 111x... <= 3.
  const MappingTable mapping = Figure5Mapping();
  const Hierarchy h = Figure5Hierarchy();
  for (const auto& pred : h.AllGroupPredicates()) {
    const auto cost = AccessCost(mapping, pred);
    ASSERT_TRUE(cost.ok());
    EXPECT_LE(*cost, 3);
    EXPECT_GE(*cost, 1);
  }
}

TEST(HierarchyTest, EncodeHierarchyBeatsSequentialOnGroupSelections) {
  const Hierarchy h = Figure5Hierarchy();
  OptimizerOptions options;
  options.iterations = 1500;
  options.seed = 3;
  const auto optimized = EncodeHierarchy(h, options);
  ASSERT_TRUE(optimized.ok());

  const auto sequential = MakeSequentialMapping(12);
  ASSERT_TRUE(sequential.ok());

  const auto opt_cost = TotalAccessCost(*optimized, h.AllGroupPredicates());
  const auto seq_cost = TotalAccessCost(*sequential, h.AllGroupPredicates());
  ASSERT_TRUE(opt_cost.ok());
  ASSERT_TRUE(seq_cost.ok());
  EXPECT_LE(*opt_cost, *seq_cost);

  // And it should be within striking distance of the paper's hand-crafted
  // mapping.
  const auto paper_cost =
      TotalAccessCost(Figure5Mapping(), h.AllGroupPredicates());
  ASSERT_TRUE(paper_cost.ok());
  EXPECT_LE(*opt_cost, *paper_cost + 3);
}

}  // namespace
}  // namespace ebi
