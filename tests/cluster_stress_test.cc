#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/auditor.h"
#include "exec/thread_pool.h"
#include "serve/cluster/cluster_service.h"
#include "storage/table.h"

namespace ebi {
namespace serve {
namespace cluster {
namespace {

std::unique_ptr<Table> SeedTable(size_t rows) {
  auto table = std::make_unique<Table>("cluster_stress");
  EXPECT_TRUE(table->AddColumn("k", Column::Type::kInt64).ok());
  EXPECT_TRUE(table->AddColumn("v", Column::Type::kInt64).ok());
  for (size_t i = 0; i < rows; ++i) {
    EXPECT_TRUE(table->AppendRow({Value::Int(static_cast<int64_t>(i % 64)),
                                  Value::Int(static_cast<int64_t>(i % 4))})
                    .ok());
  }
  return table;
}

/// Concurrent cluster queries + appends + hedges, then a drain — the
/// TSan leg of the cluster suite (wired into ci.yml's sanitize job and
/// scripts/repro.sh). Hedging is forced eager (zero delay) and the
/// replica pool is tiny so primary/replica races actually happen; the
/// invariants checked are coarse on purpose: every successful selection
/// is internally consistent (count == set bits, result sized to its
/// placement) and the final placement tiles exactly. Data-race freedom
/// is TSan's half of the bargain.
TEST(ClusterStressTest, ConcurrentQueriesAppendsHedgesAndDrain) {
  constexpr size_t kSeedRows = 128;
  constexpr size_t kReaders = 3;
  constexpr size_t kQueriesPerReader = 30;
  constexpr size_t kAppendBatches = 20;
  constexpr size_t kRowsPerBatch = 4;

  ClusterOptions options;
  options.shards = 2;
  options.partition = PartitionKind::kRange;
  options.split_points = {31};
  options.key_column = "k";
  options.shard_options.worker_threads = 2;
  options.shard_options.queue_depth = 8;  // Small: sheds happen.
  options.replicate = true;
  options.replica_options.worker_threads = 1;
  options.replica_options.queue_depth = 8;
  options.hedge = true;
  options.hedge_min_delay_ms = 0.0;
  options.hedge_max_delay_ms = 0.0;  // Hedge every slow primary.
  options.partial_policy = PartialResultPolicy::kPartial;

  ClusterQueryService clustered(options);
  ASSERT_TRUE(clustered
                  .Start(SeedTable(kSeedRows),
                         {{"k", IndexKind::kEncodedBitmap},
                          {"v", IndexKind::kEncodedBitmap}})
                  .ok());

  std::atomic<bool> append_failed{false};
  std::atomic<bool> query_failed{false};
  std::atomic<size_t> completed_queries{0};

  {
    exec::ThreadPool drivers(kReaders + 1);
    drivers.Submit([&]() {
      for (size_t b = 0; b < kAppendBatches; ++b) {
        std::vector<std::vector<Value>> rows;
        for (size_t r = 0; r < kRowsPerBatch; ++r) {
          const auto key = static_cast<int64_t>((b * kRowsPerBatch + r) % 64);
          rows.push_back({Value::Int(key),
                          Value::Int(static_cast<int64_t>(b % 4))});
        }
        if (!clustered.Append(rows).ok()) {
          append_failed.store(true);
          return;
        }
      }
    });
    for (size_t reader = 0; reader < kReaders; ++reader) {
      drivers.Submit([&, reader]() {
        for (size_t q = 0; q < kQueriesPerReader; ++q) {
          std::vector<Predicate> predicates;
          switch ((reader + q) % 3) {
            case 0:
              predicates = {Predicate::Between("k", 0, 31)};
              break;
            case 1:
              predicates = {Predicate::Eq("v", Value::Int(
                                static_cast<int64_t>(q % 4)))};
              break;
            default:
              predicates = {Predicate::Between("k", 16, 47),
                            Predicate::Eq("v", Value::Int(1))};
              break;
          }
          auto result = clustered.Select(predicates);
          if (!result.ok()) {
            // Under load, shed/deadline outcomes are legal; hard errors
            // are not.
            if (result.status().code() != StatusCode::kOverloaded &&
                result.status().code() != StatusCode::kDeadlineExceeded) {
              query_failed.store(true);
            }
            continue;
          }
          completed_queries.fetch_add(1);
          if (result->selection.rows.Count() != result->selection.count ||
              result->selection.rows.size() != result->total_rows ||
              result->coverage.size() != result->total_rows) {
            query_failed.store(true);
            return;
          }
        }
      });
    }
    // Pool destructor joins: every driver finished when we exit scope.
  }

  EXPECT_FALSE(append_failed.load());
  EXPECT_FALSE(query_failed.load());
  EXPECT_GT(completed_queries.load(), 0u);

  // Drain while nothing is in flight anymore, then verify the placement
  // still tiles exactly and epochs advanced.
  EXPECT_TRUE(clustered.Shutdown().ok());
  EXPECT_EQ(clustered.AppendEpoch(), kAppendBatches);
  auto placement = clustered.router().placement();
  EXPECT_EQ(placement->total_rows,
            kSeedRows + kAppendBatches * kRowsPerBatch);
  AuditReport report = InvariantAuditor::AuditClusterPartition(
      placement->shard_rows, placement->total_rows);
  EXPECT_TRUE(report.clean()) << report.ToString();
}

/// Queries racing a drain must either complete or be rejected cleanly —
/// never crash, never return a malformed result.
TEST(ClusterStressTest, QueriesRacingShutdownFailCleanly) {
  ClusterOptions options;
  options.shards = 2;
  options.key_column = "k";
  options.shard_options.worker_threads = 1;
  ClusterQueryService clustered(options);
  ASSERT_TRUE(clustered
                  .Start(SeedTable(64),
                         {{"k", IndexKind::kEncodedBitmap},
                          {"v", IndexKind::kEncodedBitmap}})
                  .ok());

  std::atomic<bool> malformed{false};
  {
    exec::ThreadPool drivers(2);
    drivers.Submit([&]() {
      for (size_t q = 0; q < 50; ++q) {
        auto result = clustered.Select({Predicate::Between("k", 0, 63)});
        if (result.ok() &&
            result->selection.rows.Count() != result->selection.count) {
          malformed.store(true);
          return;
        }
      }
    });
    drivers.Submit([&]() { clustered.Shutdown().IgnoreError(); });
  }
  EXPECT_FALSE(malformed.load());
}

}  // namespace
}  // namespace cluster
}  // namespace serve
}  // namespace ebi
