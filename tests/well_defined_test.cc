#include "encoding/well_defined.h"

#include <gtest/gtest.h>

namespace ebi {
namespace {

/// Figure 3(a)'s mapping: a=000, c=001, g=010, e=011, b=100, d=101,
/// h=110, f=111 — ValueIds a..h are 0..7.
MappingTable Figure3A() {
  const std::vector<uint64_t> codes = {
      0b000,  // a
      0b100,  // b
      0b001,  // c
      0b101,  // d
      0b011,  // e
      0b111,  // f
      0b010,  // g
      0b110,  // h
  };
  auto result = MappingTable::Create(3, codes);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

/// Figure 3(b)'s improper mapping: a=000, c=001, g=010, b=011, e=100,
/// d=101, h=110, f=111.
MappingTable Figure3B() {
  const std::vector<uint64_t> codes = {
      0b000,  // a
      0b011,  // b
      0b001,  // c
      0b101,  // d
      0b100,  // e
      0b111,  // f
      0b010,  // g
      0b110,  // h
  };
  auto result = MappingTable::Create(3, codes);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

constexpr ValueId kA = 0, kB = 1, kC = 2, kD = 3, kE = 4, kF = 5;

TEST(WellDefinedTest, Figure3AIsWellDefinedForBothSelections) {
  const MappingTable mapping = Figure3A();
  const auto abcd = IsWellDefined(mapping, {kA, kB, kC, kD}, 8);
  ASSERT_TRUE(abcd.ok());
  EXPECT_TRUE(*abcd);
  const auto cdef = IsWellDefined(mapping, {kC, kD, kE, kF}, 8);
  ASSERT_TRUE(cdef.ok());
  EXPECT_TRUE(*cdef);
}

TEST(WellDefinedTest, Figure3BIsNotWellDefined) {
  const MappingTable mapping = Figure3B();
  const auto abcd = IsWellDefined(mapping, {kA, kB, kC, kD}, 8);
  ASSERT_TRUE(abcd.ok());
  EXPECT_FALSE(*abcd);
}

TEST(WellDefinedTest, AccessCostMatchesTheorem22OnFigure3) {
  // Well-defined -> 1 vector; improper -> 3 vectors (Section 2.2's worked
  // comparison).
  const MappingTable good = Figure3A();
  const MappingTable bad = Figure3B();
  EXPECT_EQ(*AccessCost(good, {kA, kB, kC, kD}), 1);
  EXPECT_EQ(*AccessCost(good, {kC, kD, kE, kF}), 1);
  EXPECT_EQ(*AccessCost(bad, {kA, kB, kC, kD}), 3);
  EXPECT_EQ(*AccessCost(bad, {kC, kD, kE, kF}), 3);
}

TEST(WellDefinedTest, TotalAccessCostSums) {
  const MappingTable good = Figure3A();
  const std::vector<std::vector<ValueId>> preds = {{kA, kB, kC, kD},
                                                   {kC, kD, kE, kF}};
  EXPECT_EQ(*TotalAccessCost(good, preds), 2);
}

TEST(WellDefinedTest, SubdomainTooSmallRejected) {
  const MappingTable mapping = Figure3A();
  EXPECT_FALSE(IsWellDefined(mapping, {kA}, 8).ok());
}

TEST(WellDefinedTest, EvenNonPowerCase) {
  // |s| = 6 (case ii): consecutive Gray codes satisfy the definition.
  // Use codes 000,001,011,010,110,111 (Gray order prefix) for values 0..5.
  const auto mapping = MappingTable::Create(
      3, {0b000, 0b001, 0b011, 0b010, 0b110, 0b111, 0b101, 0b100});
  ASSERT_TRUE(mapping.ok());
  const auto result = IsWellDefined(*mapping, {0, 1, 2, 3, 4, 5}, 8);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(*result);
}

TEST(WellDefinedTest, EvenCaseFailsWithoutChain) {
  // {000, 011, 101, 110}: all even-parity — no chain exists, and no
  // 2-element prime chain requirement can rescue it... (|s|=4=2^2, case i).
  const auto mapping = MappingTable::Create(
      3, {0b000, 0b011, 0b101, 0b110, 0b001, 0b010, 0b100, 0b111});
  ASSERT_TRUE(mapping.ok());
  const auto result = IsWellDefined(*mapping, {0, 1, 2, 3}, 8);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(*result);
}

TEST(WellDefinedTest, OddCaseUsesWitness) {
  // |s| = 3 (case iii): {000, 001, 011} needs a witness w with a chain on
  // s ∪ {w}; w = 010 completes the Gray square.
  const auto mapping = MappingTable::Create(
      3, {0b000, 0b001, 0b011, 0b010, 0b100, 0b101, 0b110, 0b111});
  ASSERT_TRUE(mapping.ok());
  const auto result = IsWellDefined(*mapping, {0, 1, 2}, 8);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(*result);
}

TEST(WellDefinedTest, OddCaseFailsWithoutWitness) {
  // Domain of exactly the three far-apart codes plus nothing adjacent:
  // {000, 011, 101} over a domain whose only other member is 111 — no
  // witness yields a chain with pairwise distance <= 2... (111 is distance
  // 3 from 000).
  const auto mapping =
      MappingTable::Create(3, {0b000, 0b011, 0b101, 0b111});
  ASSERT_TRUE(mapping.ok());
  const auto result = IsWellDefined(*mapping, {0, 1, 2}, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(*result);
}

TEST(WellDefinedTest, AccessCostUsesUnusedCodewordsAsDontCares) {
  // Domain of 3 values in a 2-bit space: selecting all of them can use the
  // unused codeword as don't-care, giving cost 0 (tautology).
  const auto mapping = MappingTable::Create(2, {0b00, 0b01, 0b10});
  ASSERT_TRUE(mapping.ok());
  EXPECT_EQ(*AccessCost(*mapping, {0, 1, 2}), 0);
}

TEST(WellDefinedTest, AccessCostSingleValueIsFullWidth) {
  const auto mapping = MappingTable::Create(3, {0b000, 0b001, 0b010, 0b011,
                                                0b100, 0b101, 0b110, 0b111});
  ASSERT_TRUE(mapping.ok());
  EXPECT_EQ(*AccessCost(*mapping, {0}), 3);
}

}  // namespace
}  // namespace ebi
