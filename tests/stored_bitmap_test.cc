#include "util/stored_bitmap.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/random.h"

namespace ebi {
namespace {

constexpr BitmapFormat kAllFormats[] = {
    BitmapFormat::kPlain, BitmapFormat::kRle, BitmapFormat::kEwah};

BitVector RandomBits(size_t n, double density, uint64_t seed) {
  Rng rng(seed);
  BitVector v(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(density)) {
      v.Set(i);
    }
  }
  return v;
}

TEST(StoredBitmapTest, RoundTripEveryFormat) {
  const BitVector bits = RandomBits(1000, 0.1, 1);
  for (BitmapFormat format : kAllFormats) {
    const StoredBitmap stored = StoredBitmap::Make(bits, format);
    EXPECT_EQ(stored.format(), format);
    EXPECT_EQ(stored.size(), bits.size());
    EXPECT_EQ(stored.Count(), bits.Count());
    EXPECT_EQ(stored.ToBitVector(), bits);
    EXPECT_DOUBLE_EQ(stored.Sparsity(), bits.Sparsity());
  }
}

TEST(StoredBitmapTest, CompressedFormatsShrinkSparseVectors) {
  const BitVector sparse = RandomBits(100000, 0.001, 2);
  const StoredBitmap plain = StoredBitmap::Make(sparse, BitmapFormat::kPlain);
  const StoredBitmap rle = StoredBitmap::Make(sparse, BitmapFormat::kRle);
  const StoredBitmap ewah = StoredBitmap::Make(sparse, BitmapFormat::kEwah);
  EXPECT_LT(rle.SizeBytes(), plain.SizeBytes());
  EXPECT_LT(ewah.SizeBytes(), plain.SizeBytes());
}

TEST(StoredBitmapTest, AndOrMatchPlainOracle) {
  const BitVector a = RandomBits(2000, 0.05, 3);
  const BitVector b = RandomBits(2000, 0.05, 4);
  for (BitmapFormat format : kAllFormats) {
    const StoredBitmap sa = StoredBitmap::Make(a, format);
    const StoredBitmap sb = StoredBitmap::Make(b, format);
    const Result<StoredBitmap> and_result = StoredBitmap::And(sa, sb);
    ASSERT_TRUE(and_result.ok());
    EXPECT_EQ(and_result->format(), format);
    EXPECT_EQ(and_result->ToBitVector(), And(a, b));
    const Result<StoredBitmap> or_result = StoredBitmap::Or(sa, sb);
    ASSERT_TRUE(or_result.ok());
    EXPECT_EQ(or_result->ToBitVector(), Or(a, b));
  }
}

TEST(StoredBitmapTest, OpsRejectFormatMismatch) {
  const BitVector bits = RandomBits(100, 0.5, 5);
  const StoredBitmap plain = StoredBitmap::Make(bits, BitmapFormat::kPlain);
  const StoredBitmap ewah = StoredBitmap::Make(bits, BitmapFormat::kEwah);
  EXPECT_EQ(StoredBitmap::And(plain, ewah).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(StoredBitmap::Or(ewah, plain).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(StoredBitmapTest, OpsRejectSizeMismatch) {
  for (BitmapFormat format : kAllFormats) {
    const StoredBitmap a = StoredBitmap::Make(BitVector(100), format);
    const StoredBitmap b = StoredBitmap::Make(BitVector(200), format);
    EXPECT_EQ(StoredBitmap::And(a, b).status().code(),
              StatusCode::kInvalidArgument)
        << BitmapFormatName(format);
    EXPECT_EQ(StoredBitmap::Or(a, b).status().code(),
              StatusCode::kInvalidArgument)
        << BitmapFormatName(format);
  }
}

TEST(StoredBitmapTest, AppendBitGrowsEveryFormat) {
  for (BitmapFormat format : kAllFormats) {
    StoredBitmap stored = StoredBitmap::Make(BitVector(), format);
    BitVector oracle;
    Rng rng(6);
    for (int i = 0; i < 200; ++i) {
      const bool bit = rng.Bernoulli(0.3);
      stored.AppendBit(bit);
      oracle.PushBack(bit);
    }
    EXPECT_EQ(stored.format(), format);
    EXPECT_EQ(stored.ToBitVector(), oracle) << BitmapFormatName(format);
  }
}

TEST(StoredBitmapTest, ForEachSetBitMatchesEveryFormat) {
  const BitVector bits = RandomBits(1500, 0.02, 7);
  for (BitmapFormat format : kAllFormats) {
    const StoredBitmap stored = StoredBitmap::Make(bits, format);
    std::vector<uint32_t> positions;
    stored.ForEachSetBit([&positions](size_t i) {
      positions.push_back(static_cast<uint32_t>(i));
    });
    EXPECT_EQ(positions, bits.ToPositions()) << BitmapFormatName(format);
  }
}

TEST(StoredBitmapTest, FormatNamesAndParsing) {
  EXPECT_STREQ(BitmapFormatName(BitmapFormat::kPlain), "plain");
  EXPECT_STREQ(BitmapFormatName(BitmapFormat::kRle), "rle");
  EXPECT_STREQ(BitmapFormatName(BitmapFormat::kEwah), "ewah");
  EXPECT_EQ(ParseBitmapFormat("ewah"), BitmapFormat::kEwah);
  EXPECT_EQ(ParseBitmapFormat("rle"), BitmapFormat::kRle);
  EXPECT_EQ(ParseBitmapFormat("plain"), BitmapFormat::kPlain);
  EXPECT_FALSE(ParseBitmapFormat("wah").has_value());
  EXPECT_EQ(BitmapFormatSuffix(BitmapFormat::kPlain), "");
  EXPECT_EQ(BitmapFormatSuffix(BitmapFormat::kEwah), "-ewah");
}

}  // namespace
}  // namespace ebi
