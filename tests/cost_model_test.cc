#include "analysis/cost_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ebi {
namespace {

TEST(CostModelTest, CsIsDelta) {
  EXPECT_EQ(CsForDelta(1), 1u);
  EXPECT_EQ(CsForDelta(32), 32u);
}

TEST(CostModelTest, CeWorstIsLogCeil) {
  // Figure 9: c_e_w = 6 for |A| = 50 and 10 for |A| = 1000.
  EXPECT_EQ(CeWorst(50), 6);
  EXPECT_EQ(CeWorst(1000), 10);
  EXPECT_EQ(CeWorst(12000), 14);
}

TEST(CostModelTest, CeBestSingleValueIsFullWidth) {
  EXPECT_EQ(CeBest(1, 50), 6);
  EXPECT_EQ(CeBest(1, 1000), 10);
}

TEST(CostModelTest, CeBestPowerOfTwoSelections) {
  // δ = 2^j consecutive codewords form a subcube: k - j vectors.
  EXPECT_EQ(CeBest(2, 50), 5);
  EXPECT_EQ(CeBest(4, 50), 4);
  EXPECT_EQ(CeBest(8, 50), 3);
  EXPECT_EQ(CeBest(16, 50), 2);
  EXPECT_EQ(CeBest(32, 50), 1);  // The 83%-saving point of Figure 9(a).
  EXPECT_EQ(CeBest(512, 1000), 1);  // The 90%-saving point of Figure 9(b).
}

TEST(CostModelTest, CeBestNeverExceedsWorst) {
  for (size_t delta = 1; delta <= 50; ++delta) {
    EXPECT_LE(CeBest(delta, 50), CeWorst(50)) << delta;
    EXPECT_GE(CeBest(delta, 50), 0) << delta;
  }
}

TEST(CostModelTest, CeBestIsMonotoneOnPowers) {
  int prev = CeBest(1, 1000);
  for (size_t delta = 2; delta <= 512; delta *= 2) {
    const int cur = CeBest(delta, 1000);
    EXPECT_LE(cur, prev) << delta;
    prev = cur;
  }
}

TEST(CostModelTest, CeBestWithDontCaresIsNeverWorse) {
  for (size_t delta : {1u, 3u, 7u, 25u, 50u}) {
    EXPECT_LE(CeBestWithDontCares(delta, 50), CeBest(delta, 50)) << delta;
  }
  // Whole-domain selection with don't-cares is free.
  EXPECT_EQ(CeBestWithDontCares(50, 50), 0);
}

TEST(CostModelTest, CrossoverDelta) {
  // Section 3.1: c_e < c_s once δ > log2|A| + 1.
  EXPECT_NEAR(CrossoverDelta(50), std::log2(50.0) + 1.0, 1e-9);
  for (size_t delta = 8; delta <= 50; ++delta) {
    EXPECT_LT(CeBest(delta, 50), static_cast<int>(CsForDelta(delta)));
  }
}

TEST(CostModelTest, SpaceModels) {
  // Section 2.1: simple bitmap n*m/8 bytes; encoded n*ceil(log2 m)/8.
  EXPECT_DOUBLE_EQ(SimpleBitmapBytes(8000, 100), 100000.0);
  EXPECT_DOUBLE_EQ(EncodedBitmapBytes(8000, 100), 7000.0);
  EXPECT_DOUBLE_EQ(BTreeBytes(1000, 4096, 512), 1.44 * 1000 / 512 * 4096);
}

TEST(CostModelTest, BTreeCrossoverIs93ForPaperParameters) {
  // "assume that p=4K and M=512, then if the cardinality of A is smaller
  // than 93 ... simple bitmap is more economic".
  const double crossover = BitmapVsBTreeCrossoverCardinality(4096, 512);
  EXPECT_NEAR(crossover, 92.16, 0.01);
  // Below the crossover simple bitmaps are smaller, above they are larger.
  const size_t n = 1000000;
  EXPECT_LT(SimpleBitmapBytes(n, 92), BTreeBytes(n, 4096, 512));
  EXPECT_GT(SimpleBitmapBytes(n, 93), BTreeBytes(n, 4096, 512));
}

TEST(CostModelTest, VectorCounts) {
  // Figure 10: m vs ceil(log2 m) bit vectors.
  EXPECT_EQ(SimpleBitmapVectors(12000), 12000u);
  EXPECT_EQ(EncodedBitmapVectors(12000), 14u);
  EXPECT_EQ(EncodedBitmapVectors(2), 1u);
}

TEST(CostModelTest, BuildCosts) {
  EXPECT_DOUBLE_EQ(SimpleBuildCost(100, 50), 5000.0);
  EXPECT_DOUBLE_EQ(EncodedBuildCost(100, 50), 600.0);
  // B-tree build cost exceeds the encoded-bitmap build for small m.
  EXPECT_GT(BTreeBuildCost(1000, 50, 4096, 512), EncodedBuildCost(1000, 50));
}

TEST(CostModelTest, Sparsity) {
  EXPECT_DOUBLE_EQ(SimpleSparsity(100), 0.99);
  EXPECT_DOUBLE_EQ(SimpleSparsity(2), 0.5);
  EXPECT_DOUBLE_EQ(EncodedSparsityApprox(), 0.5);
}

TEST(CostModelTest, AreaRatioMatchesPaperFor50) {
  // Section 3.2: "The ratio for the case in Figure 9(a) is 0.84".
  const double ratio = BestToWorstAreaRatio(50);
  EXPECT_NEAR(ratio, 0.84, 0.03);
}

TEST(CostModelTest, PeakSavingsMatchPaper) {
  // 83% at δ=32 for |A|=50; 90% at δ=512 for |A|=1000 (subsampled sweep —
  // the peak is on a power of two, which PeakSaving always includes).
  EXPECT_NEAR(PeakSaving(50), 1.0 - 1.0 / 6.0, 1e-9);
  EXPECT_NEAR(PeakSaving(1000, /*step=*/97), 1.0 - 1.0 / 10.0, 1e-9);
}

}  // namespace
}  // namespace ebi
