#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "exec/thread_pool.h"
#include "obs/workload_recorder.h"
#include "serve/query_service.h"
#include "storage/table.h"

namespace ebi {
namespace serve {
namespace {

std::unique_ptr<Table> SeedTable(size_t rows) {
  auto table = std::make_unique<Table>("stress");
  EXPECT_TRUE(table->AddColumn("a", Column::Type::kInt64).ok());
  for (size_t i = 0; i < rows; ++i) {
    EXPECT_TRUE(
        table->AppendRow({Value::Int(static_cast<int64_t>(i % 4))}).ok());
  }
  return table;
}

// Concurrent readers against one appender. Every reader runs a full-match
// selection (0 <= a <= huge, no deletes happen), so whatever snapshot it
// pinned, its result count must equal the row count of *some* published
// epoch — specifically the one stamped on its result. A torn read — a
// count that disagrees with the result's own epoch — means snapshot
// isolation broke. Run under TSan to also certify the epoch/reclamation
// machinery data-race-free.
TEST(ServeStressTest, ReadersSeeRowCountsConsistentWithSomeEpoch) {
  constexpr size_t kSeedRows = 8;
  constexpr size_t kAppendBatches = 15;
  constexpr size_t kRowsPerBatch = 4;
  constexpr size_t kReaders = 3;
  constexpr size_t kQueriesPerReader = 40;

  ServeOptions options;
  options.worker_threads = 2;
  options.queue_depth = 128;
  QueryService service(options);
  ASSERT_TRUE(
      service.Start(SeedTable(kSeedRows), {{"a", IndexKind::kEncodedBitmap}})
          .ok());

  struct Observation {
    uint64_t epoch;
    size_t count;
  };
  std::vector<std::vector<Observation>> seen(kReaders);
  for (auto& per_reader : seen) {
    per_reader.reserve(kQueriesPerReader);
  }
  std::atomic<bool> append_failed{false};

  exec::ThreadPool drivers(kReaders + 1);
  drivers.ParallelFor(0, kReaders + 1, [&](size_t worker) {
    if (worker == 0) {
      // The appender: each batch brings a brand-new value, so every
      // publish also exercises the domain-expansion / COW-rebuild path.
      for (size_t b = 0; b < kAppendBatches; ++b) {
        std::vector<std::vector<Value>> rows;
        for (size_t r = 0; r < kRowsPerBatch; ++r) {
          rows.push_back({Value::Int(static_cast<int64_t>(100 + b))});
        }
        if (!service.Append(std::move(rows)).ok()) {
          append_failed.store(true);
          return;
        }
      }
      return;
    }
    std::vector<Observation>& out = seen[worker - 1];
    const std::vector<Predicate> all = {Predicate::Between("a", 0, 1 << 20)};
    for (size_t q = 0; q < kQueriesPerReader; ++q) {
      const Result<ServeResult> got = service.Select(all);
      if (!got.ok()) {
        // Shedding is legitimate under load; anything else is not.
        ASSERT_EQ(got.status().code(), StatusCode::kOverloaded);
        continue;
      }
      out.push_back({got.value().epoch, got.value().selection.count});
    }
  });

  ASSERT_FALSE(append_failed.load());
  ASSERT_TRUE(service.Shutdown().ok());

  // Ground truth: the row count of every epoch ever published.
  const std::vector<size_t> published = service.PublishedRowCounts();
  ASSERT_EQ(published.size(), kAppendBatches + 1);
  EXPECT_EQ(published.back(), kSeedRows + kAppendBatches * kRowsPerBatch);

  size_t observations = 0;
  for (size_t reader = 0; reader < kReaders; ++reader) {
    for (const Observation& obs : seen[reader]) {
      ASSERT_LT(obs.epoch, published.size());
      EXPECT_EQ(obs.count, published[obs.epoch])
          << "reader " << reader << " saw a row count inconsistent with "
          << "its epoch " << obs.epoch;
      ++observations;
    }
    // Within one reader, epochs move forward in submission order only if
    // requests are serialized — they aren't — but counts may never
    // exceed the final published state.
    for (const Observation& obs : seen[reader]) {
      EXPECT_LE(obs.count, published.back());
    }
  }
  EXPECT_GT(observations, 0u);

  // Nothing leaked: all superseded snapshots were reclaimed.
  EXPECT_EQ(service.snapshots().RetiredCount(), 0u);
  EXPECT_EQ(service.snapshots().ReclaimedCount(), kAppendBatches);
}

// Pins held across many publishes: readers grab a pin, hold it while the
// appender publishes, and verify their frozen row count never changes.
TEST(ServeStressTest, HeldPinsStayFrozenWhilePublishesRace) {
  constexpr size_t kPublishes = 10;
  constexpr size_t kHolders = 3;

  QueryService service;
  ASSERT_TRUE(
      service.Start(SeedTable(4), {{"a", IndexKind::kSimpleBitmap}}).ok());

  std::atomic<bool> failed{false};
  exec::ThreadPool drivers(kHolders + 1);
  drivers.ParallelFor(0, kHolders + 1, [&](size_t worker) {
    if (worker == 0) {
      for (size_t p = 0; p < kPublishes; ++p) {
        if (!service.Append({{Value::Int(static_cast<int64_t>(p))}}).ok()) {
          failed.store(true);
          return;
        }
      }
      return;
    }
    for (size_t round = 0; round < 20; ++round) {
      SnapshotManager::Pin pin = service.snapshots().Acquire();
      if (!pin) {
        failed.store(true);
        return;
      }
      const size_t rows_at_pin = pin->NumRows();
      const uint64_t epoch_at_pin = pin->epoch();
      // Re-read after other threads had time to publish: both must be
      // exactly what we pinned.
      if (pin->NumRows() != rows_at_pin || pin->epoch() != epoch_at_pin) {
        failed.store(true);
        return;
      }
    }
  });
  ASSERT_FALSE(failed.load());
  ASSERT_TRUE(service.Shutdown().ok());
  EXPECT_EQ(service.CurrentEpoch(), kPublishes);
}

// Production telemetry under stress: 100% sampling, a zero slow
// threshold (every request is "slow"), and a workload recorder rotating
// every couple KiB — while readers race an appender. Every completed
// selection must be accounted for in all three sinks, the trace ring
// must wrap without losing whole captures, and the rotated log set must
// read back clean and in order.
TEST(ServeStressTest, TelemetryCapturesEveryCompletedSelection) {
  constexpr size_t kReaders = 3;
  constexpr size_t kQueriesPerReader = 60;
  constexpr size_t kAppendBatches = 8;
  const std::string log_path =
      std::string(::testing::TempDir()) + "/ebi_stress_workload.jsonl";
  std::remove(log_path.c_str());
  for (size_t g = 1; g < 4; ++g) {
    std::remove((log_path + "." + std::to_string(g)).c_str());
  }

  ServeOptions options;
  options.worker_threads = 2;
  options.queue_depth = 256;
  options.telemetry.enabled = true;
  options.telemetry.sample_rate = 1.0;
  options.telemetry.trace_ring_capacity = 8;  // forces wraparound
  options.telemetry.slow_threshold_ms = 0.0;
  options.telemetry.slow_log_capacity = 4;
  options.telemetry.workload_log_path = log_path;
  options.telemetry.workload_options.rotate_bytes = 2048;
  options.telemetry.workload_options.max_files = 3;
  QueryService service(options);
  ASSERT_TRUE(
      service.Start(SeedTable(16), {{"a", IndexKind::kEncodedBitmap}}).ok());

  std::atomic<size_t> successes{0};
  std::atomic<bool> append_failed{false};
  exec::ThreadPool drivers(kReaders + 1);
  drivers.ParallelFor(0, kReaders + 1, [&](size_t worker) {
    if (worker == 0) {
      for (size_t b = 0; b < kAppendBatches; ++b) {
        if (!service.Append({{Value::Int(static_cast<int64_t>(100 + b))}})
                 .ok()) {
          append_failed.store(true);
          return;
        }
      }
      return;
    }
    for (size_t q = 0; q < kQueriesPerReader; ++q) {
      const Result<ServeResult> got = service.Select(
          {Predicate::Eq("a", Value::Int(static_cast<int64_t>(q % 4)))});
      if (got.ok()) {
        successes.fetch_add(1);
      } else {
        ASSERT_EQ(got.status().code(), StatusCode::kOverloaded);
      }
    }
  });
  ASSERT_FALSE(append_failed.load());
  ASSERT_TRUE(service.Shutdown().ok());

  const uint64_t completed = successes.load();
  ASSERT_GT(completed, 0u);

  // Every completed selection was sampled into the ring (rate 1.0), and
  // the ring kept exactly the most recent `capacity` of them.
  ASSERT_NE(service.trace_ring(), nullptr);
  EXPECT_EQ(service.trace_ring()->TotalCaptured(), completed);
  const auto captures = service.trace_ring()->Snapshot();
  EXPECT_EQ(captures.size(),
            std::min<size_t>(completed, options.telemetry.trace_ring_capacity));
  for (size_t i = 1; i < captures.size(); ++i) {
    EXPECT_LT(captures[i - 1].seq, captures[i].seq);
  }

  // Threshold 0 marks everything slow: the slow log saw every request.
  ASSERT_NE(service.slow_log(), nullptr);
  EXPECT_EQ(service.slow_log()->TotalCaptured(), completed);

  // The recorder wrote one record per completed selection and rotated
  // along the way; the rotated set reads back clean, oldest first, and
  // ends at the last sequence number written.
  ASSERT_NE(service.workload_recorder(), nullptr);
  EXPECT_EQ(service.workload_recorder()->RecordsWritten(), completed);
  EXPECT_GT(service.workload_recorder()->Rotations(), 0u);
  const Result<obs::WorkloadLogRead> set = obs::ReadWorkloadLogSet(
      log_path, options.telemetry.workload_options.max_files);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  EXPECT_EQ(set.value().skipped, 0u);
  ASSERT_FALSE(set.value().records.empty());
  EXPECT_EQ(set.value().records.back().seq, completed - 1);
  for (size_t i = 0; i < set.value().records.size(); ++i) {
    const obs::WorkloadRecord& record = set.value().records[i];
    if (i > 0) {
      EXPECT_LT(set.value().records[i - 1].seq, record.seq);
    }
    EXPECT_FALSE(record.kernel.empty());
    EXPECT_GE(record.selectivity, 0.0);
    EXPECT_LE(record.selectivity, 1.0);
    ASSERT_EQ(record.predicates.size(), 1u);
    EXPECT_EQ(record.predicates[0].column, "a");
    EXPECT_EQ(record.predicates[0].op, "eq");
  }

  std::remove(log_path.c_str());
  for (size_t g = 1; g < 4; ++g) {
    std::remove((log_path + "." + std::to_string(g)).c_str());
  }
}

}  // namespace
}  // namespace serve
}  // namespace ebi
