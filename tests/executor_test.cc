#include "query/executor.h"

#include <gtest/gtest.h>

#include "index/encoded_bitmap_index.h"
#include "index/simple_bitmap_index.h"

namespace ebi {
namespace {

std::unique_ptr<Table> TwoColumnTable() {
  auto table = std::make_unique<Table>("SALES");
  EXPECT_TRUE(table->AddColumn("product", Column::Type::kInt64).ok());
  EXPECT_TRUE(table->AddColumn("region", Column::Type::kInt64).ok());
  const int64_t rows[][2] = {{1, 0}, {2, 1}, {1, 1}, {3, 0},
                             {2, 0}, {1, 2}, {3, 1}, {2, 2}};
  for (const auto& r : rows) {
    EXPECT_TRUE(table->AppendRow({Value::Int(r[0]), Value::Int(r[1])}).ok());
  }
  return table;
}

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = TwoColumnTable();
    product_index_ = std::make_unique<EncodedBitmapIndex>(
        &table_->column(0), &table_->existence(), &io_);
    region_index_ = std::make_unique<EncodedBitmapIndex>(
        &table_->column(1), &table_->existence(), &io_);
    ASSERT_TRUE(product_index_->Build().ok());
    ASSERT_TRUE(region_index_->Build().ok());
    executor_ = std::make_unique<SelectionExecutor>(table_.get(), &io_);
    executor_->RegisterIndex("product", product_index_.get());
    executor_->RegisterIndex("region", region_index_.get());
  }

  IoAccountant io_;
  std::unique_ptr<Table> table_;
  std::unique_ptr<EncodedBitmapIndex> product_index_;
  std::unique_ptr<EncodedBitmapIndex> region_index_;
  std::unique_ptr<SelectionExecutor> executor_;
};

TEST_F(ExecutorTest, SinglePredicate) {
  const auto result = executor_->Select({Predicate::Eq("product", Value::Int(1))});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.ToString(), "10100100");
  EXPECT_EQ(result->count, 3u);
}

TEST_F(ExecutorTest, ConjunctionAndsBitmaps) {
  // Section 2.1's cooperativity: product = 1 AND region = 1.
  const auto result =
      executor_->Select({Predicate::Eq("product", Value::Int(1)),
                         Predicate::Eq("region", Value::Int(1))});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.ToString(), "00100000");
  EXPECT_EQ(result->count, 1u);
}

TEST_F(ExecutorTest, ConjunctionMatchesScan) {
  const std::vector<Predicate> query = {
      Predicate::In("product", {Value::Int(1), Value::Int(2)}),
      Predicate::Between("region", 0, 1)};
  const auto indexed = executor_->Select(query);
  const auto scanned = executor_->SelectByScan(query);
  ASSERT_TRUE(indexed.ok());
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(indexed->rows, *scanned);
}

TEST_F(ExecutorTest, EmptyConjunctionSelectsAllExisting) {
  ASSERT_TRUE(table_->DeleteRow(3).ok());
  ASSERT_TRUE(product_index_->MarkDeleted(3).ok());
  ASSERT_TRUE(region_index_->MarkDeleted(3).ok());
  const auto result = executor_->Select({});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->count, 7u);
}

TEST_F(ExecutorTest, MissingIndexRejected) {
  const auto result =
      executor_->Select({Predicate::Eq("nope", Value::Int(1))});
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(ExecutorTest, IoDeltaReported) {
  const auto result =
      executor_->Select({Predicate::Eq("product", Value::Int(1))});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->io.vectors_read, 0u);
  const auto second =
      executor_->Select({Predicate::Eq("product", Value::Int(2))});
  ASSERT_TRUE(second.ok());
  // Each selection reports only its own delta.
  EXPECT_EQ(second->io.vectors_read, result->io.vectors_read);
}

TEST_F(ExecutorTest, IsNullPredicate) {
  ASSERT_TRUE(table_->AppendRow({Value::Null(), Value::Int(0)}).ok());
  // Rebuild the product index so the NULL codeword exists.
  product_index_ = std::make_unique<EncodedBitmapIndex>(
      &table_->column(0), &table_->existence(), &io_);
  ASSERT_TRUE(product_index_->Build().ok());
  region_index_ = std::make_unique<EncodedBitmapIndex>(
      &table_->column(1), &table_->existence(), &io_);
  ASSERT_TRUE(region_index_->Build().ok());
  executor_ = std::make_unique<SelectionExecutor>(table_.get(), &io_);
  executor_->RegisterIndex("product", product_index_.get());
  executor_->RegisterIndex("region", region_index_.get());

  const auto result = executor_->Select({Predicate::IsNull("product")});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->count, 1u);
  EXPECT_TRUE(result->rows.Get(8));
}

TEST_F(ExecutorTest, DnfCrossColumnOr) {
  // product = 1 OR region = 0.
  const std::vector<std::vector<Predicate>> dnf = {
      {Predicate::Eq("product", Value::Int(1))},
      {Predicate::Eq("region", Value::Int(0))}};
  const auto result = executor_->SelectDnf(dnf);
  ASSERT_TRUE(result.ok());
  // product=1: rows 0,2,5; region=0: rows 0,3,4 -> union {0,2,3,4,5}.
  EXPECT_EQ(result->rows.ToString(), "10111100");
  const auto scanned = executor_->SelectDnfByScan(dnf);
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(result->rows, *scanned);
}

TEST_F(ExecutorTest, DnfOfConjunctions) {
  // (product = 1 AND region = 1) OR (product = 2 AND region = 2).
  const std::vector<std::vector<Predicate>> dnf = {
      {Predicate::Eq("product", Value::Int(1)),
       Predicate::Eq("region", Value::Int(1))},
      {Predicate::Eq("product", Value::Int(2)),
       Predicate::Eq("region", Value::Int(2))}};
  const auto result = executor_->SelectDnf(dnf);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.ToString(), "00100001");
  EXPECT_EQ(result->count, 2u);
}

TEST_F(ExecutorTest, EmptyDnfIsFalse) {
  const auto result = executor_->SelectDnf({});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->count, 0u);
}

TEST_F(ExecutorTest, DnfIoAccumulatesAcrossBranches) {
  const std::vector<std::vector<Predicate>> dnf = {
      {Predicate::Eq("product", Value::Int(1))},
      {Predicate::Eq("product", Value::Int(2))}};
  const auto result = executor_->SelectDnf(dnf);
  ASSERT_TRUE(result.ok());
  const auto single =
      executor_->Select({Predicate::Eq("product", Value::Int(1))});
  ASSERT_TRUE(single.ok());
  EXPECT_GE(result->io.vectors_read, 2 * single->io.vectors_read);
}

TEST_F(ExecutorTest, PredicateToString) {
  EXPECT_EQ(Predicate::Eq("a", Value::Int(3)).ToString(), "a = 3");
  EXPECT_EQ(Predicate::In("a", {Value::Int(1), Value::Int(2)}).ToString(),
            "a IN {1, 2}");
  EXPECT_EQ(Predicate::Between("a", 2, 5).ToString(), "2 <= a <= 5");
  EXPECT_EQ(Predicate::IsNull("a").ToString(), "a IS NULL");
}

TEST_F(ExecutorTest, PredicateWidth) {
  const Column& product = table_->column(0);
  EXPECT_EQ(Predicate::Eq("product", Value::Int(1)).Width(product), 1u);
  EXPECT_EQ(
      Predicate::In("product", {Value::Int(1), Value::Int(2)}).Width(product),
      2u);
  EXPECT_EQ(Predicate::Between("product", 1, 3).Width(product), 3u);
}

}  // namespace
}  // namespace ebi
