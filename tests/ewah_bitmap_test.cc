#include "util/ewah_bitmap.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "util/random.h"

namespace ebi {
namespace {

BitVector RandomBits(size_t n, double density, Rng* rng) {
  BitVector v(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng->Bernoulli(density)) {
      v.Set(i);
    }
  }
  return v;
}

TEST(EwahBitmapTest, EmptyRoundTrip) {
  const EwahBitmap ewah = EwahBitmap::Compress(BitVector());
  EXPECT_EQ(ewah.size(), 0u);
  EXPECT_EQ(ewah.Count(), 0u);
  EXPECT_EQ(ewah.NumWords(), 0u);
  EXPECT_EQ(ewah.Decompress(), BitVector());
}

TEST(EwahBitmapTest, AllZerosIsOneMarker) {
  const BitVector v(100000);
  const EwahBitmap ewah = EwahBitmap::Compress(v);
  EXPECT_EQ(ewah.Decompress(), v);
  EXPECT_EQ(ewah.Count(), 0u);
  // 100000 bits = 1563 clean words = a single marker word.
  EXPECT_EQ(ewah.NumWords(), 1u);
}

TEST(EwahBitmapTest, AllOnesRoundTrip) {
  const BitVector v(100000, true);
  const EwahBitmap ewah = EwahBitmap::Compress(v);
  EXPECT_EQ(ewah.Decompress(), v);
  EXPECT_EQ(ewah.Count(), 100000u);
  // 1562 clean ones-words in one marker, plus the partial tail literal.
  EXPECT_LE(ewah.NumWords(), 3u);
}

TEST(EwahBitmapTest, WordBoundarySizes) {
  for (size_t n : std::vector<size_t>{1, 63, 64, 65, 127, 128, 129}) {
    Rng rng(n);
    const BitVector v = RandomBits(n, 0.3, &rng);
    const EwahBitmap ewah = EwahBitmap::Compress(v);
    EXPECT_EQ(ewah.Decompress(), v) << "n=" << n;
    EXPECT_EQ(ewah.Count(), v.Count()) << "n=" << n;
  }
}

TEST(EwahBitmapTest, SparseBitmapCompressesWell) {
  BitVector v(1 << 20);
  v.Set(5);
  v.Set(700000);
  v.Set(1000000);
  const EwahBitmap ewah = EwahBitmap::Compress(v);
  EXPECT_GT(ewah.CompressionRatio(), 1000.0);
  EXPECT_EQ(ewah.Decompress(), v);
}

TEST(EwahBitmapTest, DenseRandomBitmapNearPlainSize) {
  Rng rng(11);
  const BitVector v = RandomBits(10000, 0.5, &rng);
  const EwahBitmap ewah = EwahBitmap::Compress(v);
  // All-literal words plus one marker per literal block: bounded overhead.
  EXPECT_GE(ewah.SizeBytes(), v.SizeBytes());
  EXPECT_LE(ewah.SizeBytes(), v.SizeBytes() + 2 * sizeof(uint64_t));
  EXPECT_EQ(ewah.Decompress(), v);
}

TEST(EwahBitmapTest, AndOrXorAndNotMatchPlainOracle) {
  Rng rng(42);
  for (double density : {0.001, 0.02, 0.5, 0.98}) {
    const size_t n = 4000;
    const BitVector a = RandomBits(n, density, &rng);
    const BitVector b = RandomBits(n, 0.05, &rng);
    const EwahBitmap ca = EwahBitmap::Compress(a);
    const EwahBitmap cb = EwahBitmap::Compress(b);
    EXPECT_EQ(EwahBitmap::And(ca, cb).Decompress(), And(a, b));
    EXPECT_EQ(EwahBitmap::Or(ca, cb).Decompress(), Or(a, b));
    EXPECT_EQ(EwahBitmap::Xor(ca, cb).Decompress(), Xor(a, b));
    BitVector andnot = a;
    andnot.AndNotWith(b);
    EXPECT_EQ(EwahBitmap::AndNot(ca, cb).Decompress(), andnot);
  }
}

TEST(EwahBitmapTest, NotMatchesPlainOracle) {
  Rng rng(7);
  for (size_t n : std::vector<size_t>{1, 64, 100, 4097}) {
    const BitVector a = RandomBits(n, 0.2, &rng);
    const EwahBitmap ewah = EwahBitmap::Compress(a);
    EXPECT_EQ(ewah.Not().Decompress(), Not(a)) << "n=" << n;
    EXPECT_EQ(ewah.Not().Not(), ewah) << "n=" << n;
  }
}

TEST(EwahBitmapTest, NotOfEmptyIsEmpty) {
  const EwahBitmap ewah = EwahBitmap::Compress(BitVector());
  EXPECT_EQ(ewah.Not().size(), 0u);
  EXPECT_EQ(ewah.Not().Count(), 0u);
}

TEST(EwahBitmapTest, NotOfAllZerosKeepsTailClear) {
  const BitVector v(100);
  const EwahBitmap flipped = EwahBitmap::Compress(v).Not();
  EXPECT_EQ(flipped.Count(), 100u);
  EXPECT_EQ(flipped.Decompress(), BitVector(100, true));
}

TEST(EwahBitmapTest, CheckedOpsRejectSizeMismatch) {
  const EwahBitmap a = EwahBitmap::Compress(BitVector(100));
  const EwahBitmap b = EwahBitmap::Compress(BitVector(101));
  EXPECT_EQ(EwahBitmap::AndChecked(a, b).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(EwahBitmap::OrChecked(a, b).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(EwahBitmap::XorChecked(a, b).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(EwahBitmap::AndNotChecked(a, b).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(EwahBitmap::AndChecked(a, a).ok());
}

TEST(EwahBitmapTest, ForEachSetBitMatchesPositions) {
  Rng rng(5);
  const BitVector v = RandomBits(3000, 0.05, &rng);
  const EwahBitmap ewah = EwahBitmap::Compress(v);
  std::vector<uint32_t> positions;
  ewah.ForEachSetBit([&positions](size_t i) {
    positions.push_back(static_cast<uint32_t>(i));
  });
  EXPECT_EQ(positions, v.ToPositions());
}

TEST(EwahBitmapTest, ForEachSetBitDecodesOnesRuns) {
  BitVector v(256, true);
  v.Reset(100);
  const EwahBitmap ewah = EwahBitmap::Compress(v);
  std::vector<uint32_t> positions;
  ewah.ForEachSetBit([&positions](size_t i) {
    positions.push_back(static_cast<uint32_t>(i));
  });
  EXPECT_EQ(positions, v.ToPositions());
}

TEST(EwahBitmapTest, FromWordsRoundTrip) {
  Rng rng(9);
  const BitVector v = RandomBits(1000, 0.1, &rng);
  const EwahBitmap ewah = EwahBitmap::Compress(v);
  const Result<EwahBitmap> restored =
      EwahBitmap::FromWords(ewah.words(), ewah.size());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, ewah);
}

TEST(EwahBitmapTest, FromWordsRejectsCorruptBuffers) {
  // Literal count larger than the remaining buffer.
  EXPECT_FALSE(
      EwahBitmap::FromWords({uint64_t{5} << 33}, 64).ok());
  // Buffer that covers fewer words than the bit size requires.
  EXPECT_FALSE(EwahBitmap::FromWords({}, 64).ok());
  // Buffer that covers more words than the bit size allows.
  const EwahBitmap two = EwahBitmap::Compress(BitVector(128));
  EXPECT_FALSE(EwahBitmap::FromWords(two.words(), 64).ok());
  // A set bit past the logical size in the final literal.
  const uint64_t marker = uint64_t{1} << 33;  // 0 run words, 1 literal.
  EXPECT_FALSE(EwahBitmap::FromWords({marker, uint64_t{1} << 40}, 10).ok());
  EXPECT_TRUE(EwahBitmap::FromWords({marker, uint64_t{1} << 5}, 10).ok());
}

// --- Boundary regressions for the compressed combine paths -------------
// Each case pins a shape that has historically broken word-aligned
// compressed merges: an operand with no set bits at all, a ones-run that
// ends exactly on a word boundary, and operands whose run/literal group
// structure disagrees at the final (partial) word.

TEST(EwahBitmapBoundaryTest, CombineWithEmptyOperand) {
  Rng rng(301);
  for (size_t n : std::vector<size_t>{64, 100, 4096}) {
    const BitVector some = RandomBits(n, 0.3, &rng);
    const BitVector none(n);
    const EwahBitmap cs = EwahBitmap::Compress(some);
    const EwahBitmap cn = EwahBitmap::Compress(none);
    // All-zero operand annihilates And and is the identity for Or.
    EXPECT_EQ(EwahBitmap::And(cs, cn).Decompress(), none) << "n=" << n;
    EXPECT_EQ(EwahBitmap::And(cn, cs).Decompress(), none) << "n=" << n;
    EXPECT_EQ(EwahBitmap::Or(cs, cn).Decompress(), some) << "n=" << n;
    EXPECT_EQ(EwahBitmap::Or(cn, cs).Decompress(), some) << "n=" << n;
    EXPECT_EQ(EwahBitmap::AndNot(cs, cn).Decompress(), some) << "n=" << n;
    EXPECT_EQ(EwahBitmap::AndNot(cn, cs).Decompress(), none) << "n=" << n;
  }
  // Zero-bit operands: the result must stay empty, not crash or emit pad.
  const EwahBitmap empty = EwahBitmap::Compress(BitVector());
  EXPECT_EQ(EwahBitmap::And(empty, empty).size(), 0u);
  EXPECT_EQ(EwahBitmap::And(empty, empty).Count(), 0u);
  EXPECT_EQ(EwahBitmap::Or(empty, empty).Count(), 0u);
}

TEST(EwahBitmapBoundaryTest, OnesRunEndingOnWordBoundary) {
  Rng rng(302);
  // All-ones operands whose ones-run ends exactly at a word boundary, so
  // no tail literal exists to stop a runaway run-length computation.
  for (size_t n : std::vector<size_t>{64, 128, 4096}) {
    const BitVector ones(n, true);
    const BitVector other = RandomBits(n, 0.2, &rng);
    const EwahBitmap co = EwahBitmap::Compress(ones);
    const EwahBitmap cr = EwahBitmap::Compress(other);
    EXPECT_EQ(EwahBitmap::And(co, cr).Decompress(), other) << "n=" << n;
    EXPECT_EQ(EwahBitmap::Or(co, cr).Decompress(), ones) << "n=" << n;
    BitVector flipped = ones;
    flipped.AndNotWith(other);
    EXPECT_EQ(EwahBitmap::AndNot(co, cr).Decompress(), flipped)
        << "n=" << n;
    EXPECT_EQ(EwahBitmap::And(co, co).Decompress(), ones) << "n=" << n;
  }
}

TEST(EwahBitmapBoundaryTest, MismatchedGroupStructureAtFinalWord) {
  // One operand reaches the final (partial) word inside a long clean run,
  // the other reaches it as a literal: the merge must not misalign the
  // streams or drop/duplicate the tail word.
  for (size_t n : std::vector<size_t>{100, 129, 4097}) {
    BitVector runs(n);         // zero run all the way to the tail.
    BitVector literals(n);     // literal in every word, incl. the tail.
    for (size_t i = 0; i < n; i += 3) {
      literals.Set(i);
    }
    runs.Set(n - 1);           // tail literal after a long zero run.
    const EwahBitmap cr = EwahBitmap::Compress(runs);
    const EwahBitmap cl = EwahBitmap::Compress(literals);
    EXPECT_EQ(EwahBitmap::And(cr, cl).Decompress(), And(runs, literals))
        << "n=" << n;
    EXPECT_EQ(EwahBitmap::Or(cr, cl).Decompress(), Or(runs, literals))
        << "n=" << n;
    EXPECT_EQ(EwahBitmap::Xor(cr, cl).Decompress(), Xor(runs, literals))
        << "n=" << n;
    BitVector diff = runs;
    diff.AndNotWith(literals);
    EXPECT_EQ(EwahBitmap::AndNot(cr, cl).Decompress(), diff) << "n=" << n;
  }
}

TEST(EwahBitmapBoundaryTest, GallopingAndMatchesOracleOnSparseInputs) {
  // The skip-based And must be bit-identical to the uncompressed oracle
  // on the shapes it is optimized for: long zero runs on either side.
  Rng rng(303);
  const size_t n = 1 << 18;
  const BitVector sparse_a = RandomBits(n, 0.0002, &rng);
  const BitVector sparse_b = RandomBits(n, 0.0002, &rng);
  const BitVector dense = RandomBits(n, 0.6, &rng);
  const EwahBitmap ca = EwahBitmap::Compress(sparse_a);
  const EwahBitmap cb = EwahBitmap::Compress(sparse_b);
  const EwahBitmap cd = EwahBitmap::Compress(dense);
  EXPECT_EQ(EwahBitmap::And(ca, cb).Decompress(), And(sparse_a, sparse_b));
  EXPECT_EQ(EwahBitmap::And(ca, cd).Decompress(), And(sparse_a, dense));
  EXPECT_EQ(EwahBitmap::And(cd, cb).Decompress(), And(dense, sparse_b));
  EXPECT_EQ(EwahBitmap::And(ca, cb).Count(), And(sparse_a, sparse_b).Count());
}

class EwahBitmapPropertyTest
    : public ::testing::TestWithParam<std::pair<size_t, double>> {};

TEST_P(EwahBitmapPropertyTest, RoundTripAndOpsMatchPlain) {
  const auto [n, density] = GetParam();
  Rng rng(n * 977 + static_cast<uint64_t>(density * 1000));
  BitVector a = RandomBits(n, density, &rng);
  BitVector b = RandomBits(n, density, &rng);
  const EwahBitmap ca = EwahBitmap::Compress(a);
  const EwahBitmap cb = EwahBitmap::Compress(b);
  EXPECT_EQ(ca.Decompress(), a);
  EXPECT_EQ(ca.Count(), a.Count());
  EXPECT_EQ(EwahBitmap::And(ca, cb).Decompress(), And(a, b));
  EXPECT_EQ(EwahBitmap::Or(ca, cb).Decompress(), Or(a, b));
  EXPECT_EQ(EwahBitmap::Xor(ca, cb).Decompress(), Xor(a, b));
  EXPECT_EQ(ca.Not().Decompress(), Not(a));
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndDensities, EwahBitmapPropertyTest,
    ::testing::Values(std::pair<size_t, double>{1, 0.5},
                      std::pair<size_t, double>{64, 0.01},
                      std::pair<size_t, double>{65, 0.99},
                      std::pair<size_t, double>{1000, 0.001},
                      std::pair<size_t, double>{1000, 0.5},
                      std::pair<size_t, double>{4096, 0.0},
                      std::pair<size_t, double>{4096, 1.0},
                      std::pair<size_t, double>{100000, 0.0003},
                      std::pair<size_t, double>{5000, 0.9}));

}  // namespace
}  // namespace ebi
