#include "util/random.h"

#include <gtest/gtest.h>

#include <map>

namespace ebi {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, UniformIntInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(10), 10u);
  }
}

TEST(RngTest, UniformIntRoughlyUniform) {
  Rng rng(11);
  std::map<uint64_t, int> counts;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    ++counts[rng.UniformInt(4)];
  }
  for (uint64_t v = 0; v < 4; ++v) {
    EXPECT_GT(counts[v], draws / 4 - draws / 20);
    EXPECT_LT(counts[v], draws / 4 + draws / 20);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::vector<int> sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(ZipfTest, ThetaZeroIsUniformish) {
  ZipfGenerator zipf(10, 0.0, 23);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) {
    ++counts[zipf.Next()];
  }
  for (uint64_t v = 0; v < 10; ++v) {
    EXPECT_GT(counts[v], 3500);
    EXPECT_LT(counts[v], 6500);
  }
}

TEST(ZipfTest, SkewFavorsSmallRanks) {
  ZipfGenerator zipf(100, 1.0, 29);
  std::map<uint64_t, int> counts;
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) {
    ++counts[zipf.Next()];
  }
  // Rank 0 should appear far more often than rank 50 under theta = 1.
  EXPECT_GT(counts[0], 5 * std::max(counts[50], 1));
}

TEST(ZipfTest, StaysInRange) {
  ZipfGenerator zipf(7, 0.8, 31);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(zipf.Next(), 7u);
  }
}

}  // namespace
}  // namespace ebi
