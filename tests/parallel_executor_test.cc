#include "query/parallel_executor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "obs/explain.h"
#include "query/planner.h"
#include "test_util.h"

namespace ebi {
namespace {

using testing_util::RandomIntTable;

std::vector<Predicate> TestConjunction() {
  return {Predicate::Between("a", 4, 22),
          Predicate::NotEq("a", Value::Int(9))};
}

// The serial reference: the same planner pipeline on the unpartitioned
// table, with the same index kinds registered.
SelectionResult SerialReference(const Table& table,
                                const std::vector<Predicate>& predicates) {
  IoAccountant io;
  AccessPathPlanner planner(&table, &io);
  std::unique_ptr<SecondaryIndex> encoded = MakeSecondaryIndex(
      IndexKind::kEncodedBitmap, &table.column(0), &table.existence(), &io);
  std::unique_ptr<SecondaryIndex> sliced = MakeSecondaryIndex(
      IndexKind::kBitSliced, &table.column(0), &table.existence(), &io);
  EXPECT_TRUE(encoded->Build().ok());
  EXPECT_TRUE(sliced->Build().ok());
  planner.RegisterIndex("a", encoded.get());
  planner.RegisterIndex("a", sliced.get());
  auto result = planner.Select(predicates);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

struct ParallelSetup {
  std::unique_ptr<SegmentedTable> segments;
  std::unique_ptr<exec::ThreadPool> pool;
  std::unique_ptr<IoAccountant> io;
  std::unique_ptr<ParallelSelectionExecutor> executor;
};

ParallelSetup MakeParallel(const Table& table, size_t num_segments,
                           size_t threads) {
  ParallelSetup s;
  const size_t rows = table.NumRows();
  const size_t segment_rows =
      num_segments == 0 ? 1 : (rows + num_segments - 1) / num_segments;
  auto parts =
      SegmentedTable::Partition(table, std::max<size_t>(1, segment_rows));
  EXPECT_TRUE(parts.ok());
  s.segments = std::make_unique<SegmentedTable>(std::move(parts).value());
  s.pool = std::make_unique<exec::ThreadPool>(threads);
  s.io = std::make_unique<IoAccountant>();
  s.executor = std::make_unique<ParallelSelectionExecutor>(
      s.segments.get(), s.pool.get(), s.io.get());
  EXPECT_TRUE(s.executor->CreateIndex("a", IndexKind::kEncodedBitmap).ok());
  EXPECT_TRUE(s.executor->CreateIndex("a", IndexKind::kBitSliced).ok());
  return s;
}

TEST(ParallelExecutorTest, BitIdenticalToSerialAcrossGrid) {
  auto table = RandomIntTable(900, 30, 404, /*null_fraction=*/0.08);
  const auto predicates = TestConjunction();
  const SelectionResult serial = SerialReference(*table, predicates);
  for (const size_t threads : {1u, 2u, 4u, 8u}) {
    for (const size_t segments : {1u, 3u, 16u}) {
      ParallelSetup s = MakeParallel(*table, segments, threads);
      const auto parallel = s.executor->Select(predicates);
      ASSERT_TRUE(parallel.ok()) << threads << "x" << segments;
      EXPECT_EQ(parallel->rows, serial.rows)
          << "t=" << threads << " s=" << segments;
      EXPECT_EQ(parallel->count, serial.count);
    }
  }
}

TEST(ParallelExecutorTest, IoStatsMergeMatchesSerialTotals) {
  auto table = RandomIntTable(600, 30, 11);
  const auto predicates = TestConjunction();
  const SelectionResult serial = SerialReference(*table, predicates);
  // One segment on one thread runs the identical plan, so the merged
  // IoStats must equal the serial query's I/O exactly.
  ParallelSetup s = MakeParallel(*table, 1, 1);
  const auto parallel = s.executor->Select(predicates);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(parallel->io, serial.io);
  // And the parent accountant was charged exactly the merged delta.
  EXPECT_EQ(s.io->stats().vectors_read, parallel->io.vectors_read);
  EXPECT_EQ(s.io->stats().bytes_read, parallel->io.bytes_read);
}

TEST(ParallelExecutorTest, MultiSegmentIoIsSumOfSegmentDeltas) {
  auto table = RandomIntTable(500, 20, 5);
  ParallelSetup s = MakeParallel(*table, 4, 2);
  const auto first = s.executor->Select(TestConjunction());
  ASSERT_TRUE(first.ok());
  EXPECT_GT(first->io.vectors_read, 0u);
  const IoStats charged = s.io->stats();
  EXPECT_EQ(charged.vectors_read, first->io.vectors_read);
  EXPECT_EQ(charged.pages_read, first->io.pages_read);
  EXPECT_EQ(charged.bytes_read, first->io.bytes_read);
  EXPECT_EQ(charged.nodes_read, first->io.nodes_read);
}

TEST(ParallelExecutorTest, EmptyTableSelectsNothing) {
  Table table("EMPTY");
  ASSERT_TRUE(table.AddColumn("a", Column::Type::kInt64).ok());
  auto parts = SegmentedTable::Partition(table, 8);
  ASSERT_TRUE(parts.ok());
  SegmentedTable segments = std::move(parts).value();
  exec::ThreadPool pool(2);
  IoAccountant io;
  ParallelSelectionExecutor executor(&segments, &pool, &io);
  ASSERT_TRUE(executor.CreateIndex("a", IndexKind::kEncodedBitmap).ok());
  const auto result = executor.Select({Predicate::Eq("a", Value::Int(1))});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->count, 0u);
  EXPECT_EQ(result->rows.size(), 0u);
}

TEST(ParallelExecutorTest, SingleRowSegments) {
  auto table = RandomIntTable(37, 10, 3);
  ParallelSetup s = MakeParallel(*table, 37, 4);
  ASSERT_EQ(s.executor->NumSegments(), 37u);
  const auto predicates =
      std::vector<Predicate>{Predicate::Eq("a", Value::Int(4))};
  const SelectionResult serial = SerialReference(*table, predicates);
  const auto parallel = s.executor->Select(predicates);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(parallel->rows, serial.rows);
}

TEST(ParallelExecutorTest, UnknownColumnFailsCleanly) {
  auto table = RandomIntTable(50, 10, 2);
  ParallelSetup s = MakeParallel(*table, 2, 2);
  EXPECT_FALSE(
      s.executor->CreateIndex("nope", IndexKind::kEncodedBitmap).ok());
}

TEST(ParallelExecutorTest, ExplainShowsParallelSpanWithSegmentChildren) {
  auto table = RandomIntTable(400, 25, 8);
  ParallelSetup s = MakeParallel(*table, 4, 2);
  obs::QueryTrace trace;
  const auto result =
      s.executor->ExplainSelect(TestConjunction(), &trace);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(trace.root().children.size(), 1u);
  const obs::TraceSpan& span = trace.root().children[0];
  EXPECT_EQ(span.name, "exec.parallel");
  // One "segment" child per segment, in segment order, each wrapping the
  // planner spans its worker recorded.
  ASSERT_EQ(span.children.size(), 4u);
  for (size_t i = 0; i < span.children.size(); ++i) {
    EXPECT_EQ(span.children[i].name, "segment");
    ASSERT_FALSE(span.children[i].children.empty());
    EXPECT_EQ(span.children[i].children[0].name, "planner.select");
  }
  // The rendered EXPLAIN mentions the fan-out.
  const std::string text = obs::ExplainText(trace);
  EXPECT_NE(text.find("exec.parallel"), std::string::npos);
  EXPECT_NE(text.find("segment"), std::string::npos);
}

TEST(ParallelExecutorTest, TracingDoesNotChangeTheAnswer) {
  auto table = RandomIntTable(300, 15, 19);
  ParallelSetup s = MakeParallel(*table, 3, 2);
  const auto plain = s.executor->Select(TestConjunction());
  obs::QueryTrace trace;
  const auto traced = s.executor->ExplainSelect(TestConjunction(), &trace);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(traced.ok());
  EXPECT_EQ(plain->rows, traced->rows);
  EXPECT_EQ(plain->io, traced->io);
}

TEST(ParallelExecutorTest, RepeatedSelectsAreStable) {
  auto table = RandomIntTable(500, 30, 23);
  ParallelSetup s = MakeParallel(*table, 8, 4);
  const auto first = s.executor->Select(TestConjunction());
  ASSERT_TRUE(first.ok());
  for (int round = 0; round < 5; ++round) {
    const auto again = s.executor->Select(TestConjunction());
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->rows, first->rows) << round;
    EXPECT_EQ(again->io, first->io) << round;
  }
}

}  // namespace
}  // namespace ebi
