#include "encoding/optimizer.h"

#include <gtest/gtest.h>

#include <set>

#include "encoding/well_defined.h"

namespace ebi {
namespace {

TEST(OptimizerTest, GreedyHandlesEmptyPredicates) {
  const auto mapping = GreedyEncode(8, {});
  ASSERT_TRUE(mapping.ok());
  EXPECT_EQ(mapping->NumValues(), 8u);
  EXPECT_EQ(mapping->width(), 3);
}

TEST(OptimizerTest, GreedyClustersCoAccessedValues) {
  // Values {0,1,2,3} are always selected together: the greedy Gray
  // assignment must give that selection cost 1 (a 2-subcube).
  const PredicateSet preds = {{0, 1, 2, 3}};
  const auto mapping = GreedyEncode(8, preds);
  ASSERT_TRUE(mapping.ok());
  EXPECT_EQ(*AccessCost(*mapping, preds[0]), 1);
}

TEST(OptimizerTest, GreedyBeatsWorstCaseOnFigure3Selections) {
  // The two overlapping selections of Figure 3.
  const PredicateSet preds = {{0, 1, 2, 3}, {2, 3, 4, 5}};
  const auto mapping = GreedyEncode(8, preds);
  ASSERT_TRUE(mapping.ok());
  const auto total = TotalAccessCost(*mapping, preds);
  ASSERT_TRUE(total.ok());
  // Optimal is 2 (Figure 3(a)); anything strictly below the worst case of
  // 3+3 shows the heuristic is doing its job.
  EXPECT_LE(*total, 4);
}

TEST(OptimizerTest, AnnealedMatchesPaperOptimumOnFigure3) {
  const PredicateSet preds = {{0, 1, 2, 3}, {2, 3, 4, 5}};
  OptimizerOptions options;
  options.iterations = 3000;
  options.seed = 11;
  const auto mapping = AnnealEncode(8, preds, options);
  ASSERT_TRUE(mapping.ok());
  const auto total = TotalAccessCost(*mapping, preds);
  ASSERT_TRUE(total.ok());
  // Figure 3(a)/(a') achieve 1 + 1 = 2.
  EXPECT_EQ(*total, 2);
}

TEST(OptimizerTest, AnnealedNeverWorseThanGreedy) {
  const PredicateSet preds = {{0, 1, 2}, {3, 4, 5, 6}, {0, 6, 7}};
  const auto greedy = GreedyEncode(8, preds);
  ASSERT_TRUE(greedy.ok());
  OptimizerOptions options;
  options.iterations = 500;
  const auto annealed = AnnealEncode(8, preds, options);
  ASSERT_TRUE(annealed.ok());
  EXPECT_LE(*TotalAccessCost(*annealed, preds),
            *TotalAccessCost(*greedy, preds));
}

TEST(OptimizerTest, MappingsStayBijective) {
  const PredicateSet preds = {{0, 1}, {2, 3}, {1, 2}};
  OptimizerOptions options;
  options.iterations = 300;
  const auto mapping = AnnealEncode(6, preds, options);
  ASSERT_TRUE(mapping.ok());
  std::set<uint64_t> codes;
  for (ValueId v = 0; v < 6; ++v) {
    codes.insert(*mapping->CodeOf(v));
  }
  EXPECT_EQ(codes.size(), 6u);
}

TEST(OptimizerTest, ReservedVoidSurvivesAnnealing) {
  EncoderOptions eo;
  eo.reserve_void_zero = true;
  OptimizerOptions options;
  options.iterations = 200;
  const auto mapping = AnnealEncode(5, {{0, 1, 2}}, options, eo);
  ASSERT_TRUE(mapping.ok());
  EXPECT_EQ(mapping->void_code(), std::optional<uint64_t>(0));
  for (ValueId v = 0; v < 5; ++v) {
    EXPECT_NE(*mapping->CodeOf(v), 0u);
  }
}

TEST(OptimizerTest, Figure6TotalOrderOptimized) {
  // Figure 6: domain {101..106} (rank ids 0..5), with {101,102,104,105}
  // usually accessed together. The paper's order-preserving mapping
  // 000,001,010,100,101,110 gives that selection codes {000,001,100,101}
  // = B1' — one vector. The exhaustive order-preserving search must find
  // a cost-1 assignment too.
  const PredicateSet favored = {{0, 1, 3, 4}};
  const auto mapping = TotalOrderOptimizedEncode(6, favored);
  ASSERT_TRUE(mapping.ok());
  // Order preserved.
  for (ValueId v = 0; v + 1 < 6; ++v) {
    EXPECT_LT(*mapping->CodeOf(v), *mapping->CodeOf(v + 1));
  }
  EXPECT_EQ(*AccessCost(*mapping, favored[0]), 1);
}

TEST(OptimizerTest, Figure6PaperMappingCostMatches) {
  // The exact mapping printed in Figure 6.
  const auto mapping = MappingTable::Create(
      3, {0b000, 0b001, 0b010, 0b100, 0b101, 0b110});
  ASSERT_TRUE(mapping.ok());
  EXPECT_EQ(*AccessCost(*mapping, {0, 1, 3, 4}), 1);
  // Ranges still work: "102 <= A <= 104" = ids {1,2,3}.
  const auto range_cost = AccessCost(*mapping, {1, 2, 3});
  ASSERT_TRUE(range_cost.ok());
  EXPECT_LE(*range_cost, 3);
}

TEST(OptimizerTest, TotalOrderOptimizedFallsBackWhenHuge) {
  // 60 values in 6 bits: C(64,60) is small, but force the cap to trigger
  // the fallback and check it stays order-preserving.
  const auto mapping =
      TotalOrderOptimizedEncode(60, {{0, 1, 2}}, EncoderOptions(),
                                /*max_combinations=*/10);
  ASSERT_TRUE(mapping.ok());
  for (ValueId v = 0; v + 1 < 60; ++v) {
    EXPECT_LT(*mapping->CodeOf(v), *mapping->CodeOf(v + 1));
  }
}

TEST(OptimizerTest, TotalOrderOptimizedNeverWorseThanSequential) {
  const PredicateSet favored = {{1, 2, 5, 6}};
  EncoderOptions eo;
  eo.extra_width = 1;  // Give the search spare codewords.
  const auto optimized = TotalOrderOptimizedEncode(8, favored, eo);
  const auto sequential = MakeTotalOrderMapping(8, eo);
  ASSERT_TRUE(optimized.ok());
  ASSERT_TRUE(sequential.ok());
  EXPECT_LE(*TotalAccessCost(*optimized, favored),
            *TotalAccessCost(*sequential, favored));
}

TEST(OptimizerTest, DeterministicForFixedSeed) {
  const PredicateSet preds = {{0, 1, 2, 3}, {4, 5}};
  OptimizerOptions options;
  options.iterations = 250;
  options.seed = 77;
  const auto a = AnnealEncode(8, preds, options);
  const auto b = AnnealEncode(8, preds, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (ValueId v = 0; v < 8; ++v) {
    EXPECT_EQ(*a->CodeOf(v), *b->CodeOf(v));
  }
}

}  // namespace
}  // namespace ebi
