#include "boolean/cover.h"

#include <gtest/gtest.h>

namespace ebi {
namespace {

Cover FigureOneInList() {
  // Section 2.2: f_a + f_b = B1'B0' + B1'B0 (before reduction).
  return {Cube::MinTerm(0b00, 2), Cube::MinTerm(0b01, 2)};
}

TEST(CoverTest, VariablesOfUnionsMasks) {
  const Cover cover = {Cube(0b00, 0b01), Cube(0b10, 0b10)};
  EXPECT_EQ(VariablesOf(cover), 0b11u);
  EXPECT_EQ(DistinctVariables(cover), 2);
}

TEST(CoverTest, DistinctVariablesCountsOnce) {
  const Cover cover = FigureOneInList();
  EXPECT_EQ(DistinctVariables(cover), 2);
  const Cover reduced = {Cube(0b00, 0b10)};  // B1'.
  EXPECT_EQ(DistinctVariables(reduced), 1);
}

TEST(CoverTest, TotalLiterals) {
  EXPECT_EQ(TotalLiterals(FigureOneInList()), 4);
  EXPECT_EQ(TotalLiterals({}), 0);
}

TEST(CoverTest, CoverCovers) {
  const Cover cover = FigureOneInList();
  EXPECT_TRUE(CoverCovers(cover, 0b00));
  EXPECT_TRUE(CoverCovers(cover, 0b01));
  EXPECT_FALSE(CoverCovers(cover, 0b10));
  EXPECT_FALSE(CoverCovers(cover, 0b11));
}

TEST(CoverTest, EmptyCoverIsFalse) {
  EXPECT_FALSE(CoverCovers({}, 0));
  EXPECT_EQ(CoverToString({}, 2), "0");
}

TEST(CoverTest, ToStringJoinsWithPlus) {
  EXPECT_EQ(CoverToString(FigureOneInList(), 2), "B1'B0' + B1'B0");
}

TEST(CoverTest, EvaluateFigureOneExample) {
  // Figure 1: column A over {a,b,c} encoded a=00, b=01, c=10; rows:
  // a c b NULL? -> use a c b a b with B1/B0 slices.
  // Rows:        a    c    b    a    b
  const BitVector b1 = BitVector::FromString("01000");
  const BitVector b0 = BitVector::FromString("00101");
  const std::vector<BitVector> slices = {b0, b1};  // slices[i] = B_i.

  // f_a = B1'B0' selects rows 0 and 3.
  const Cover fa = {Cube::MinTerm(0b00, 2)};
  EXPECT_EQ(EvaluateCover(fa, slices, 5).ToString(), "10010");

  // f_a + f_b reduces to B1'; selects rows 0, 2, 3, 4.
  const Cover fb_or_fa_reduced = {Cube(0b00, 0b10)};
  EXPECT_EQ(EvaluateCover(fb_or_fa_reduced, slices, 5).ToString(), "10111");

  // Unreduced f_a + f_b must select the same rows.
  EXPECT_EQ(EvaluateCover(FigureOneInList(), slices, 5).ToString(), "10111");
}

TEST(CoverTest, EvaluateEmptyCoverIsAllZero) {
  const std::vector<BitVector> slices = {BitVector(4), BitVector(4)};
  EXPECT_TRUE(EvaluateCover({}, slices, 4).IsZero());
}

TEST(CoverTest, EvaluateTautologyCube) {
  const std::vector<BitVector> slices = {BitVector(6), BitVector(6)};
  const Cover cover = {Cube(0, 0)};
  EXPECT_EQ(EvaluateCover(cover, slices, 6).Count(), 6u);
}

TEST(CoverTest, EvaluateMatchesCoverCoversOnAllCodes) {
  // Build slices that enumerate every 3-bit code once.
  const int k = 3;
  const size_t n = 8;
  std::vector<BitVector> slices(k, BitVector(n));
  for (size_t row = 0; row < n; ++row) {
    for (int i = 0; i < k; ++i) {
      if ((row >> i) & 1) {
        slices[i].Set(row);
      }
    }
  }
  const Cover cover = {Cube(0b010, 0b110), Cube::MinTerm(0b101, 3)};
  const BitVector result = EvaluateCover(cover, slices, n);
  for (size_t row = 0; row < n; ++row) {
    EXPECT_EQ(result.Get(row), CoverCovers(cover, row)) << row;
  }
}

TEST(CoverTest, CoversEquivalentDetectsEquality) {
  const Cover raw = FigureOneInList();
  const Cover reduced = {Cube(0b00, 0b10)};
  EXPECT_TRUE(CoversEquivalent(raw, reduced, 2));
  const Cover different = {Cube(0b10, 0b10)};
  EXPECT_FALSE(CoversEquivalent(raw, different, 2));
}

}  // namespace
}  // namespace ebi
