#include "index/projection_index.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ebi {
namespace {

using testing_util::IntTable;
using testing_util::ScanEquals;
using testing_util::ScanRange;

class ProjectionIndexTest : public ::testing::Test {
 protected:
  void Init(std::unique_ptr<Table> table) {
    table_ = std::move(table);
    index_ = std::make_unique<ProjectionIndex>(&table_->column(0),
                                               &table_->existence(), &io_);
    ASSERT_TRUE(index_->Build().ok());
  }

  IoAccountant io_;
  std::unique_ptr<Table> table_;
  std::unique_ptr<ProjectionIndex> index_;
};

TEST_F(ProjectionIndexTest, EqualsMatchesScan) {
  Init(IntTable({4, 2, 4, 6, 2}));
  const auto result = index_->EvaluateEquals(Value::Int(4));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, ScanEquals(*table_, table_->column(0), 4));
}

TEST_F(ProjectionIndexTest, InAndRangeMatchScan) {
  Init(IntTable({9, 4, 6, 2, 8, 0, 3, 7, 5, 1}));
  const auto in = index_->EvaluateIn({Value::Int(2), Value::Int(8)});
  ASSERT_TRUE(in.ok());
  BitVector expected = ScanEquals(*table_, table_->column(0), 2);
  expected.OrWith(ScanEquals(*table_, table_->column(0), 8));
  EXPECT_EQ(*in, expected);

  const auto range = index_->EvaluateRange(3, 7);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(*range, ScanRange(*table_, table_->column(0), 3, 7));
}

TEST_F(ProjectionIndexTest, SelectionsChargeFullScan) {
  Init(IntTable({1, 2, 3, 4}));
  io_.Reset();
  ASSERT_TRUE(index_->EvaluateEquals(Value::Int(1)).ok());
  EXPECT_EQ(io_.stats().bytes_read, 4 * sizeof(ValueId));
  EXPECT_EQ(io_.stats().vectors_read, 0u);  // Horizontal, not vectors.
}

TEST_F(ProjectionIndexTest, FetchReturnsTupleValue) {
  Init(IntTable({10, INT64_MIN, 30}));
  const auto v = index_->Fetch(0);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value::Int(10));
  const auto n = index_->Fetch(1);
  ASSERT_TRUE(n.ok());
  EXPECT_TRUE(n->is_null());
  EXPECT_EQ(index_->Fetch(9).status().code(), StatusCode::kOutOfRange);
}

TEST_F(ProjectionIndexTest, DeletedAndNullRowsExcluded) {
  Init(IntTable({5, 5, INT64_MIN, 5}));
  ASSERT_TRUE(table_->DeleteRow(0).ok());
  const auto result = index_->EvaluateEquals(Value::Int(5));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "0101");
}

TEST_F(ProjectionIndexTest, AppendExtends) {
  Init(IntTable({1}));
  ASSERT_TRUE(table_->AppendRow({Value::Int(2)}).ok());
  ASSERT_TRUE(index_->Append(1).ok());
  const auto result = index_->EvaluateEquals(Value::Int(2));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "01");
  EXPECT_EQ(index_->SizeBytes(), 2 * sizeof(ValueId));
}

TEST_F(ProjectionIndexTest, UnknownValueIsEmpty) {
  Init(IntTable({1, 2}));
  const auto result = index_->EvaluateEquals(Value::Int(99));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->IsZero());
}

TEST_F(ProjectionIndexTest, NumVectorsIsOne) {
  Init(IntTable({1, 2, 3}));
  EXPECT_EQ(index_->NumVectors(), 1u);
  EXPECT_EQ(index_->Name(), "projection");
}

}  // namespace
}  // namespace ebi
