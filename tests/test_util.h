#ifndef EBI_TESTS_TEST_UTIL_H_
#define EBI_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/table.h"
#include "util/bitvector.h"
#include "util/random.h"

namespace ebi {
namespace testing_util {

/// Builds a one-column int64 table from explicit values (INT64_MIN means
/// NULL for brevity in tests).
inline std::unique_ptr<Table> IntTable(const std::vector<int64_t>& values) {
  auto table = std::make_unique<Table>("T");
  EXPECT_TRUE(table->AddColumn("a", Column::Type::kInt64).ok());
  for (int64_t v : values) {
    if (v == INT64_MIN) {
      EXPECT_TRUE(table->AppendRow({Value::Null()}).ok());
    } else {
      EXPECT_TRUE(table->AppendRow({Value::Int(v)}).ok());
    }
  }
  return table;
}

/// Builds a random one-column int64 table with values in [0, cardinality),
/// optional NULLs.
inline std::unique_ptr<Table> RandomIntTable(size_t rows, size_t cardinality,
                                             uint64_t seed,
                                             double null_fraction = 0.0) {
  auto table = std::make_unique<Table>("T");
  EXPECT_TRUE(table->AddColumn("a", Column::Type::kInt64).ok());
  Rng rng(seed);
  for (size_t r = 0; r < rows; ++r) {
    if (null_fraction > 0 && rng.Bernoulli(null_fraction)) {
      EXPECT_TRUE(table->AppendRow({Value::Null()}).ok());
    } else {
      EXPECT_TRUE(table
                      ->AppendRow({Value::Int(static_cast<int64_t>(
                          rng.UniformInt(cardinality)))})
                      .ok());
    }
  }
  return table;
}

/// Reference bitmap for "column == v" over existing rows.
inline BitVector ScanEquals(const Table& table, const Column& column,
                            int64_t v) {
  BitVector out(table.NumRows());
  for (size_t row = 0; row < table.NumRows(); ++row) {
    if (!table.RowExists(row)) {
      continue;
    }
    const Value cell = column.ValueAt(row);
    if (!cell.is_null() && cell.int_value == v) {
      out.Set(row);
    }
  }
  return out;
}

/// Reference bitmap for "lo <= column <= hi" over existing rows.
inline BitVector ScanRange(const Table& table, const Column& column,
                           int64_t lo, int64_t hi) {
  BitVector out(table.NumRows());
  for (size_t row = 0; row < table.NumRows(); ++row) {
    if (!table.RowExists(row)) {
      continue;
    }
    const Value cell = column.ValueAt(row);
    if (!cell.is_null() && cell.int_value >= lo && cell.int_value <= hi) {
      out.Set(row);
    }
  }
  return out;
}

}  // namespace testing_util
}  // namespace ebi

#endif  // EBI_TESTS_TEST_UTIL_H_
