#include <gtest/gtest.h>

#include "workload/generator.h"
#include "workload/query_mix.h"
#include "workload/star_schema.h"

namespace ebi {
namespace {

TEST(GeneratorTest, ProducesRequestedShape) {
  const auto table = GenerateTable(
      "T", 1000,
      {{"u", 50, Distribution::kUniform},
       {"z", 100, Distribution::kZipf, 1.0},
       {"r", 10, Distribution::kRoundRobin}},
      42);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->NumRows(), 1000u);
  EXPECT_EQ((*table)->NumColumns(), 3u);
  // Round-robin hits every value exactly 100 times.
  const Column* r = *(*table)->FindColumn("r");
  EXPECT_EQ(r->Cardinality(), 10u);
}

TEST(GeneratorTest, DeterministicBySeed) {
  const auto a =
      GenerateTable("T", 200, {{"u", 20, Distribution::kUniform}}, 7);
  const auto b =
      GenerateTable("T", 200, {{"u", 20, Distribution::kUniform}}, 7);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t row = 0; row < 200; ++row) {
    EXPECT_EQ((*a)->column(0).ValueAt(row), (*b)->column(0).ValueAt(row));
  }
}

TEST(GeneratorTest, NullFractionRespected) {
  const auto table = GenerateTable(
      "T", 2000, {{"u", 10, Distribution::kUniform, 1.0, 0.25}}, 3);
  ASSERT_TRUE(table.ok());
  size_t nulls = 0;
  for (size_t row = 0; row < 2000; ++row) {
    nulls += (*table)->column(0).ValueIdAt(row) == kNullValueId ? 1 : 0;
  }
  EXPECT_GT(nulls, 2000 * 0.15);
  EXPECT_LT(nulls, 2000 * 0.35);
}

TEST(GeneratorTest, ZeroCardinalityRejected) {
  EXPECT_FALSE(
      GenerateTable("T", 10, {{"u", 0, Distribution::kUniform}}, 1).ok());
}

TEST(QueryMixTest, RangeShareMatchesTpcd) {
  QueryMixConfig config;
  config.num_queries = 1700;
  config.seed = 5;
  const auto queries = GenerateQueryMix("a", 500, config);
  EXPECT_EQ(queries.size(), 1700u);
  size_t range_like = 0;
  for (const Predicate& q : queries) {
    if (q.kind != Predicate::Kind::kEquals) {
      ++range_like;
    }
  }
  // 12/17 ≈ 0.706 of the queries should be range searches.
  const double share = static_cast<double>(range_like) / 1700.0;
  EXPECT_GT(share, 0.63);
  EXPECT_LT(share, 0.78);
}

TEST(QueryMixTest, RangesStayInDomain) {
  QueryMixConfig config;
  config.num_queries = 300;
  config.max_delta = 64;
  const auto queries = GenerateQueryMix("a", 100, config);
  for (const Predicate& q : queries) {
    if (q.kind == Predicate::Kind::kRange) {
      EXPECT_GE(q.lo, 0);
      EXPECT_LT(q.hi, 100);
      EXPECT_LE(q.lo, q.hi);
    } else if (q.kind == Predicate::Kind::kIn) {
      EXPECT_GE(q.values.size(), 2u);
      EXPECT_LE(q.values.size(), 64u);
    } else {
      EXPECT_EQ(q.kind, Predicate::Kind::kEquals);
      EXPECT_GE(q.value.int_value, 0);
      EXPECT_LT(q.value.int_value, 100);
    }
  }
}

TEST(StarSchemaTest, BuildsFigure5Hierarchy) {
  StarSchemaConfig config;
  config.fact_rows = 2000;
  config.num_products = 100;
  const auto schema = BuildStarSchema(config);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ((*schema)->sales->NumRows(), 2000u);
  EXPECT_EQ((*schema)->salespoints->NumRows(), 12u);
  EXPECT_EQ((*schema)->products->NumRows(), 100u);
  const auto x = (*schema)->salespoint_hierarchy.Members("alliance", "X");
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(x->size(), 8u);
  const auto d = (*schema)->salespoint_hierarchy.Members("company", "d");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, (std::vector<ValueId>{2, 3, 8, 9}));
}

TEST(StarSchemaTest, FactValueIdsEqualKeyValues) {
  StarSchemaConfig config;
  config.fact_rows = 500;
  config.num_products = 50;
  const auto schema = BuildStarSchema(config);
  ASSERT_TRUE(schema.ok());
  const Column* branch = *(*schema)->sales->FindColumn("branch");
  for (ValueId id = 0; id < branch->Cardinality(); ++id) {
    EXPECT_EQ(branch->ValueOf(id).int_value, static_cast<int64_t>(id));
  }
  const Column* product = *(*schema)->sales->FindColumn("product");
  for (ValueId id = 0; id < product->Cardinality(); ++id) {
    EXPECT_EQ(product->ValueOf(id).int_value, static_cast<int64_t>(id));
  }
}

TEST(StarSchemaTest, ForeignKeysRegistered) {
  StarSchemaConfig config;
  config.fact_rows = 200;
  config.num_products = 20;
  const auto schema = BuildStarSchema(config);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ((*schema)->catalog.foreign_keys().size(), 2u);
  EXPECT_EQ((*schema)->catalog.DimensionsOf("SALES").size(), 2u);
}

TEST(StarSchemaTest, GenericHierarchyForOtherSizes) {
  StarSchemaConfig config;
  config.fact_rows = 300;
  config.num_products = 10;
  config.num_branches = 20;
  const auto schema = BuildStarSchema(config);
  ASSERT_TRUE(schema.ok());
  const auto& levels = (*schema)->salespoint_hierarchy.levels();
  ASSERT_EQ(levels.size(), 2u);
  EXPECT_EQ(levels[0].groups.size(), 5u);  // 20 branches / 4.
  EXPECT_EQ(levels[1].groups.size(), 2u);  // 5 companies / 3, rounded up.
}

TEST(StarSchemaTest, TooFewFactRowsRejected) {
  StarSchemaConfig config;
  config.fact_rows = 5;
  config.num_products = 100;
  EXPECT_FALSE(BuildStarSchema(config).ok());
}

}  // namespace
}  // namespace ebi
