#include "index/value_list_index.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ebi {
namespace {

using testing_util::IntTable;
using testing_util::RandomIntTable;
using testing_util::ScanEquals;
using testing_util::ScanRange;

class ValueListIndexTest : public ::testing::Test {
 protected:
  void Init(std::unique_ptr<Table> table,
            ValueListIndexOptions options = {}) {
    table_ = std::move(table);
    index_ = std::make_unique<ValueListIndex>(
        &table_->column(0), &table_->existence(), &io_, options);
    ASSERT_TRUE(index_->Build().ok());
  }

  IoAccountant io_;
  std::unique_ptr<Table> table_;
  std::unique_ptr<ValueListIndex> index_;
};

TEST_F(ValueListIndexTest, EqualsMatchesScan) {
  Init(IntTable({4, 2, 4, 6, 2, 4}));
  for (int64_t v : {2, 4, 6, 9}) {
    const auto result = index_->EvaluateEquals(Value::Int(v));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result, ScanEquals(*table_, table_->column(0), v)) << v;
  }
}

TEST_F(ValueListIndexTest, RangeMatchesScan) {
  Init(IntTable({9, 4, 6, 2, 8, 0, 3, 7, 5, 1}));
  const auto result = index_->EvaluateRange(3, 7);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, ScanRange(*table_, table_->column(0), 3, 7));
}

TEST_F(ValueListIndexTest, DenseKeysUseBitmaps) {
  // Cardinality 4 over 400 rows: every key is dense.
  Init(RandomIntTable(400, 4, 1));
  EXPECT_DOUBLE_EQ(index_->FractionBitmapKeys(), 1.0);
  EXPECT_EQ(index_->NumVectors(), table_->column(0).Cardinality());
}

TEST_F(ValueListIndexTest, HighCardinalityDegradesToRidLists) {
  // The paper's critique: high cardinality -> sparse postings -> the
  // hybrid reduces to a plain B-tree (no bitmaps at all).
  ValueListIndexOptions options;
  options.bitmap_density_threshold = 1.0 / 64.0;
  Init(RandomIntTable(500, 450, 2), options);
  EXPECT_LT(index_->FractionBitmapKeys(), 0.05);
}

TEST_F(ValueListIndexTest, ThresholdControlsRepresentation) {
  ValueListIndexOptions all_bitmaps;
  all_bitmaps.bitmap_density_threshold = 0.0;
  Init(RandomIntTable(200, 50, 3), all_bitmaps);
  EXPECT_DOUBLE_EQ(index_->FractionBitmapKeys(), 1.0);

  ValueListIndexOptions no_bitmaps;
  no_bitmaps.bitmap_density_threshold = 2.0;
  Init(RandomIntTable(200, 50, 3), no_bitmaps);
  EXPECT_DOUBLE_EQ(index_->FractionBitmapKeys(), 0.0);
}

TEST_F(ValueListIndexTest, BothRepresentationsAnswerIdentically) {
  for (double threshold : {0.0, 0.05, 2.0}) {
    ValueListIndexOptions options;
    options.bitmap_density_threshold = threshold;
    auto table = RandomIntTable(300, 30, 4);
    IoAccountant io;
    ValueListIndex index(&table->column(0), &table->existence(), &io,
                         options);
    ASSERT_TRUE(index.Build().ok());
    for (int64_t v = 0; v < 30; v += 5) {
      const auto result = index.EvaluateEquals(Value::Int(v));
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(*result, ScanEquals(*table, table->column(0), v))
          << "threshold=" << threshold << " v=" << v;
    }
  }
}

TEST_F(ValueListIndexTest, AppendNewAndExistingKeys) {
  Init(IntTable({1, 2}));
  ASSERT_TRUE(table_->AppendRow({Value::Int(2)}).ok());
  ASSERT_TRUE(index_->Append(2).ok());
  ASSERT_TRUE(table_->AppendRow({Value::Int(9)}).ok());
  ASSERT_TRUE(index_->Append(3).ok());
  const auto two = index_->EvaluateEquals(Value::Int(2));
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(two->ToString(), "0110");
  const auto nine = index_->EvaluateEquals(Value::Int(9));
  ASSERT_TRUE(nine.ok());
  EXPECT_EQ(nine->ToString(), "0001");
}

TEST_F(ValueListIndexTest, DeletedRowsMasked) {
  Init(IntTable({3, 3, 3}));
  ASSERT_TRUE(table_->DeleteRow(0).ok());
  const auto result = index_->EvaluateEquals(Value::Int(3));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "011");
}

TEST_F(ValueListIndexTest, NullsSkipped) {
  Init(IntTable({1, INT64_MIN, 1}));
  const auto result = index_->EvaluateRange(0, 5);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "101");
}

TEST_F(ValueListIndexTest, LookupChargesDescent) {
  Init(RandomIntTable(500, 100, 5));
  io_.Reset();
  ASSERT_TRUE(index_->EvaluateEquals(table_->column(0).ValueAt(0)).ok());
  EXPECT_GE(io_.stats().nodes_read, 1u);
}

}  // namespace
}  // namespace ebi
