#include "util/bitvector.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace ebi {
namespace {

TEST(BitVectorTest, DefaultIsEmpty) {
  BitVector v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.IsZero());
  EXPECT_EQ(v.Count(), 0u);
}

TEST(BitVectorTest, ConstructAllZero) {
  BitVector v(100);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v.Count(), 0u);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_FALSE(v.Get(i));
  }
}

TEST(BitVectorTest, ConstructAllOne) {
  BitVector v(70, true);
  EXPECT_EQ(v.Count(), 70u);
  EXPECT_TRUE(v.Get(0));
  EXPECT_TRUE(v.Get(69));
}

TEST(BitVectorTest, AllOnesTailIsMasked) {
  // 70 bits use two words; the 58 spare bits of word 1 must stay zero so
  // Count() is exact.
  BitVector v(70, true);
  EXPECT_EQ(v.words().size(), 2u);
  EXPECT_EQ(v.words()[1], (uint64_t{1} << 6) - 1);
}

TEST(BitVectorTest, SetResetGet) {
  BitVector v(130);
  v.Set(0);
  v.Set(64);
  v.Set(129);
  EXPECT_TRUE(v.Get(0));
  EXPECT_TRUE(v.Get(64));
  EXPECT_TRUE(v.Get(129));
  EXPECT_EQ(v.Count(), 3u);
  v.Reset(64);
  EXPECT_FALSE(v.Get(64));
  EXPECT_EQ(v.Count(), 2u);
}

TEST(BitVectorTest, AssignSelectsSetOrReset) {
  BitVector v(10);
  v.Assign(3, true);
  EXPECT_TRUE(v.Get(3));
  v.Assign(3, false);
  EXPECT_FALSE(v.Get(3));
}

TEST(BitVectorTest, FromStringAndToStringRoundTrip) {
  const std::string s = "0101100111010";
  BitVector v = BitVector::FromString(s);
  EXPECT_EQ(v.size(), s.size());
  EXPECT_EQ(v.ToString(), s);
}

TEST(BitVectorTest, FromStringRejectsGarbage) {
  EXPECT_TRUE(BitVector::FromString("01x1").empty());
}

TEST(BitVectorTest, PushBackGrowsAcrossWords) {
  BitVector v;
  for (int i = 0; i < 200; ++i) {
    v.PushBack(i % 3 == 0);
  }
  EXPECT_EQ(v.size(), 200u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(v.Get(i), i % 3 == 0) << i;
  }
}

TEST(BitVectorTest, ResizeGrowZeroFills) {
  BitVector v(5, true);
  v.Resize(100);
  EXPECT_EQ(v.Count(), 5u);
  EXPECT_FALSE(v.Get(50));
}

TEST(BitVectorTest, ResizeShrinkDropsTail) {
  BitVector v(100, true);
  v.Resize(10);
  EXPECT_EQ(v.size(), 10u);
  EXPECT_EQ(v.Count(), 10u);
  // Growing again must not resurrect old bits.
  v.Resize(100);
  EXPECT_EQ(v.Count(), 10u);
}

TEST(BitVectorTest, ClearAndSetAll) {
  BitVector v(77);
  v.SetAll();
  EXPECT_EQ(v.Count(), 77u);
  v.Clear();
  EXPECT_TRUE(v.IsZero());
  EXPECT_EQ(v.size(), 77u);
}

TEST(BitVectorTest, LogicalOps) {
  const BitVector a = BitVector::FromString("110010");
  const BitVector b = BitVector::FromString("011011");
  EXPECT_EQ(And(a, b).ToString(), "010010");
  EXPECT_EQ(Or(a, b).ToString(), "111011");
  EXPECT_EQ(Xor(a, b).ToString(), "101001");
  EXPECT_EQ(Not(a).ToString(), "001101");
}

TEST(BitVectorTest, NotKeepsTailZero) {
  BitVector v(70);
  const BitVector inverted = Not(v);
  EXPECT_EQ(inverted.Count(), 70u);
}

TEST(BitVectorTest, AndNotWith) {
  BitVector a = BitVector::FromString("1111");
  const BitVector b = BitVector::FromString("0101");
  a.AndNotWith(b);
  EXPECT_EQ(a.ToString(), "1010");
}

TEST(BitVectorTest, FlipAllTwiceIsIdentity) {
  BitVector v = BitVector::FromString("10110");
  const BitVector original = v;
  v.FlipAll();
  v.FlipAll();
  EXPECT_EQ(v, original);
}

TEST(BitVectorTest, ForEachSetBitVisitsAscending) {
  BitVector v(300);
  v.Set(1);
  v.Set(63);
  v.Set(64);
  v.Set(299);
  std::vector<size_t> seen;
  v.ForEachSetBit([&seen](size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<size_t>{1, 63, 64, 299}));
}

TEST(BitVectorTest, ToPositions) {
  BitVector v = BitVector::FromString("0100101");
  EXPECT_EQ(v.ToPositions(), (std::vector<uint32_t>{1, 4, 6}));
}

TEST(BitVectorTest, SparsityOfEmptyVectorIsZero) {
  EXPECT_DOUBLE_EQ(BitVector().Sparsity(), 0.0);
}

TEST(BitVectorTest, Sparsity) {
  BitVector v(10);
  v.Set(0);
  EXPECT_DOUBLE_EQ(v.Sparsity(), 0.9);
}

TEST(BitVectorTest, EqualityIncludesSize) {
  EXPECT_NE(BitVector(10), BitVector(11));
  EXPECT_EQ(BitVector(10), BitVector(10));
}

TEST(BitVectorTest, SizeBytesIsWordGranular) {
  EXPECT_EQ(BitVector(1).SizeBytes(), 8u);
  EXPECT_EQ(BitVector(64).SizeBytes(), 8u);
  EXPECT_EQ(BitVector(65).SizeBytes(), 16u);
}

// Property sweep: logical ops agree with bit-by-bit evaluation across many
// sizes, including word-boundary sizes.
// --- Tail-word hygiene regressions -------------------------------------
// Count()/IsZero()/ForEachSetBit assume every padding bit above size() is
// zero. These pin the cases that used to leak set padding bits.

TEST(BitVectorTailTest, EveryMutatingOpLeavesTailClean) {
  Rng rng(71);
  for (size_t n : {size_t{1}, size_t{63}, size_t{65}, size_t{127}}) {
    BitVector a(n);
    BitVector b(n);
    for (size_t i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.5)) {
        a.Set(i);
      }
      if (rng.Bernoulli(0.5)) {
        b.Set(i);
      }
    }
    BitVector v = a;
    EXPECT_TRUE(v.OrWith(b).TailIsClean()) << "or n=" << n;
    v = a;
    EXPECT_TRUE(v.XorWith(b).TailIsClean()) << "xor n=" << n;
    v = a;
    EXPECT_TRUE(v.AndWith(b).TailIsClean()) << "and n=" << n;
    v = a;
    EXPECT_TRUE(v.AndNotWith(b).TailIsClean()) << "andnot n=" << n;
    v = a;
    EXPECT_TRUE(v.FlipAll().TailIsClean()) << "not n=" << n;
    v = a;
    v.SetAll();
    EXPECT_TRUE(v.TailIsClean()) << "setall n=" << n;
    v = a;
    EXPECT_TRUE(v.OrWithMany({&b}).TailIsClean()) << "or_many n=" << n;
    v = a;
    EXPECT_TRUE(v.AndWithMany({&b}).TailIsClean()) << "and_many n=" << n;
  }
}

TEST(BitVectorTailTest, OrWithLongerOperandDoesNotPollutePadding) {
  // The historical bug: OR/XOR against a (documented zero-extension
  // semantics) longer operand copied that operand's valid bits into this
  // vector's padding range, inflating Count() from then on. The size
  // contract is two-sided — mismatches assert in debug builds and fall
  // back to zero-extension in release — so each build type checks its
  // half.
  BitVector longer(128, true);
#ifdef NDEBUG
  BitVector shorter(70);
  shorter.Set(0);
  shorter.OrWith(longer);
  EXPECT_EQ(shorter.size(), 70u);
  EXPECT_EQ(shorter.Count(), 70u);
  EXPECT_TRUE(shorter.TailIsClean());

  BitVector x(70);
  x.XorWith(longer);
  EXPECT_EQ(x.Count(), 70u);
  EXPECT_TRUE(x.TailIsClean());
#else
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  BitVector shorter(70);
  EXPECT_DEATH(shorter.OrWith(longer), "OrWith operand size mismatch");
  BitVector x(70);
  EXPECT_DEATH(x.XorWith(longer), "XorWith operand size mismatch");
#endif
}

TEST(BitVectorTailTest, FusedManyOpsMatchChainedBinaryOps) {
  Rng rng(72);
  for (size_t n : {size_t{64}, size_t{100}, size_t{4097}}) {
    std::vector<BitVector> operands(5, BitVector(n));
    for (BitVector& v : operands) {
      for (size_t i = 0; i < n; ++i) {
        if (rng.Bernoulli(0.3)) {
          v.Set(i);
        }
      }
    }
    std::vector<const BitVector*> ptrs;
    for (const BitVector& v : operands) {
      ptrs.push_back(&v);
    }
    BitVector fused_or(n);
    fused_or.OrWithMany(ptrs);
    BitVector chained_or(n);
    for (const BitVector& v : operands) {
      chained_or.OrWith(v);
    }
    EXPECT_EQ(fused_or, chained_or) << "n=" << n;

    BitVector fused_and(n, true);
    fused_and.AndWithMany(ptrs);
    BitVector chained_and(n, true);
    for (const BitVector& v : operands) {
      chained_and.AndWith(v);
    }
    EXPECT_EQ(fused_and, chained_and) << "n=" << n;
  }
}

TEST(BitVectorTailTest, ManyOpsWithEmptyOperandListAreIdentity) {
  BitVector v = BitVector::FromString("1011");
  const BitVector before = v;
  v.OrWithMany({});
  EXPECT_EQ(v, before);
  v.AndWithMany({});
  EXPECT_EQ(v, before);
}

// --- BlitFrom boundary regressions -------------------------------------

TEST(BitVectorBlitTest, ZeroLengthSourceIsNoOpAtAnyOffset) {
  BitVector dst(100);
  dst.Set(7);
  const BitVector empty;
  for (size_t offset : {size_t{0}, size_t{1}, size_t{63}, size_t{100}}) {
    BitVector v = dst;
    v.BlitFrom(empty, offset);
    EXPECT_EQ(v, dst) << "offset=" << offset;
  }
}

TEST(BitVectorBlitTest, WordAlignedFastPathMatchesShiftPath) {
  Rng rng(73);
  BitVector src(130);
  for (size_t i = 0; i < src.size(); ++i) {
    if (rng.Bernoulli(0.4)) {
      src.Set(i);
    }
  }
  // Aligned offset (multiple of 64) takes the fused-OR fast path; the
  // result must be identical to bit-by-bit placement.
  BitVector dst(300);
  dst.BlitFrom(src, 64);
  BitVector expect(300);
  src.ForEachSetBit([&expect](size_t i) { expect.Set(64 + i); });
  EXPECT_EQ(dst, expect);
}

TEST(BitVectorBlitTest, FuzzEveryOffsetMod64) {
  // Sweep offset mod 64 exhaustively with ragged source sizes so the
  // carry into the following word, the word-aligned fast path, and the
  // destination tail are all exercised.
  Rng rng(74);
  for (size_t offset = 0; offset < 64; ++offset) {
    const size_t src_bits = 65 + offset % 7;
    BitVector src(src_bits);
    for (size_t i = 0; i < src_bits; ++i) {
      if (rng.Bernoulli(0.5)) {
        src.Set(i);
      }
    }
    BitVector dst(offset + src_bits + 3);
    dst.Set(0);
    BitVector expect = dst;
    src.ForEachSetBit([&expect, offset](size_t i) {
      expect.Set(offset + i);
    });
    dst.BlitFrom(src, offset);
    EXPECT_EQ(dst, expect) << "offset=" << offset;
    EXPECT_TRUE(dst.TailIsClean()) << "offset=" << offset;
  }
}

TEST(BitVectorBlitTest, BlitIntoExactTailKeepsPaddingClean) {
  // Source lands exactly against the destination's partial last word.
  BitVector src(10, true);
  BitVector dst(74);
  dst.BlitFrom(src, 64);
  EXPECT_EQ(dst.Count(), 10u);
  EXPECT_TRUE(dst.TailIsClean());
}

class BitVectorPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BitVectorPropertyTest, OpsMatchBitwiseReference) {
  const size_t n = GetParam();
  Rng rng(n * 977 + 13);
  BitVector a(n);
  BitVector b(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.4)) {
      a.Set(i);
    }
    if (rng.Bernoulli(0.6)) {
      b.Set(i);
    }
  }
  const BitVector and_v = And(a, b);
  const BitVector or_v = Or(a, b);
  const BitVector xor_v = Xor(a, b);
  const BitVector not_a = Not(a);
  size_t expected_count = 0;
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(and_v.Get(i), a.Get(i) && b.Get(i));
    EXPECT_EQ(or_v.Get(i), a.Get(i) || b.Get(i));
    EXPECT_EQ(xor_v.Get(i), a.Get(i) != b.Get(i));
    EXPECT_EQ(not_a.Get(i), !a.Get(i));
    expected_count += a.Get(i) ? 1 : 0;
  }
  EXPECT_EQ(a.Count(), expected_count);
}

TEST_P(BitVectorPropertyTest, DeMorgan) {
  const size_t n = GetParam();
  Rng rng(n * 31 + 7);
  BitVector a(n);
  BitVector b(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.5)) {
      a.Set(i);
    }
    if (rng.Bernoulli(0.5)) {
      b.Set(i);
    }
  }
  EXPECT_EQ(Not(And(a, b)), Or(Not(a), Not(b)));
  EXPECT_EQ(Not(Or(a, b)), And(Not(a), Not(b)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitVectorPropertyTest,
                         ::testing::Values(1, 7, 63, 64, 65, 127, 128, 129,
                                           1000, 4096));

}  // namespace
}  // namespace ebi
