// Scaling of the partitioned parallel execution engine on the TPC-D
// flavoured workload: the same query stream runs through the serial
// planner and through ParallelSelectionExecutor over a threads x segments
// grid, verifying the merged bitmaps are bit-identical to the serial
// answers and reporting per-cell wall time and speedup.
//
// Speedup depends on the hardware parallelism actually available; on a
// single-core host every cell degenerates to serial-plus-overhead, while
// the bit-identity column must hold everywhere, on any machine.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "ebi/ebi.h"
#include "query/planner.h"

namespace ebi {
namespace {

Result<BitVector> RunOneSerial(AccessPathPlanner& planner,
                               const Predicate& q) {
  EBI_ASSIGN_OR_RETURN(SelectionResult r, planner.Select({q}));
  return std::move(r.rows);
}

void Run() {
  StarSchemaConfig config;
  config.fact_rows = 120000;
  config.num_products = 1000;
  auto schema_or = BuildStarSchema(config);
  if (!schema_or.ok()) {
    std::printf("schema build failed\n");
    return;
  }
  StarSchema& schema = **schema_or;
  const Table& sales = *schema.sales;

  QueryMixConfig mix;
  mix.num_queries = 120;
  mix.max_delta = 128;
  mix.seed = 404;
  const auto queries =
      GenerateQueryMix("product", config.num_products, mix);

  // Serial baseline: the unpartitioned planner with the same index kinds
  // the parallel executor builds per segment.
  IoAccountant serial_io;
  AccessPathPlanner serial(&sales, &serial_io);
  std::unique_ptr<SecondaryIndex> encoded = MakeSecondaryIndex(
      IndexKind::kEncodedBitmap, *sales.FindColumn("product"),
      &sales.existence(), &serial_io);
  std::unique_ptr<SecondaryIndex> sliced = MakeSecondaryIndex(
      IndexKind::kBitSliced, *sales.FindColumn("product"),
      &sales.existence(), &serial_io);
  if (!encoded->Build().ok() || !sliced->Build().ok()) {
    std::printf("serial index build failed\n");
    return;
  }
  serial.RegisterIndex("product", encoded.get());
  serial.RegisterIndex("product", sliced.get());

  std::vector<BitVector> reference;
  reference.reserve(queries.size());
  bench::Timer serial_timer;
  for (const Predicate& q : queries) {
    auto rows = RunOneSerial(serial, q);
    if (!rows.ok()) {
      std::printf("serial query failed: %s\n",
                  rows.status().ToString().c_str());
      return;
    }
    reference.push_back(std::move(rows).value());
  }
  const double serial_ms = serial_timer.ElapsedMs();

  bench::BenchReport report("parallel_scaling");
  report.BeginRun("serial");
  report.Metric("elapsed_ms", serial_ms);
  report.Metric("queries", queries.size());
  report.Metric("rows", sales.NumRows());

  std::printf("=== parallel scaling: %zu queries on SALES.product, n = %zu "
              "(serial %.1f ms, %zu hw threads) ===\n",
              queries.size(), sales.NumRows(), serial_ms,
              exec::ThreadPool::DefaultThreads());
  std::printf("%8s %9s %12s %9s %10s\n", "threads", "segments",
              "elapsed_ms", "speedup", "identical");

  for (const size_t threads : {1, 2, 4, 8}) {
    for (const size_t segments : {1, 3, 16}) {
      const size_t segment_rows =
          (sales.NumRows() + segments - 1) / segments;
      auto parts = SegmentedTable::Partition(sales, segment_rows);
      if (!parts.ok()) {
        std::printf("partition failed\n");
        return;
      }
      SegmentedTable segmented = std::move(parts).value();
      exec::ThreadPool pool(threads);
      IoAccountant io;
      ParallelSelectionExecutor executor(&segmented, &pool, &io);
      if (!executor.CreateIndex("product", IndexKind::kEncodedBitmap)
               .ok() ||
          !executor.CreateIndex("product", IndexKind::kBitSliced).ok()) {
        std::printf("parallel index build failed\n");
        return;
      }

      bool identical = true;
      bench::Timer timer;
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        auto result = executor.Select({queries[qi]});
        if (!result.ok() || !(result->rows == reference[qi])) {
          identical = false;
        }
      }
      const double elapsed_ms = timer.ElapsedMs();
      const double speedup = elapsed_ms > 0 ? serial_ms / elapsed_ms : 0;

      char label[32];
      std::snprintf(label, sizeof(label), "t%zu_s%zu", threads, segments);
      report.BeginRun(label);
      report.Metric("threads", threads);
      report.Metric("segments", segmented.NumSegments());
      report.Metric("elapsed_ms", elapsed_ms);
      report.Metric("speedup", speedup);
      report.Metric("identical", identical ? 1 : 0);

      std::printf("%8zu %9zu %12.1f %9.2f %10s\n", threads,
                  segmented.NumSegments(), elapsed_ms, speedup,
                  identical ? "yes" : "NO");
    }
  }
  std::printf(
      "(Bit-identity must hold in every cell; speedup tracks the host's\n"
      " core count and approaches 1.0 on a single-core machine, where the\n"
      " grid measures pure partitioning overhead instead.)\n");
}

}  // namespace
}  // namespace ebi

int main() {
  ebi::Run();
  return 0;
}
