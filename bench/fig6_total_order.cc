// Reproduces Figure 6: a total-order preserving encoding that is also
// optimized for a favored selection — {101,102,104,105} out of
// {101..106} — so that arbitrary "j < A < i" ranges keep working while
// the favored IN-list costs one bitmap vector.

#include <cstdio>

#include "bench_util.h"
#include "encoding/optimizer.h"
#include "encoding/well_defined.h"
#include "index/encoded_bitmap_index.h"

namespace ebi {
namespace {

void PrintMapping(const char* name, const MappingTable& mapping) {
  std::printf("%-22s", name);
  for (ValueId v = 0; v < mapping.NumValues(); ++v) {
    const uint64_t code = *mapping.CodeOf(v);
    std::printf(" %lld->", 101 + static_cast<long long>(v));
    for (int b = mapping.width() - 1; b >= 0; --b) {
      std::printf("%llu", static_cast<unsigned long long>((code >> b) & 1));
    }
  }
  std::printf("\n");
}

void Run() {
  std::printf("=== Figure 6: total-order preserving encoding ===\n");
  const PredicateSet favored = {{0, 1, 3, 4}};  // {101,102,104,105}.

  const auto paper = MappingTable::Create(
      3, {0b000, 0b001, 0b010, 0b100, 0b101, 0b110});
  const auto sequential = MakeTotalOrderMapping(6);
  const auto optimized = TotalOrderOptimizedEncode(6, favored);
  if (!paper.ok() || !sequential.ok() || !optimized.ok()) {
    std::printf("mapping construction failed\n");
    return;
  }
  PrintMapping("fig6-paper", *paper);
  PrintMapping("sequential", *sequential);
  PrintMapping("order-optimized", *optimized);

  std::printf("\n%-22s %-24s %-22s\n", "mapping",
              "cost IN{101,102,104,105}", "cost 102<=A<=104");
  for (const auto& [name, mapping] :
       {std::pair<const char*, const MappingTable*>{"fig6-paper", &*paper},
        {"sequential", &*sequential},
        {"order-optimized", &*optimized}}) {
    const auto in_cost = AccessCost(*mapping, {0, 1, 3, 4});
    const auto range_cost = AccessCost(*mapping, {1, 2, 3});
    std::printf("%-22s %-24d %-22d\n", name,
                in_cost.ok() ? *in_cost : -1,
                range_cost.ok() ? *range_cost : -1);
  }

  // Order preservation check: a < b must imply code(a) < code(b).
  bool ordered = true;
  for (ValueId v = 0; v + 1 < 6; ++v) {
    ordered &= *optimized->CodeOf(v) < *optimized->CodeOf(v + 1);
  }
  std::printf("\norder-optimized mapping preserves the total order: %s\n",
              ordered ? "yes" : "NO");
  std::printf(
      "(Paper: the Figure 6 mapping keeps 101<...<106 while the favored\n"
      " selection reduces to a single bitmap vector.)\n");
}

}  // namespace
}  // namespace ebi

int main() {
  ebi::Run();
  return 0;
}
