// Reproduces Figure 10: number of bit vectors (and bytes) required by
// simple vs encoded bitmap indexes as the attribute cardinality grows —
// analytical model next to the sizes the real indexes report.

#include <cstdio>
#include <vector>

#include "analysis/cost_model.h"
#include "bench_util.h"
#include "index/encoded_bitmap_index.h"
#include "index/simple_bitmap_index.h"

namespace ebi {
namespace {

void Run() {
  const size_t n = 8192;
  std::printf("=== Figure 10: space vs cardinality (n = %zu rows) ===\n", n);
  std::printf("%-8s %-12s %-12s %-14s %-14s %-12s %-12s\n", "m",
              "simple_vecs", "enc_vecs", "simple_bytes", "enc_bytes",
              "meas_simple", "meas_enc");
  const std::vector<size_t> cardinalities = {2,   4,    8,    16,  32,  64,
                                             128, 256,  512,  1024, 2048,
                                             4096, 8192};
  for (size_t m : cardinalities) {
    auto table = bench::RoundRobinTable(n, m);
    IoAccountant io;
    SimpleBitmapIndex simple(&table->column(0), &table->existence(), &io);
    EncodedBitmapIndexOptions eopts;
    eopts.reserve_void_zero = false;
    EncodedBitmapIndex encoded(&table->column(0), &table->existence(), &io,
                               eopts);
    if (!simple.Build().ok() || !encoded.Build().ok()) {
      std::printf("%-8zu build failed\n", m);
      continue;
    }
    std::printf("%-8zu %-12zu %-12zu %-14.0f %-14.0f %-12zu %-12zu\n", m,
                SimpleBitmapVectors(m), EncodedBitmapVectors(m),
                SimpleBitmapBytes(n, m), EncodedBitmapBytes(n, m),
                simple.SizeBytes(), encoded.SizeBytes());
  }
  std::printf(
      "(Simple grows linearly in m; encoded logarithmically — the paper's\n"
      " 12000-product example needs 12000 vs 14 vectors.)\n");
}

}  // namespace
}  // namespace ebi

int main() {
  ebi::Run();
  return 0;
}
