// Reproduces the Section 2.1 cost analysis: the cardinality at which a
// simple bitmap index stops being smaller than a B-tree (m < 11.52 p / M,
// i.e. m ~ 93 for p = 4 KB, M = 512), model and measurement side by side.

#include <cstdio>
#include <vector>

#include "analysis/cost_model.h"
#include "bench_util.h"
#include "index/btree_index.h"
#include "index/encoded_bitmap_index.h"
#include "index/simple_bitmap_index.h"

namespace ebi {
namespace {

void Run() {
  const size_t page = 4096;
  const size_t degree = 512;
  const size_t n = 50000;
  std::printf("=== Section 2.1: bitmap-vs-B-tree space crossover ===\n");
  std::printf("model crossover cardinality: 11.52*p/M = %.2f (p=%zu, M=%zu)\n\n",
              BitmapVsBTreeCrossoverCardinality(page, degree), page, degree);
  std::printf("%-8s %-16s %-16s %-16s %-16s %-10s\n", "m", "simple_model_B",
              "btree_model_B", "simple_meas_B", "btree_meas_B", "winner");

  const std::vector<size_t> cardinalities = {8,  16, 32,  64, 80,
                                             92, 96, 128, 256, 512};
  for (size_t m : cardinalities) {
    auto table = bench::RoundRobinTable(n, m);
    IoAccountant io(page);
    SimpleBitmapIndex simple(&table->column(0), &table->existence(), &io);
    BTreeIndex btree(&table->column(0), &table->existence(), &io);
    if (!simple.Build().ok() || !btree.Build().ok()) {
      std::printf("%-8zu build failed\n", m);
      continue;
    }
    const double simple_model = SimpleBitmapBytes(n, m);
    const double btree_model = BTreeBytes(n, page, degree);
    std::printf("%-8zu %-16.0f %-16.0f %-16zu %-16zu %-10s\n", m,
                simple_model, btree_model, simple.SizeBytes(),
                btree.SizeBytes(),
                simple.SizeBytes() < btree.SizeBytes() ? "bitmap" : "btree");
  }

  std::printf(
      "\nBuild-cost terms (Section 2.1, unit operations, n = %zu):\n", n);
  std::printf("%-8s %-16s %-16s %-16s\n", "m", "simple O(nm)",
              "encoded O(nlogm)", "btree");
  for (size_t m : {size_t{16}, size_t{64}, size_t{256}, size_t{1024}}) {
    std::printf("%-8zu %-16.0f %-16.0f %-16.0f\n", m,
                SimpleBuildCost(n, m), EncodedBuildCost(n, m),
                BTreeBuildCost(n, m, page, degree));
  }
}

}  // namespace
}  // namespace ebi

int main() {
  ebi::Run();
  return 0;
}
