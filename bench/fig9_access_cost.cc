// Reproduces Figure 9(a)/(b): bitmap vectors accessed per range selection
// of width δ, simple (c_s) vs encoded (c_e) bitmap indexing, for |A| = 50
// and |A| = 1000 — plus the measured counts from the real index
// implementations and the reduction-off ablation.

#include <cstdio>
#include <vector>

#include "analysis/cost_model.h"
#include "bench_util.h"
#include "index/encoded_bitmap_index.h"
#include "index/simple_bitmap_index.h"

namespace ebi {
namespace {

std::vector<size_t> DeltaSamples(size_t m) {
  std::vector<size_t> deltas;
  for (size_t d = 1; d < m; d *= 2) {
    deltas.push_back(d);
    const size_t mid = d + d / 2;
    if (d >= 4 && mid < m) {
      deltas.push_back(mid);
    }
  }
  deltas.push_back(m);
  return deltas;
}

void RunCase(size_t m, size_t n, bench::BenchReport* report) {
  std::printf("\nFigure 9 series, |A| = %zu (n = %zu rows)\n", m, n);
  std::printf("%-6s %-10s %-10s %-10s %-10s %-12s %-12s\n", "delta",
              "cs_model", "cs_meas", "ce_best", "ce_worst", "ce_meas",
              "ce_noreduce");

  auto table = bench::RoundRobinTable(n, m);
  IoAccountant simple_io;
  IoAccountant encoded_io;
  IoAccountant raw_io;
  SimpleBitmapIndex simple(&table->column(0), &table->existence(),
                           &simple_io);
  // Custom mapping: value v -> codeword v (the paper's best-case layout
  // for consecutive selections), with the top codeword reserved for void
  // tuples so Theorem 2.1 still applies (no existence AND is charged).
  const int k = CeWorst(m);
  std::vector<uint64_t> codes(m);
  for (size_t v = 0; v < m; ++v) {
    codes[v] = v;
  }
  const uint64_t void_code = (uint64_t{1} << k) - 1;
  auto mapping = MappingTable::Create(k, codes, void_code);
  auto raw_mapping = MappingTable::Create(k, codes, void_code);
  EncodedBitmapIndex encoded(&table->column(0), &table->existence(),
                             &encoded_io);
  EncodedBitmapIndexOptions ropts;
  ropts.reduction.enable_reduction = false;
  EncodedBitmapIndex unreduced(&table->column(0), &table->existence(),
                               &raw_io, ropts);
  if (!mapping.ok() || !raw_mapping.ok() ||
      !encoded.SetMapping(std::move(mapping).value()).ok() ||
      !unreduced.SetMapping(std::move(raw_mapping).value()).ok() ||
      !simple.Build().ok() || !encoded.Build().ok() ||
      !unreduced.Build().ok()) {
    std::printf("build failed\n");
    return;
  }

  for (size_t delta : DeltaSamples(m)) {
    const auto values = bench::ConsecutiveValues(0, delta);
    simple_io.Reset();
    encoded_io.Reset();
    raw_io.Reset();
    const auto a = simple.EvaluateIn(values);
    const auto b = encoded.EvaluateIn(values);
    const auto c = unreduced.EvaluateIn(values);
    if (!a.ok() || !b.ok() || !c.ok() || !(*a == *b) || !(*b == *c)) {
      std::printf("%-6zu DISAGREEMENT\n", delta);
      continue;
    }
    // The measured encoded count may undercut the paper's best-case model:
    // the implementation also exploits unused codewords as don't-cares.
    std::printf("%-6zu %-10zu %-10llu %-10d %-10d %-12llu %-12llu\n", delta,
                CsForDelta(delta),
                static_cast<unsigned long long>(
                    simple_io.stats().vectors_read),
                CeBest(delta, m), CeWorst(m),
                static_cast<unsigned long long>(
                    encoded_io.stats().vectors_read),
                static_cast<unsigned long long>(raw_io.stats().vectors_read));
    report->BeginRun("m=" + std::to_string(m) +
                     ",delta=" + std::to_string(delta));
    report->Metric("cs_model", CsForDelta(delta));
    report->Metric("cs_measured", simple_io.stats().vectors_read);
    report->Metric("ce_best", CeBest(delta, m));
    report->Metric("ce_worst", CeWorst(m));
    report->Metric("ce_measured", encoded_io.stats().vectors_read);
    report->Metric("ce_noreduce", raw_io.stats().vectors_read);
  }
  std::printf(
      "(cs_meas includes the existence-bitmap AND; the encoded index needs\n"
      " none thanks to its reserved void codeword — Theorem 2.1.\n"
      " ce_noreduce is the logical-reduction-off ablation: it pins c_e at\n"
      " the worst case ceil(log2|A|) = %d. ce_meas can undercut ce_best\n"
      " because the implementation also uses unused codewords as\n"
      " don't-cares.)\n",
      CeWorst(m));
}

}  // namespace
}  // namespace ebi

int main() {
  std::printf("=== Figure 9: bitmap vectors accessed vs selection width ===\n");
  ebi::bench::BenchReport report("fig9_access_cost");
  ebi::RunCase(50, 20000, &report);    // Figure 9(a).
  ebi::RunCase(1000, 20000, &report);  // Figure 9(b).
  return 0;
}
