// Reproduces the Section 3.1 sparsity analysis: simple bitmap vectors are
// (m-1)/m zeros while encoded slices sit near 1/2 independent of m; also
// shows what run-length compression buys each of them.

#include <cstdio>
#include <vector>

#include "analysis/cost_model.h"
#include "bench_util.h"
#include "index/encoded_bitmap_index.h"
#include "index/simple_bitmap_index.h"
#include "util/rle_bitmap.h"

namespace ebi {
namespace {

double AverageSliceDensity(const EncodedBitmapIndex& index) {
  if (index.slices().empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (const BitVector& slice : index.slices()) {
    total += 1.0 - slice.Sparsity();
  }
  return total / static_cast<double>(index.slices().size());
}

void Run() {
  const size_t n = 20000;
  std::printf("=== Section 3.1: sparsity vs cardinality (n = %zu) ===\n", n);
  std::printf("%-8s %-14s %-14s %-14s %-16s %-16s\n", "m", "model (m-1)/m",
              "simple_meas", "encoded_meas", "rle_ratio_simple",
              "rle_ratio_enc");
  for (size_t m : std::vector<size_t>{2, 8, 32, 128, 512, 2048}) {
    auto table = bench::RoundRobinTable(n, m);
    IoAccountant io;
    SimpleBitmapIndexOptions sopts;
    sopts.compressed = true;
    SimpleBitmapIndex simple(&table->column(0), &table->existence(), &io,
                             sopts);
    SimpleBitmapIndex plain(&table->column(0), &table->existence(), &io);
    EncodedBitmapIndexOptions eopts;
    eopts.reserve_void_zero = false;
    EncodedBitmapIndex encoded(&table->column(0), &table->existence(), &io,
                               eopts);
    if (!simple.Build().ok() || !plain.Build().ok() ||
        !encoded.Build().ok()) {
      std::printf("%-8zu build failed\n", m);
      continue;
    }
    // Compression ratio of the compressed simple index vs its plain twin,
    // and of RLE-compressing each encoded slice.
    const double rle_simple = static_cast<double>(plain.SizeBytes()) /
                              static_cast<double>(simple.SizeBytes());
    size_t enc_plain = 0;
    size_t enc_rle = 0;
    for (const BitVector& slice : encoded.slices()) {
      enc_plain += slice.SizeBytes();
      enc_rle += RleBitmap::Compress(slice).SizeBytes();
    }
    const double rle_enc =
        static_cast<double>(enc_plain) / static_cast<double>(enc_rle);
    std::printf("%-8zu %-14.4f %-14.4f %-14.4f %-16.2f %-16.2f\n", m,
                SimpleSparsity(m), plain.AverageSparsity(),
                1.0 - AverageSliceDensity(encoded), rle_simple, rle_enc);
  }
  std::printf(
      "(Sparse simple vectors compress well; ~50%%-dense encoded slices do\n"
      " not — encoding already removed the redundancy.)\n");
}

}  // namespace
}  // namespace ebi

int main() {
  ebi::Run();
  return 0;
}
