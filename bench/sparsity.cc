// Reproduces the Section 3.1 sparsity analysis: simple bitmap vectors are
// (m-1)/m zeros while encoded slices sit near 1/2 independent of m; also
// shows what compression buys each of them, and compares the physical
// bitmap formats (plain / RLE / EWAH) head-to-head on size and AND/OR
// throughput across sparsity levels.

#include <cstdio>
#include <vector>

#include "analysis/cost_model.h"
#include "bench_util.h"
#include "index/encoded_bitmap_index.h"
#include "index/simple_bitmap_index.h"
#include "util/ewah_bitmap.h"
#include "util/random.h"
#include "util/rle_bitmap.h"

namespace ebi {
namespace {

double AverageSliceDensity(const EncodedBitmapIndex& index) {
  if (index.slices().empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (const BitVector& slice : index.slices()) {
    total += 1.0 - slice.Sparsity();
  }
  return total / static_cast<double>(index.slices().size());
}

void RunSparsityVsCardinality(bench::BenchReport* report) {
  const size_t n = 20000;
  std::printf("=== Section 3.1: sparsity vs cardinality (n = %zu) ===\n", n);
  std::printf("%-8s %-14s %-14s %-14s %-16s %-16s\n", "m", "model (m-1)/m",
              "simple_meas", "encoded_meas", "rle_ratio_simple",
              "rle_ratio_enc");
  for (size_t m : std::vector<size_t>{2, 8, 32, 128, 512, 2048}) {
    auto table = bench::RoundRobinTable(n, m);
    IoAccountant io;
    SimpleBitmapIndex simple(
        &table->column(0), &table->existence(), &io,
        SimpleBitmapIndexOptions::WithFormat(BitmapFormat::kRle));
    SimpleBitmapIndex plain(&table->column(0), &table->existence(), &io);
    EncodedBitmapIndexOptions eopts;
    eopts.reserve_void_zero = false;
    EncodedBitmapIndex encoded(&table->column(0), &table->existence(), &io,
                               eopts);
    if (!simple.Build().ok() || !plain.Build().ok() ||
        !encoded.Build().ok()) {
      std::printf("%-8zu build failed\n", m);
      continue;
    }
    // Compression ratio of the compressed simple index vs its plain twin,
    // and of RLE-compressing each encoded slice.
    const double rle_simple = static_cast<double>(plain.SizeBytes()) /
                              static_cast<double>(simple.SizeBytes());
    size_t enc_plain = 0;
    size_t enc_rle = 0;
    for (const BitVector& slice : encoded.slices()) {
      enc_plain += slice.SizeBytes();
      enc_rle += RleBitmap::Compress(slice).SizeBytes();
    }
    const double rle_enc =
        static_cast<double>(enc_plain) / static_cast<double>(enc_rle);
    std::printf("%-8zu %-14.4f %-14.4f %-14.4f %-16.2f %-16.2f\n", m,
                SimpleSparsity(m), plain.AverageSparsity(),
                1.0 - AverageSliceDensity(encoded), rle_simple, rle_enc);
    report->BeginRun("m=" + std::to_string(m));
    report->Metric("sparsity_model", SimpleSparsity(m));
    report->Metric("sparsity_simple", plain.AverageSparsity());
    report->Metric("sparsity_encoded", 1.0 - AverageSliceDensity(encoded));
    report->Metric("rle_ratio_simple", rle_simple);
    report->Metric("rle_ratio_encoded", rle_enc);
  }
  std::printf(
      "(Sparse simple vectors compress well; ~50%%-dense encoded slices do\n"
      " not — encoding already removed the redundancy.)\n");
}

BitVector RandomBits(size_t n, double density, Rng* rng) {
  BitVector v(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng->Bernoulli(density)) {
      v.Set(i);
    }
  }
  return v;
}

/// Ops/ms for one timed loop; `sink` defeats dead-code elimination.
template <typename Fn>
double TimeOps(int reps, size_t* sink, Fn&& op) {
  bench::Timer timer;
  for (int r = 0; r < reps; ++r) {
    *sink += op();
  }
  const double ms = timer.ElapsedMs();
  return ms > 0.0 ? static_cast<double>(reps) / ms : 0.0;
}

void RunFormatComparison(bench::BenchReport* report) {
  const size_t n = 1 << 20;
  const int reps = 20;
  std::printf(
      "\n=== Physical formats: size and AND/OR throughput (n = %zu bits, "
      "%d reps) ===\n",
      n, reps);
  std::printf("%-10s %-8s %12s %10s %14s %14s\n", "density", "format",
              "bytes", "ratio", "and_ops/ms", "or_ops/ms");
  Rng rng(42);
  size_t sink = 0;
  for (double density : std::vector<double>{0.0005, 0.01, 0.2, 0.5}) {
    const BitVector a = RandomBits(n, density, &rng);
    const BitVector b = RandomBits(n, density, &rng);
    const RleBitmap ra = RleBitmap::Compress(a);
    const RleBitmap rb = RleBitmap::Compress(b);
    const EwahBitmap ea = EwahBitmap::Compress(a);
    const EwahBitmap eb = EwahBitmap::Compress(b);

    const double plain_bytes = static_cast<double>(a.SizeBytes());
    const double plain_and = TimeOps(
        reps, &sink, [&] { return And(a, b).Count() & 1u; });
    const double plain_or = TimeOps(
        reps, &sink, [&] { return Or(a, b).Count() & 1u; });
    std::printf("%-10.4f %-8s %12zu %10.2f %14.1f %14.1f\n", density,
                "plain", a.SizeBytes(), 1.0, plain_and, plain_or);
    const auto record = [&](const char* format, size_t bytes,
                            double and_ops, double or_ops) {
      report->BeginRun("density=" + std::to_string(density) + "," + format);
      report->Metric("bytes", bytes);
      report->Metric("ratio", plain_bytes / static_cast<double>(bytes));
      report->Metric("and_ops_per_ms", and_ops);
      report->Metric("or_ops_per_ms", or_ops);
    };
    record("plain", a.SizeBytes(), plain_and, plain_or);

    const double rle_and = TimeOps(
        reps, &sink, [&] { return RleBitmap::And(ra, rb).Count() & 1u; });
    const double rle_or = TimeOps(
        reps, &sink, [&] { return RleBitmap::Or(ra, rb).Count() & 1u; });
    std::printf("%-10.4f %-8s %12zu %10.2f %14.1f %14.1f\n", density, "rle",
                ra.SizeBytes(),
                plain_bytes / static_cast<double>(ra.SizeBytes()), rle_and,
                rle_or);
    record("rle", ra.SizeBytes(), rle_and, rle_or);

    const double ewah_and = TimeOps(
        reps, &sink, [&] { return EwahBitmap::And(ea, eb).Count() & 1u; });
    const double ewah_or = TimeOps(
        reps, &sink, [&] { return EwahBitmap::Or(ea, eb).Count() & 1u; });
    std::printf("%-10.4f %-8s %12zu %10.2f %14.1f %14.1f\n", density,
                "ewah", ea.SizeBytes(),
                plain_bytes / static_cast<double>(ea.SizeBytes()), ewah_and,
                ewah_or);
    record("ewah", ea.SizeBytes(), ewah_and, ewah_or);
  }
  std::printf(
      "(sink=%zu) Word-aligned EWAH keeps plain-like AND/OR speed while\n"
      "matching RLE's footprint on sparse inputs; near 50%% density both\n"
      "compressed forms converge to the plain size.\n",
      sink & 1u);
}

void Run() {
  bench::BenchReport report("sparsity");
  RunSparsityVsCardinality(&report);
  RunFormatComparison(&report);
}

}  // namespace
}  // namespace ebi

int main() {
  ebi::Run();
  return 0;
}
