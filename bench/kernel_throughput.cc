// Throughput grid for the runtime-dispatched bitmap kernels (DESIGN.md
// §10): every backend the running CPU supports x every kernel op x a
// sweep of bit densities, reported as GB/s of words processed and as
// speedup over the scalar oracle on the same op/density cell. The
// differential harness (tests/kernel_differential_test.cc) proves the
// backends bit-identical before these numbers mean anything.
//
// Density does not change the work these word-parallel ops do; the sweep
// is kept anyway to show exactly that (and to catch a backend that
// accidentally branches on data).

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "util/kernels/kernels.h"
#include "util/random.h"

namespace ebi {
namespace {

std::vector<uint64_t> RandomWords(size_t n, double density, Rng* rng) {
  std::vector<uint64_t> words(n);
  for (uint64_t& w : words) {
    if (density <= 0.0) {
      w = 0;
    } else if (density >= 1.0) {
      w = ~uint64_t{0};
    } else if (density < 0.5) {
      w = rng->Bernoulli(density * 2) ? rng->Next() : 0;
    } else {
      w = rng->Bernoulli((1.0 - density) * 2) ? rng->Next() : ~uint64_t{0};
    }
  }
  return words;
}

/// Times `body` (one full pass over the spans) and returns GB/s given the
/// bytes one pass touches.
double MeasureGbps(const std::function<void()>& body, double bytes_per_pass,
                   int passes) {
  body();  // Warm the cache and the branch predictors.
  const bench::Timer timer;
  for (int i = 0; i < passes; ++i) {
    body();
  }
  const double seconds = timer.ElapsedMs() / 1000.0;
  if (seconds <= 0.0) {
    return 0.0;
  }
  return bytes_per_pass * passes / seconds / 1e9;
}

// Sink for popcount results so the measured loop cannot be elided.
volatile size_t g_popcount_sink = 0;

void RunGrid() {
  bench::BenchReport report("kernel_throughput");
  const size_t n = size_t{1} << 18;  // 2 MiB spans: larger than L1/L2.
  const int passes = 24;
  const double word_bytes = static_cast<double>(n) * 8.0;
  Rng rng(20260808);

  const std::vector<const kernels::BitmapKernels*>& backends =
      kernels::Supported();
  std::printf("kernel throughput: %zu-word spans, %d passes, backends:",
              n, passes);
  for (const kernels::BitmapKernels* backend : backends) {
    std::printf(" %s", backend->name);
  }
  std::printf(" (active: %s)\n\n", kernels::Active().name);
  std::printf("%-8s %-10s %-9s %12s %10s\n", "backend", "op", "density",
              "GB/s", "vs scalar");

  for (double density : {0.02, 0.5, 0.98}) {
    std::vector<uint64_t> dst = RandomWords(n, density, &rng);
    const std::vector<uint64_t> src = RandomWords(n, density, &rng);
    // 8 sources for the fused many-ops (the min-term OR chain shape).
    std::vector<std::vector<uint64_t>> many;
    for (size_t j = 0; j < 8; ++j) {
      many.push_back(RandomWords(n, density, &rng));
    }
    std::vector<const uint64_t*> srcs;
    for (const auto& s : many) {
      srcs.push_back(s.data());
    }

    // GB/s baselines from the scalar oracle, keyed by op order below.
    std::vector<double> scalar_gbps;
    for (const kernels::BitmapKernels* backend : backends) {
      const kernels::BitmapKernels& k = *backend;
      uint64_t* d = dst.data();
      const uint64_t* s = src.data();
      const struct {
        const char* op;
        std::function<void()> body;
        double bytes;  // read + written per pass
      } cells[] = {
          {"and", [&k, d, s, n] { k.and_words(d, s, n); }, 3 * word_bytes},
          {"or", [&k, d, s, n] { k.or_words(d, s, n); }, 3 * word_bytes},
          {"xor", [&k, d, s, n] { k.xor_words(d, s, n); }, 3 * word_bytes},
          {"andnot", [&k, d, s, n] { k.andnot_words(d, s, n); },
           3 * word_bytes},
          {"not", [&k, d, n] { k.not_words(d, n); }, 2 * word_bytes},
          {"fill", [&k, d, n] { k.fill_words(d, 0x5555aaaa5555aaaaULL, n); },
           word_bytes},
          {"copy", [&k, d, s, n] { k.copy_words(d, s, n); },
           2 * word_bytes},
          {"popcount",
           [&k, s, n] { g_popcount_sink = k.popcount_words(s, n); },
           word_bytes},
          {"or_many8",
           [&k, d, &srcs, n] { k.or_many(d, srcs.data(), srcs.size(), n); },
           9 * word_bytes},
          {"and_many8",
           [&k, d, &srcs, n] { k.and_many(d, srcs.data(), srcs.size(), n); },
           9 * word_bytes},
      };
      for (size_t c = 0; c < std::size(cells); ++c) {
        const double gbps = MeasureGbps(cells[c].body, cells[c].bytes,
                                        passes);
        if (backend == backends.front()) {
          scalar_gbps.push_back(gbps);
        }
        const double speedup =
            scalar_gbps[c] > 0.0 ? gbps / scalar_gbps[c] : 0.0;
        std::printf("%-8s %-10s %-9.2f %12.2f %9.2fx\n", k.name,
                    cells[c].op, density, gbps, speedup);
        report.BeginRun(std::string(k.name) + "/" + cells[c].op +
                        "/density=" + std::to_string(density));
        report.Metric("gb_per_s", gbps);
        report.Metric("speedup_vs_scalar", speedup);
        report.Metric("words", n);
      }
    }
  }
}

}  // namespace
}  // namespace ebi

int main() {
  ebi::RunGrid();
  return 0;
}
