// Telemetry overhead: what always-on production telemetry costs the
// serve path (DESIGN.md §11).
//
// Five configurations of the same read-only serve workload:
//
//   no_sink        telemetry disabled entirely (the pre-telemetry serve
//                  path: stage histograms + counters only) — baseline
//   sampling_off   telemetry on, sample rate 0, no recorder
//   sampling_1pct  1% trace sampling
//   sampling_100pct  every request traced and captured into the ring
//   full           100% sampling + workload recorder + periodic exporter
//
// Rounds are interleaved across configurations (round-robin, not
// back-to-back) so cache warm-up and frequency scaling bias every
// configuration equally, and each configuration reports its best round —
// the standard best-of-N discipline for throughput ratios.
//
// The acceptance bar (ISSUE 7 / scripts/check_bench_json.sh): the
// sampling_off/no_sink throughput ratio stays within a documented
// threshold (2% locally; the CI gate allows 10% for noisy shared
// runners).
//
// Emits BENCH_obs_overhead.json.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "exec/thread_pool.h"
#include "serve/query_service.h"

namespace ebi {
namespace {

constexpr size_t kRows = 1 << 14;
constexpr size_t kCardinality = 64;
constexpr size_t kClients = 2;
constexpr size_t kWorkers = 2;
constexpr size_t kQueriesPerClient = 500;
constexpr size_t kRounds = 3;

struct Config {
  const char* label;
  bool enabled;
  double sample_rate;
  bool recorder;
  bool exporter;
};

constexpr Config kConfigs[] = {
    {"no_sink", false, 0.0, false, false},
    {"sampling_off", true, 0.0, false, false},
    {"sampling_1pct", true, 0.01, false, false},
    {"sampling_100pct", true, 1.0, false, false},
    {"full", true, 1.0, true, true},
};

std::string ScratchDir() {
  if (const char* env = std::getenv("EBI_BENCH_JSON_DIR");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  return ".";
}

/// One round of the workload under `config`; returns queries per second.
double RunOnce(const Config& config) {
  serve::ServeOptions options;
  options.worker_threads = kWorkers;
  // Deep queue: this bench measures telemetry cost, not admission
  // control; shedding would silently shrink the measured work.
  options.queue_depth = 1024;
  options.telemetry.enabled = config.enabled;
  options.telemetry.sample_rate = config.sample_rate;
  if (config.recorder) {
    options.telemetry.workload_log_path =
        ScratchDir() + "/obs_overhead.workload.jsonl";
    // Rotate a few times over the run so rotation cost is represented.
    options.telemetry.workload_options.rotate_bytes = 64u << 10;
    options.telemetry.workload_options.max_files = 3;
  }
  if (config.exporter) {
    options.telemetry.export_every = 256;
    options.telemetry.export_path_prefix =
        ScratchDir() + "/obs_overhead.export";
  }
  serve::QueryService service(options);
  bench::CheckOk(service.Start(bench::RoundRobinTable(kRows, kCardinality),
                               {{"a", IndexKind::kEncodedBitmap}}));

  bench::Timer wall;
  exec::ThreadPool drivers(kClients);
  drivers.ParallelFor(0, kClients, [&](size_t client) {
    for (size_t q = 0; q < kQueriesPerClient; ++q) {
      const int64_t v = static_cast<int64_t>(
          (client * kQueriesPerClient + q) % kCardinality);
      bench::CheckOk(service.Select({Predicate::Eq("a", Value::Int(v))}));
    }
  });
  const double wall_ms = wall.ElapsedMs();
  bench::CheckOk(service.Shutdown());
  const double completed = static_cast<double>(kClients * kQueriesPerClient);
  return wall_ms > 0 ? completed / (wall_ms / 1000.0) : 0.0;
}

}  // namespace
}  // namespace ebi

int main() {
  using ebi::kConfigs;
  constexpr size_t kNumConfigs = sizeof(kConfigs) / sizeof(kConfigs[0]);
  std::printf("obs_overhead: %zu clients x %zu queries, %zu rounds "
              "interleaved, best-of\n",
              ebi::kClients, ebi::kQueriesPerClient, ebi::kRounds);

  double best[kNumConfigs] = {};
  // Warm-up pass (discarded): first-touch of the table, index build
  // paths and metric registrations.
  ebi::RunOnce(kConfigs[0]);
  for (size_t round = 0; round < ebi::kRounds; ++round) {
    for (size_t c = 0; c < kNumConfigs; ++c) {
      best[c] = std::max(best[c], ebi::RunOnce(kConfigs[c]));
    }
  }

  const double baseline = best[0];
  ebi::bench::BenchReport report("obs_overhead");
  std::printf("%-16s %12s %10s\n", "config", "qps", "vs_no_sink");
  for (size_t c = 0; c < kNumConfigs; ++c) {
    const double ratio = baseline > 0 ? best[c] / baseline : 0.0;
    std::printf("%-16s %12.0f %10.4f\n", kConfigs[c].label, best[c], ratio);
    report.BeginRun(kConfigs[c].label);
    report.Metric("throughput_qps", best[c]);
    report.Metric("vs_no_sink", ratio);
  }
  return 0;
}
