// End-to-end TPC-D-flavoured query templates on the SALES star schema,
// executed entirely through the library: selections via the cost-based
// planner over bitmap indexes, star joins via the encoded bitmapped join
// index, and aggregates on bit-sliced indexes — no fact-table scans.
//
// Templates (miniatures of the TPC-D query shapes the paper counts —
// 12 of 17 involve range search):
//   T1  "pricing summary"  : range on day, SUM/AVG/COUNT of quantity.
//   T2  "product window"   : IN-list on product, range on day, COUNT.
//   T3  "alliance revenue" : hierarchy roll-up (join-like) with SUM.
//   T4  "point lookup"     : single product, COUNT (the c_s-friendly one).
//   T5  "category volume"  : star join on PRODUCTS.category, SUM.

#include <cstdio>

#include "bench_util.h"
#include "ebi/ebi.h"
#include "query/planner.h"

namespace ebi {
namespace {

void Run() {
  StarSchemaConfig config;
  config.fact_rows = 120000;
  config.num_products = 1000;
  config.seed = 404;
  auto schema_or = BuildStarSchema(config);
  if (!schema_or.ok()) {
    std::printf("schema build failed\n");
    return;
  }
  StarSchema& schema = **schema_or;
  const BitVector* existence = &schema.sales->existence();
  const Column* product = *schema.sales->FindColumn("product");
  const Column* branch = *schema.sales->FindColumn("branch");
  const Column* day = *schema.sales->FindColumn("day");
  const Column* quantity = *schema.sales->FindColumn("quantity");

  IoAccountant io;
  SimpleBitmapIndex product_simple(product, existence, &io);
  EncodedBitmapIndex product_encoded(product, existence, &io);
  EncodedBitmapIndex branch_encoded(branch, existence, &io);
  BitSlicedIndex day_sliced(day, existence, &io);
  EncodedBitmapIndex day_encoded(day, existence, &io);
  BitSlicedIndex quantity_sliced(quantity, existence, &io);
  EncodedBitmapJoinIndex join(product, existence, schema.products,
                              "product_id", &io);
  if (!product_simple.Build().ok() || !product_encoded.Build().ok() ||
      !branch_encoded.Build().ok() || !day_sliced.Build().ok() ||
      !day_encoded.Build().ok() || !quantity_sliced.Build().ok() ||
      !join.Build().ok()) {
    std::printf("index build failed\n");
    return;
  }
  AccessPathPlanner planner(schema.sales, &io);
  planner.RegisterIndex("product", &product_simple);
  planner.RegisterIndex("product", &product_encoded);
  planner.RegisterIndex("branch", &branch_encoded);
  planner.RegisterIndex("day", &day_sliced);
  planner.RegisterIndex("day", &day_encoded);

  bench::BenchReport report("tpcd_queries");
  const auto record = [&report, &io](const char* label, size_t rows) {
    report.BeginRun(label);
    report.Metric("rows", rows);
    report.Metric("vectors_read", io.stats().vectors_read);
    report.Metric("pages_read", io.stats().pages_read);
    report.Metric("bytes_read", io.stats().bytes_read);
  };

  std::printf("=== TPC-D-style templates on SALES (%zu rows) ===\n",
              schema.sales->NumRows());
  std::printf("%-4s %-34s %-10s %-14s %-24s\n", "id", "template", "rows",
              "answer", "io (per query)");

  // T1: range on day + aggregates over quantity.
  {
    io.Reset();
    const auto sel = planner.Select({Predicate::Between("day", 30, 120)});
    if (sel.ok()) {
      const auto sum = SumBitSliced(&quantity_sliced, sel->rows);
      bool empty = false;
      const auto avg = AvgBitSliced(&quantity_sliced, sel->rows, &empty);
      if (sum.ok() && avg.ok()) {
        char answer[64];
        std::snprintf(answer, sizeof(answer), "sum=%lld avg=%.1f",
                      static_cast<long long>(*sum), *avg);
        std::printf("%-4s %-34s %-10zu %-14s %-24s\n", "T1",
                    "day in [30,120]: SUM,AVG(qty)", sel->count, answer,
                    io.stats().ToString().c_str());
        record("T1", sel->count);
      }
    }
  }

  // T2: IN-list on product AND range on day.
  {
    io.Reset();
    std::vector<Value> products;
    for (int64_t p = 100; p < 140; ++p) {
      products.push_back(Value::Int(p));
    }
    const auto sel =
        planner.Select({Predicate::In("product", products),
                        Predicate::Between("day", 0, 180)});
    if (sel.ok()) {
      std::printf("%-4s %-34s %-10zu %-14s %-24s\n", "T2",
                  "product IN(40) AND day<=180", sel->count, "-",
                  io.stats().ToString().c_str());
      record("T2", sel->count);
    }
  }

  // T3: alliance roll-up with SUM(quantity) per alliance.
  {
    io.Reset();
    int64_t total = 0;
    size_t rows = 0;
    for (const char* alliance : {"X", "Y", "Z"}) {
      const auto members =
          schema.salespoint_hierarchy.Members("alliance", alliance);
      if (!members.ok()) {
        continue;
      }
      std::vector<Value> branches;
      for (ValueId b : *members) {
        branches.push_back(Value::Int(static_cast<int64_t>(b)));
      }
      const auto sel = branch_encoded.EvaluateIn(branches);
      if (!sel.ok()) {
        continue;
      }
      const auto sum = SumBitSliced(&quantity_sliced, *sel);
      if (sum.ok()) {
        total += *sum;
        rows += sel->Count();
      }
    }
    char answer[64];
    std::snprintf(answer, sizeof(answer), "sum(3 rollups)=%lld",
                  static_cast<long long>(total));
    std::printf("%-4s %-34s %-10zu %-14s %-24s\n", "T3",
                "alliance rollup: SUM(qty)", rows, answer,
                io.stats().ToString().c_str());
    record("T3", rows);
  }

  // T4: point lookup.
  {
    io.Reset();
    const auto sel =
        planner.Select({Predicate::Eq("product", Value::Int(7))});
    if (sel.ok()) {
      std::printf("%-4s %-34s %-10zu %-14s %-24s\n", "T4",
                  "product = 7: COUNT", sel->count, "-",
                  io.stats().ToString().c_str());
      record("T4", sel->count);
    }
  }

  // T5: star join on the dimension attribute.
  {
    io.Reset();
    const auto sel =
        join.FactRowsWhere(Predicate::Eq("category", Value::Int(3)));
    if (sel.ok()) {
      const auto sum = SumBitSliced(&quantity_sliced, *sel);
      char answer[64];
      std::snprintf(answer, sizeof(answer), "sum=%lld",
                    sum.ok() ? static_cast<long long>(*sum) : -1);
      std::printf("%-4s %-34s %-10zu %-14s %-24s\n", "T5",
                  "join: category=3, SUM(qty)", sel->Count(), answer,
                  io.stats().ToString().c_str());
      record("T5", sel->Count());
    }
  }

  std::printf(
      "\n(Every template runs on bitmap vectors and slices alone — the\n"
      " fact table is never scanned. T4 is the shape where simple bitmaps\n"
      " win and the planner picks them; everything else routes to encoded\n"
      " or bit-sliced structures.)\n");
}

}  // namespace
}  // namespace ebi

int main() {
  ebi::Run();
  return 0;
}
