// Disk-resident encoded bitmap index: the k slice vectors live in a
// file-backed store with an LRU buffer pool, so the paper's cost metric
// (vectors read) becomes actual file reads. Sweeps the pool size to show
// the working-set behaviour: once the pool holds the slices the reduced
// retrieval expressions reference, queries stop touching the disk.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "index/cold_encoded_bitmap_index.h"
#include "workload/query_mix.h"

namespace ebi {
namespace {

void Run() {
  const size_t n = 50000;
  const size_t m = 500;
  auto table = bench::RoundRobinTable(n, m);

  QueryMixConfig mix;
  mix.num_queries = 120;
  mix.max_delta = 100;
  mix.seed = 5;
  const auto queries = GenerateQueryMix("a", m, mix);

  std::printf("=== Cold encoded bitmap index: buffer-pool sweep ===\n");
  std::printf("n = %zu rows, |A| = %zu (k = 10 slices), %zu-query mix\n\n",
              n, m, queries.size());
  std::printf("%-12s %-14s %-12s %-12s %-10s\n", "pool_slices",
              "vector_reads", "hits", "misses", "hit_rate");

  for (size_t pool : std::vector<size_t>{1, 2, 4, 8, 16}) {
    IoAccountant io;
    ColdEncodedBitmapIndexOptions options;
    options.pool_pages = pool;
    ColdEncodedBitmapIndex index(&table->column(0), &table->existence(),
                                 &io, options);
    if (!index.Build().ok()) {
      std::printf("build failed\n");
      return;
    }
    io.Reset();
    index.ResetStoreStats();
    for (const Predicate& q : queries) {
      switch (q.kind) {
        case Predicate::Kind::kEquals:
          bench::CheckOk(index.EvaluateEquals(q.value));
          break;
        case Predicate::Kind::kIn:
          bench::CheckOk(index.EvaluateIn(q.values));
          break;
        default:
          bench::CheckOk(index.EvaluateRange(q.lo, q.hi));
      }
    }
    const BitmapStoreStats& stats = index.store_stats();
    std::printf("%-12zu %-14llu %-12llu %-12llu %-10.2f\n", pool,
                static_cast<unsigned long long>(io.stats().vectors_read),
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses),
                stats.HitRate());
  }
  std::printf(
      "\n(With a pool >= the slice count, every query after warm-up is\n"
      " answered from memory; tiny pools page per query — but even then a\n"
      " query faults at most the vectors its *reduced* expression needs.)\n");
}

}  // namespace
}  // namespace ebi

int main() {
  ebi::Run();
  return 0;
}
