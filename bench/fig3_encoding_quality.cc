// Reproduces Figure 3 / Theorems 2.2-2.3: how the choice of encoding
// changes the number of bitmap vectors a selection must read, on the
// paper's 8-value domain with the two overlapping selections
// {a,b,c,d} and {c,d,e,f} — well-defined vs improper vs random vs the
// library's optimizer, model and measured.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "encoding/optimizer.h"
#include "encoding/well_defined.h"
#include "index/encoded_bitmap_index.h"
#include "util/random.h"

namespace ebi {
namespace {

struct Candidate {
  const char* name;
  MappingTable mapping;
};

void Run() {
  const PredicateSet selections = {{0, 1, 2, 3}, {2, 3, 4, 5}};

  std::vector<Candidate> candidates;
  // Figure 3(a): the paper's well-defined mapping.
  candidates.push_back(
      {"fig3a-well-defined",
       std::move(MappingTable::Create(
                     3, {0b000, 0b100, 0b001, 0b101, 0b011, 0b111, 0b010,
                         0b110}))
           .value()});
  // Figure 3(b): the paper's improper mapping.
  candidates.push_back(
      {"fig3b-improper",
       std::move(MappingTable::Create(
                     3, {0b000, 0b011, 0b001, 0b101, 0b100, 0b111, 0b010,
                         0b110}))
           .value()});
  candidates.push_back(
      {"sequential", std::move(MakeSequentialMapping(8)).value()});
  candidates.push_back({"gray", std::move(MakeGrayMapping(8)).value()});
  Rng rng(99);
  candidates.push_back(
      {"random", std::move(MakeRandomMapping(8, &rng)).value()});
  OptimizerOptions oopts;
  oopts.iterations = 3000;
  candidates.push_back(
      {"annealed", std::move(AnnealEncode(8, selections, oopts)).value()});

  std::printf("=== Figure 3: encoding quality on selections "
              "{a,b,c,d}, {c,d,e,f} ===\n");
  std::printf("%-20s %-14s %-14s %-12s %-14s %-14s\n", "encoding",
              "cost{abcd}", "cost{cdef}", "well_def?", "meas{abcd}",
              "meas{cdef}");

  auto table = bench::RoundRobinTable(8000, 8);
  for (Candidate& c : candidates) {
    const int cost1 = *AccessCost(c.mapping, selections[0]);
    const int cost2 = *AccessCost(c.mapping, selections[1]);
    const auto wd1 = IsWellDefined(c.mapping, selections[0], 8);
    const auto wd2 = IsWellDefined(c.mapping, selections[1], 8);
    const bool well = wd1.ok() && wd2.ok() && *wd1 && *wd2;

    IoAccountant io;
    EncodedBitmapIndex index(&table->column(0), &table->existence(), &io);
    MappingTable copy = std::move(c.mapping);
    if (!index.SetMapping(std::move(copy)).ok() || !index.Build().ok()) {
      std::printf("%-20s build failed\n", c.name);
      continue;
    }
    io.Reset();
    bench::CheckOk(index.EvaluateIn(bench::ConsecutiveValues(0, 4)));
    const uint64_t meas1 = io.stats().vectors_read;
    io.Reset();
    bench::CheckOk(index.EvaluateIn(bench::ConsecutiveValues(2, 4)));
    const uint64_t meas2 = io.stats().vectors_read;
    std::printf("%-20s %-14d %-14d %-12s %-14llu %-14llu\n", c.name, cost1,
                cost2, well ? "yes" : "no",
                static_cast<unsigned long long>(meas1),
                static_cast<unsigned long long>(meas2));
  }
  std::printf(
      "(Paper: the Figure 3(a) mapping needs 1 vector per selection, the\n"
      " improper 3(b) mapping needs 3 — Theorem 2.2/2.3. The measured\n"
      " columns add one existence-bitmap read: all 8 codewords are taken,\n"
      " so no void codeword can be reserved on this full code space.)\n");
}

}  // namespace
}  // namespace ebi

int main() {
  ebi::Run();
  return 0;
}
