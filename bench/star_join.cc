// Star-join benchmark (Section 4's join-index family): answer
// "SELECT fact rows WHERE dim.attr = c" three ways —
//   (a) encoded bitmapped join index (this library's construction),
//   (b) per-key probing through a B-tree on the fact FK,
//   (c) a simple bitmap index on the fact FK (one vector per key).
// The encoded join index does the fact-side work in <= ceil(log2 |D|)
// vector reads regardless of how many dimension rows qualify.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "ebi/ebi.h"

namespace ebi {
namespace {

void Run() {
  StarSchemaConfig config;
  config.fact_rows = 100000;
  config.num_products = 2000;
  config.seed = 77;
  auto schema_or = BuildStarSchema(config);
  if (!schema_or.ok()) {
    std::printf("schema build failed\n");
    return;
  }
  StarSchema& schema = **schema_or;
  const Column* fk = *schema.sales->FindColumn("product");
  const Column* category = *schema.products->FindColumn("category");
  const BitVector* existence = &schema.sales->existence();

  IoAccountant join_io;
  IoAccountant btree_io;
  IoAccountant simple_io;
  EncodedBitmapJoinIndex join_index(fk, existence, schema.products,
                                    "product_id", &join_io);
  BTreeIndex btree(fk, existence, &btree_io);
  SimpleBitmapIndex simple(fk, existence, &simple_io);
  if (!join_index.Build().ok() || !btree.Build().ok() ||
      !simple.Build().ok()) {
    std::printf("index build failed\n");
    return;
  }
  std::printf("=== Star join: SALES (%zu rows) x PRODUCTS (%zu rows, "
              "%zu categories) ===\n",
              schema.sales->NumRows(), schema.products->NumRows(),
              category->Cardinality());
  std::printf("join index holds %zu bitmap vectors (simple bitmapped join "
              "index would hold %zu)\n\n",
              join_index.NumVectors(), schema.products->NumRows());

  std::printf("%-14s %-8s %-8s %-14s %-16s %-16s\n", "dim predicate",
              "keys", "rows", "join_vectors", "btree_nodes",
              "simple_vectors");
  for (int64_t cat = 0; cat < 4; ++cat) {
    const Predicate pred = Predicate::Eq("category", Value::Int(cat));
    join_io.Reset();
    btree_io.Reset();
    simple_io.Reset();

    const auto a = join_index.FactRowsWhere(pred);
    if (!a.ok()) {
      continue;
    }
    // Baselines: resolve qualifying keys by dimension scan, then probe.
    std::vector<Value> keys;
    for (size_t row = 0; row < schema.products->NumRows(); ++row) {
      if (category->ValueAt(row).int_value == cat) {
        keys.push_back(
            (*schema.products->FindColumn("product_id"))->ValueAt(row));
      }
    }
    const auto b = btree.EvaluateIn(keys);
    const auto c = simple.EvaluateIn(keys);
    if (!b.ok() || !c.ok() || !(*a == *b) || !(*b == *c)) {
      std::printf("category=%lld DISAGREEMENT\n",
                  static_cast<long long>(cat));
      continue;
    }
    std::printf("category=%-5lld %-8zu %-8zu %-14llu %-16llu %-16llu\n",
                static_cast<long long>(cat), keys.size(), a->Count(),
                static_cast<unsigned long long>(
                    join_io.stats().vectors_read),
                static_cast<unsigned long long>(btree_io.stats().nodes_read),
                static_cast<unsigned long long>(
                    simple_io.stats().vectors_read));
  }
  std::printf(
      "\n(50 qualifying keys cost the B-tree 50 root-to-leaf descents and\n"
      " the simple bitmap index 50 vector ORs; the encoded join index\n"
      " reduces the whole key set to one Boolean expression over\n"
      " ceil(log2|D|) vectors — bitmap cooperativity applied to joins.)\n");
}

}  // namespace
}  // namespace ebi

int main() {
  ebi::Run();
  return 0;
}
