#ifndef EBI_BENCH_BENCH_UTIL_H_
#define EBI_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "storage/table.h"

namespace ebi {
namespace bench {

/// Builds a one-column table where every value 0..m-1 occurs n/m times
/// round-robin, so ValueId == value and consecutive-value selections map to
/// consecutive codewords under a sequential encoding.
inline std::unique_ptr<Table> RoundRobinTable(size_t n, size_t m) {
  auto table = std::make_unique<Table>("T");
  if (!table->AddColumn("a", Column::Type::kInt64).ok()) {
    return nullptr;
  }
  for (size_t r = 0; r < n; ++r) {
    if (!table->AppendRow({Value::Int(static_cast<int64_t>(r % m))}).ok()) {
      return nullptr;
    }
  }
  return table;
}

/// Consecutive IN-list {first, ..., first+delta-1} as Values.
inline std::vector<Value> ConsecutiveValues(int64_t first, size_t delta) {
  std::vector<Value> values;
  values.reserve(delta);
  for (size_t i = 0; i < delta; ++i) {
    values.push_back(Value::Int(first + static_cast<int64_t>(i)));
  }
  return values;
}

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bench
}  // namespace ebi

#endif  // EBI_BENCH_BENCH_UTIL_H_
