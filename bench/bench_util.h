#ifndef EBI_BENCH_BENCH_UTIL_H_
#define EBI_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "storage/table.h"
#include "util/status.h"

namespace ebi {
namespace bench {

/// Builds a one-column table where every value 0..m-1 occurs n/m times
/// round-robin, so ValueId == value and consecutive-value selections map to
/// consecutive codewords under a sequential encoding.
inline std::unique_ptr<Table> RoundRobinTable(size_t n, size_t m) {
  auto table = std::make_unique<Table>("T");
  if (!table->AddColumn("a", Column::Type::kInt64).ok()) {
    return nullptr;
  }
  for (size_t r = 0; r < n; ++r) {
    if (!table->AppendRow({Value::Int(static_cast<int64_t>(r % m))}).ok()) {
      return nullptr;
    }
  }
  return table;
}

/// Aborts the bench loudly when a fallible call failed — measurement
/// loops must never swallow an error and time a no-op instead.
inline void CheckOk(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench: %s\n", status.ToString().c_str());
    std::abort();
  }
}

/// Result<T> overload; returns the value so timed expressions still
/// compute their answer.
template <typename T>
T CheckOk(Result<T> result) {
  CheckOk(result.ok() ? Status::OK() : result.status());
  return std::move(result).value();
}

/// Consecutive IN-list {first, ..., first+delta-1} as Values.
inline std::vector<Value> ConsecutiveValues(int64_t first, size_t delta) {
  std::vector<Value> values;
  values.reserve(delta);
  for (size_t i = 0; i < delta; ++i) {
    values.push_back(Value::Int(first + static_cast<int64_t>(i)));
  }
  return values;
}

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Machine-readable bench output: collects labelled runs of named numeric
/// metrics and writes BENCH_<name>.json on destruction. The destination
/// directory is $EBI_BENCH_JSON_DIR (falling back to the working
/// directory); writing is silent so the human-readable stdout of every
/// bench stays byte-identical. Schema (validated by
/// scripts/check_bench_json.sh):
///
///   {"bench": "<name>", "schema_version": 1,
///    "runs": [{"label": "...", "metrics": {"<metric>": <number>}}]}
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  ~BenchReport() { Write(); }

  /// Starts a new labelled run; subsequent Metric calls attach to it.
  void BeginRun(const std::string& label) {
    runs_.push_back({label, {}});
  }

  void Metric(const std::string& key, double value) {
    if (runs_.empty()) {
      BeginRun("default");
    }
    runs_.back().metrics.emplace_back(key, value);
  }
  /// Integral convenience overload (counters, sizes, page counts).
  template <typename T, typename = std::enable_if_t<std::is_integral_v<T>>>
  void Metric(const std::string& key, T value) {
    Metric(key, static_cast<double>(value));
  }

  std::string ToJson() const {
    obs::JsonWriter w;
    w.BeginObject();
    w.Key("bench");
    w.String(name_);
    w.Key("schema_version");
    w.Int(1);
    w.Key("runs");
    w.BeginArray();
    for (const Run& run : runs_) {
      w.BeginObject();
      w.Key("label");
      w.String(run.label);
      w.Key("metrics");
      w.BeginObject();
      for (const auto& [key, value] : run.metrics) {
        w.Key(key);
        w.Number(value);
      }
      w.EndObject();
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    return w.str();
  }

 private:
  struct Run {
    std::string label;
    std::vector<std::pair<std::string, double>> metrics;
  };

  void Write() const {
    std::string dir = ".";
    if (const char* env = std::getenv("EBI_BENCH_JSON_DIR");
        env != nullptr && env[0] != '\0') {
      dir = env;
    }
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      return;  // Export is best-effort; never disturb the bench itself.
    }
    const std::string json = ToJson();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }

  std::string name_;
  std::vector<Run> runs_;
};

}  // namespace bench
}  // namespace ebi

#endif  // EBI_BENCH_BENCH_UTIL_H_
