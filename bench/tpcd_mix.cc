// Reproduces the Section 3.2 workload argument: on a TPC-D-flavoured mix
// (12 of 17 query templates involve range search), encoded bitmap indexing
// wins on total bitmap-vector reads and stays close on point queries.
// Runs the same query stream through every index family on the SALES star
// schema's product column and reports I/O plus wall time.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "ebi/ebi.h"
#include "query/planner.h"

namespace ebi {
namespace {

struct Contender {
  std::string name;
  std::unique_ptr<SecondaryIndex> index;
  std::unique_ptr<IoAccountant> io;
  double ms = 0;
  size_t mismatches = 0;
};

void Run() {
  StarSchemaConfig config;
  config.fact_rows = 100000;
  config.num_products = 1000;
  auto schema_or = BuildStarSchema(config);
  if (!schema_or.ok()) {
    std::printf("schema build failed\n");
    return;
  }
  StarSchema& schema = **schema_or;
  const Column* product = *schema.sales->FindColumn("product");
  const BitVector* existence = &schema.sales->existence();

  std::vector<Contender> contenders;
  auto add = [&](std::string name,
                 std::function<std::unique_ptr<SecondaryIndex>(
                     IoAccountant*)> make) {
    Contender c;
    c.name = std::move(name);
    c.io = std::make_unique<IoAccountant>();
    c.index = make(c.io.get());
    contenders.push_back(std::move(c));
  };
  add("simple-bitmap", [&](IoAccountant* io) {
    return std::make_unique<SimpleBitmapIndex>(product, existence, io);
  });
  add("encoded-bitmap", [&](IoAccountant* io) {
    return std::make_unique<EncodedBitmapIndex>(product, existence, io);
  });
  add("bit-sliced", [&](IoAccountant* io) {
    return std::make_unique<BitSlicedIndex>(product, existence, io);
  });
  add("btree", [&](IoAccountant* io) {
    return std::make_unique<BTreeIndex>(product, existence, io);
  });
  add("value-list-hybrid", [&](IoAccountant* io) {
    return std::make_unique<ValueListIndex>(product, existence, io);
  });
  add("range-based-bitmap", [&](IoAccountant* io) {
    return std::make_unique<RangeBasedBitmapIndex>(product, existence, io);
  });
  add("projection", [&](IoAccountant* io) {
    return std::make_unique<ProjectionIndex>(product, existence, io);
  });
  for (Contender& c : contenders) {
    if (!c.index->Build().ok()) {
      std::printf("%s build failed\n", c.name.c_str());
      return;
    }
  }

  QueryMixConfig mix;
  mix.num_queries = 170;  // 10x the TPC-D template count.
  mix.max_delta = 256;
  mix.seed = 1998;
  const auto queries =
      GenerateQueryMix("product", config.num_products, mix);
  size_t range_queries = 0;
  for (const Predicate& q : queries) {
    range_queries += q.kind != Predicate::Kind::kEquals ? 1 : 0;
  }

  std::printf("=== TPC-D-flavoured mix: %zu queries (%zu range-search, "
              "%.0f%%) on SALES.product, n = %zu, |A| = %zu ===\n",
              queries.size(), range_queries,
              100.0 * range_queries / queries.size(),
              schema.sales->NumRows(), product->Cardinality());

  // Reference answers from the first contender.
  std::vector<BitVector> reference;
  for (Contender& c : contenders) {
    bench::Timer timer;
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const Predicate& q = queries[qi];
      Result<BitVector> rows = BitVector();
      switch (q.kind) {
        case Predicate::Kind::kEquals:
          rows = c.index->EvaluateEquals(q.value);
          break;
        case Predicate::Kind::kIn:
          rows = c.index->EvaluateIn(q.values);
          break;
        default:
          rows = c.index->EvaluateRange(q.lo, q.hi);
      }
      if (!rows.ok()) {
        ++c.mismatches;
        continue;
      }
      if (&c == &contenders.front()) {
        reference.push_back(std::move(rows).value());
      } else if (!(*rows == reference[qi])) {
        ++c.mismatches;
      }
    }
    c.ms = timer.ElapsedMs();
  }

  std::printf("%-20s %10s %10s %12s %10s %10s %10s\n", "index", "ms",
              "vectors", "MB_read", "pages", "nodes", "mismatch");
  for (const Contender& c : contenders) {
    const IoStats& s = c.io->stats();
    std::printf("%-20s %10.1f %10llu %12.1f %10llu %10llu %10zu\n",
                c.name.c_str(), c.ms,
                static_cast<unsigned long long>(s.vectors_read),
                static_cast<double>(s.bytes_read) / 1e6,
                static_cast<unsigned long long>(s.pages_read),
                static_cast<unsigned long long>(s.nodes_read),
                c.mismatches);
  }
  std::printf(
      "(Expected shape per the paper: the encoded index reads ~log2|A|\n"
      " vectors per range query while the simple index reads delta of\n"
      " them; with |A| = 1000 and the 12/17 range share the encoded total\n"
      " is an order of magnitude lower. Point queries are the one case\n"
      " where simple wins — 1 vs ceil(log2|A|) vectors.)\n");

  // Cost-based planning: simple for points, encoded/bit-sliced for
  // ranges, chosen per query by EstimatePages.
  IoAccountant planned_io;
  SimpleBitmapIndex p_simple(product, existence, &planned_io);
  EncodedBitmapIndex p_encoded(product, existence, &planned_io);
  BitSlicedIndex p_sliced(product, existence, &planned_io);
  if (!p_simple.Build().ok() || !p_encoded.Build().ok() ||
      !p_sliced.Build().ok()) {
    std::printf("planned build failed\n");
    return;
  }
  AccessPathPlanner planner(schema.sales, &planned_io);
  planner.RegisterIndex("product", &p_simple);
  planner.RegisterIndex("product", &p_encoded);
  planner.RegisterIndex("product", &p_sliced);
  planned_io.Reset();
  bench::Timer timer;
  size_t planned_mismatches = 0;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const auto result = planner.Select({queries[qi]});
    if (!result.ok() || !(result->rows == reference[qi])) {
      ++planned_mismatches;
    }
  }
  const IoStats& ps = planned_io.stats();
  std::printf("\n%-20s %10.1f %10llu %12.1f %10llu %10llu %10zu\n",
              "cost-based-planner", timer.ElapsedMs(),
              static_cast<unsigned long long>(ps.vectors_read),
              static_cast<double>(ps.bytes_read) / 1e6,
              static_cast<unsigned long long>(ps.pages_read),
              static_cast<unsigned long long>(ps.nodes_read),
              planned_mismatches);
  std::printf("(the planner routes each query to the cheapest structure,\n"
              " beating every single-index configuration above.)\n");
}

}  // namespace
}  // namespace ebi

int main() {
  ebi::Run();
  return 0;
}
