// Reproduces the Section 2.1/3.1 build-cost comparison: wall time and size
// of building every index family, swept over cardinality — O(n*m) for
// simple bitmaps vs O(n*log m) for encoded ones, with the B-tree and the
// other Section 4 structures alongside.

#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "ebi/ebi.h"

namespace ebi {
namespace {

struct Row {
  const char* name;
  double build_ms;
  size_t bytes;
  size_t vectors;
};

void Run() {
  const size_t n = 100000;
  std::printf("=== Build cost sweep (n = %zu rows) ===\n", n);
  for (size_t m : std::vector<size_t>{16, 256, 4096}) {
    auto table = bench::RoundRobinTable(n, m);
    IoAccountant io;
    const Column* col = &table->column(0);
    const BitVector* ex = &table->existence();

    std::vector<std::unique_ptr<SecondaryIndex>> indexes;
    indexes.push_back(std::make_unique<SimpleBitmapIndex>(col, ex, &io));
    indexes.push_back(std::make_unique<SimpleBitmapIndex>(
        col, ex, &io,
        SimpleBitmapIndexOptions::WithFormat(BitmapFormat::kRle)));
    indexes.push_back(std::make_unique<SimpleBitmapIndex>(
        col, ex, &io,
        SimpleBitmapIndexOptions::WithFormat(BitmapFormat::kEwah)));
    indexes.push_back(std::make_unique<EncodedBitmapIndex>(col, ex, &io));
    indexes.push_back(std::make_unique<BitSlicedIndex>(col, ex, &io));
    indexes.push_back(std::make_unique<BaseBitSlicedIndex>(col, ex, &io));
    indexes.push_back(std::make_unique<ProjectionIndex>(col, ex, &io));
    indexes.push_back(std::make_unique<BTreeIndex>(col, ex, &io));
    indexes.push_back(std::make_unique<ValueListIndex>(col, ex, &io));
    indexes.push_back(
        std::make_unique<RangeBasedBitmapIndex>(col, ex, &io));
    indexes.push_back(std::make_unique<DynamicBitmapIndex>(col, ex, &io));

    std::printf("\nm = %zu\n", m);
    std::printf("%-22s %12s %14s %10s\n", "index", "build_ms", "bytes",
                "vectors");
    for (auto& index : indexes) {
      bench::Timer timer;
      const Status status = index->Build();
      const double ms = timer.ElapsedMs();
      if (!status.ok()) {
        std::printf("%-22s build failed: %s\n", index->Name().c_str(),
                    status.ToString().c_str());
        continue;
      }
      std::printf("%-22s %12.2f %14zu %10zu\n", index->Name().c_str(), ms,
                  index->SizeBytes(), index->NumVectors());
    }
  }
  std::printf(
      "\n(Simple bitmap build time/size scale linearly with m; encoded\n"
      " scale with ceil(log2 m) — Section 3.1's h = |A| vs ceil(log2|A|).)\n");
}

}  // namespace
}  // namespace ebi

int main() {
  ebi::Run();
  return 0;
}
