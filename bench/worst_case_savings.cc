// Reproduces the Section 3.2 worst-case analysis: the area ratio between
// the best-case c_e curve and the worst-case line (0.84 for |A|=50, 0.90
// for |A|=1000) and the peak per-δ savings (83% at δ=32, 90% at δ=512).

#include <cstdio>

#include "analysis/cost_model.h"

namespace ebi {
namespace {

void Run() {
  std::printf("=== Section 3.2: worst-case analysis ===\n");
  std::printf("%-8s %-12s %-14s %-12s %-22s\n", "|A|", "ce_worst",
              "area_ratio", "peak_save", "paper");

  const double ratio50 = BestToWorstAreaRatio(50);
  const double peak50 = PeakSaving(50);
  std::printf("%-8d %-12d %-14.3f %-12.3f %-22s\n", 50, CeWorst(50), ratio50,
              peak50, "0.84 / 0.83@delta=32");

  const double ratio1000 = BestToWorstAreaRatio(1000, /*step=*/7);
  const double peak1000 = PeakSaving(1000, /*step=*/97);
  std::printf("%-8d %-12d %-14.3f %-12.3f %-22s\n", 1000, CeWorst(1000),
              ratio1000, peak1000, "0.90 / 0.90@delta=512");

  std::printf("\nPer-delta savings 1 - ce_best/ce_worst, |A| = 50:\n");
  std::printf("%-8s %-10s %-10s %-10s\n", "delta", "ce_best", "ce_worst",
              "saving");
  for (size_t delta : {1u, 2u, 4u, 8u, 16u, 24u, 32u, 40u, 48u, 50u}) {
    const int best = CeBest(delta, 50);
    std::printf("%-8zu %-10d %-10d %-10.2f\n", delta, best, CeWorst(50),
                1.0 - static_cast<double>(best) / CeWorst(50));
  }
  std::printf(
      "(Crossover: encoded beats simple once delta > log2|A|+1 = %.1f\n"
      " for |A|=50 — Section 3.1.)\n",
      CrossoverDelta(50));
}

}  // namespace
}  // namespace ebi

int main() {
  ebi::Run();
  return 0;
}
