// Reproduces Figures 7/8: range-based encoded bitmap indexing over the
// predefined selections 6<=A<10, 8<=A<12, 10<=A<13, 16<=A<20 on domain
// [6,20): the induced partition, the reduced retrieval functions, and the
// bitmap vectors per selection, next to the Wu/Yu-style range-based
// bitmap index and a bit-sliced index on the same data.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "encoding/range_encoding.h"
#include "index/bit_sliced_index.h"
#include "index/encoded_bitmap_index.h"
#include "index/range_based_bitmap_index.h"
#include "util/random.h"

namespace ebi {
namespace {

void Run() {
  const std::vector<HalfOpenRange> predefined = {
      {6, 10}, {8, 12}, {10, 13}, {16, 20}};
  auto enc_or = RangeBasedEncoding::Create(6, 20, predefined);
  if (!enc_or.ok()) {
    std::printf("range encoding failed\n");
    return;
  }
  const RangeBasedEncoding& enc = *enc_or;

  std::printf("=== Figure 7: induced partition of [6,20) ===\n");
  for (size_t i = 0; i < enc.intervals().size(); ++i) {
    const uint64_t code = *enc.mapping().CodeOf(static_cast<ValueId>(i));
    std::printf("  interval %zu = %-8s code=", i,
                enc.intervals()[i].ToString().c_str());
    for (int b = enc.mapping().width() - 1; b >= 0; --b) {
      std::printf("%llu", static_cast<unsigned long long>((code >> b) & 1));
    }
    std::printf("\n");
  }

  std::printf("\n=== Figure 8(b): reduced retrieval functions ===\n");
  for (const HalfOpenRange& r : predefined) {
    const auto cover = enc.CoverForRange(r.lo, r.hi);
    if (!cover.ok()) {
      std::printf("  %-10s error\n", r.ToString().c_str());
      continue;
    }
    std::printf("  %-10s -> %-18s (%d vectors)\n", r.ToString().c_str(),
                CoverToString(*cover, enc.mapping().width()).c_str(),
                DistinctVariables(*cover));
  }

  // Data: 30000 rows uniform over [6, 20). Compare three range indexes.
  const size_t n = 30000;
  auto table = std::make_unique<Table>("T");
  bench::CheckOk(table->AddColumn("a", Column::Type::kInt64));
  Rng rng(2024);
  for (size_t r = 0; r < n; ++r) {
    bench::CheckOk(table->AppendRow(
        {Value::Int(6 + static_cast<int64_t>(rng.UniformInt(14)))}));
  }

  IoAccountant ebi_io;
  IoAccountant wy_io;
  IoAccountant bsi_io;
  // Encoded bitmap index over the *interval* of each row, using the
  // range-based mapping (the paper's construction).
  auto interval_table = std::make_unique<Table>("I");
  bench::CheckOk(interval_table->AddColumn("iv", Column::Type::kInt64));
  for (size_t r = 0; r < n; ++r) {
    const int64_t v = table->column(0).ValueAt(r).int_value;
    bench::CheckOk(interval_table->AppendRow(
        {Value::Int(static_cast<int64_t>(*enc.IntervalOf(v)))}));
  }
  // Give the interval index exactly the optimized range-based mapping:
  // column ValueIds are in first-occurrence order, so translate
  // ValueId -> interval id -> codeword.
  const Column& interval_col = interval_table->column(0);
  std::vector<uint64_t> codes(interval_col.Cardinality());
  for (ValueId vid = 0; vid < interval_col.Cardinality(); ++vid) {
    const auto iv =
        static_cast<ValueId>(interval_col.ValueOf(vid).int_value);
    codes[vid] = *enc.mapping().CodeOf(iv);
  }
  auto interval_mapping =
      MappingTable::Create(enc.mapping().width(), codes);
  EncodedBitmapIndex interval_index(&interval_table->column(0),
                                    &interval_table->existence(), &ebi_io);
  if (!interval_mapping.ok() ||
      !interval_index.SetMapping(std::move(interval_mapping).value())
           .ok()) {
    std::printf("interval mapping failed\n");
    return;
  }
  RangeBasedBitmapIndexOptions wopts;
  wopts.num_buckets = 6;
  RangeBasedBitmapIndex wu_yu(&table->column(0), &table->existence(), &wy_io,
                              wopts);
  BitSlicedIndex sliced(&table->column(0), &table->existence(), &bsi_io);
  if (!interval_index.Build().ok() || !wu_yu.Build().ok() ||
      !sliced.Build().ok()) {
    std::printf("index build failed\n");
    return;
  }

  std::printf("\n=== Predefined range selections, measured (n = %zu) ===\n",
              n);
  std::printf("%-10s %-8s %-18s %-22s %-14s\n", "range", "rows",
              "rangeEBI_vectors", "wu-yu_vec(+checks)", "bsi_vectors");
  for (const HalfOpenRange& r : predefined) {
    // Range-based EBI: evaluate the reduced cover over interval slices.
    ebi_io.Reset();
    wy_io.Reset();
    bsi_io.Reset();
    std::vector<Value> intervals;
    for (size_t i = 0; i < enc.intervals().size(); ++i) {
      if (enc.intervals()[i].lo >= r.lo && enc.intervals()[i].hi <= r.hi) {
        intervals.push_back(Value::Int(static_cast<int64_t>(i)));
      }
    }
    const auto a = interval_index.EvaluateIn(intervals);
    const auto b = wu_yu.EvaluateRange(r.lo, r.hi - 1);
    const auto c = sliced.EvaluateRange(r.lo, r.hi - 1);
    if (!a.ok() || !b.ok() || !c.ok() || !(*a == *b) || !(*b == *c)) {
      std::printf("%-10s DISAGREEMENT\n", r.ToString().c_str());
      continue;
    }
    std::printf("%-10s %-8zu %-18llu %llu(+%zu checks)%*s %-14llu\n",
                r.ToString().c_str(), a->Count(),
                static_cast<unsigned long long>(ebi_io.stats().vectors_read),
                static_cast<unsigned long long>(wy_io.stats().vectors_read),
                wu_yu.last_candidates_checked(), 4, "",
                static_cast<unsigned long long>(
                    bsi_io.stats().vectors_read));
  }
  std::printf(
      "(The range-based encoded index answers every predefined selection\n"
      " from <= 2 bitmap vectors — plus one existence read here, since the\n"
      " demo mapping reserves no void codeword — and never verifies\n"
      " candidates; the distribution-partitioned index pays per-row\n"
      " verification on boundary buckets — the Section 4 comparison with\n"
      " [19].)\n");
}

}  // namespace
}  // namespace ebi

int main() {
  ebi::Run();
  return 0;
}
