// Reproduces the Section 4 group-set argument: GROUP BY over attributes of
// cardinalities 100 x 200 x 500 would need 10^7 simple bitmap vectors but
// only ~20 encoded ones; group bitmaps are computed dynamically at run
// time from the stacked encoded indexes.

#include <cstdio>

#include "index/groupset_index.h"
#include "util/bit_util.h"
#include "workload/generator.h"

namespace ebi {
namespace {

void Run() {
  std::printf("=== Section 4: group-set index arithmetic ===\n");
  std::printf("cardinalities 100 x 200 x 500:\n");
  std::printf("  simple bitmap group-set : %d vectors\n", 100 * 200 * 500);
  std::printf("  encoded group-set       : %d + %d + %d = %d vectors\n",
              Log2Ceil(100), Log2Ceil(200), Log2Ceil(500),
              Log2Ceil(100) + Log2Ceil(200) + Log2Ceil(500));

  // Measured, at a laptop-friendly scale: 40 x 50 x 60.
  const auto table_or = GenerateTable(
      "F", 60000,
      {{"a", 40, Distribution::kUniform},
       {"b", 50, Distribution::kUniform},
       {"c", 60, Distribution::kUniform}},
      7);
  if (!table_or.ok()) {
    std::printf("table build failed\n");
    return;
  }
  const Table& table = **table_or;
  IoAccountant io;
  GroupsetIndex index({&table.column(0), &table.column(1), &table.column(2)},
                      &table.existence(), &io);
  if (!index.Build().ok()) {
    std::printf("index build failed\n");
    return;
  }

  const size_t combinations = 40 * 50 * 60;
  std::printf("\nmeasured 40 x 50 x 60 on %zu rows:\n", table.NumRows());
  std::printf("  possible combinations     : %zu\n", combinations);
  std::printf("  encoded vectors held      : %zu\n", index.NumVectors());
  std::printf("  index bytes               : %zu\n", index.SizeBytes());
  const auto groups = index.CountGroups();
  if (groups.ok()) {
    std::printf("  non-empty groups (density): %zu (%.1f%%)\n", *groups,
                100.0 * static_cast<double>(*groups) / combinations);
  }

  // Dynamic run-time group-by: count rows of a few specific groups.
  std::printf("\n  sample dynamic group lookups (AND of per-column "
              "covers):\n");
  for (int64_t g = 0; g < 3; ++g) {
    io.Reset();
    const auto rows = index.GroupBitmap(
        {Value::Int(g), Value::Int(g + 1), Value::Int(g + 2)});
    if (!rows.ok()) {
      continue;
    }
    std::printf("    group (%lld,%lld,%lld): %zu rows, %llu vectors read\n",
                static_cast<long long>(g), static_cast<long long>(g + 1),
                static_cast<long long>(g + 2), rows->Count(),
                static_cast<unsigned long long>(io.stats().vectors_read));
  }
}

}  // namespace
}  // namespace ebi

int main() {
  ebi::Run();
  return 0;
}
