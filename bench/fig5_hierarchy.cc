// Reproduces Figure 5 / Section 2.3 hierarchy encoding: the SALESPOINT
// dimension (12 branches, 5 companies, 3 alliances with m:N memberships).
// Prints the bitmap vectors each company/alliance selection needs under
// the paper's hand-crafted mapping, naive encodings, and the library's
// hierarchy optimizer — plus a measured roll-up on a SALES fact table.

#include <cstdio>
#include <string>
#include <vector>

#include "encoding/hierarchy.h"
#include "encoding/well_defined.h"
#include "index/encoded_bitmap_index.h"
#include "index/simple_bitmap_index.h"
#include "util/random.h"
#include "workload/star_schema.h"

namespace ebi {
namespace {

MappingTable PaperFigure5Mapping() {
  return std::move(MappingTable::Create(
                       4, {0b0000, 0b0001, 0b0100, 0b0101, 0b0010, 0b0011,
                           0b0110, 0b0111, 0b1100, 0b1101, 0b1111, 0b1110}))
      .value();
}

void Run() {
  StarSchemaConfig config;
  config.fact_rows = 20000;
  config.num_products = 100;
  auto schema_or = BuildStarSchema(config);
  if (!schema_or.ok()) {
    std::printf("schema build failed\n");
    return;
  }
  StarSchema& schema = **schema_or;
  const Hierarchy& hierarchy = schema.salespoint_hierarchy;

  struct Candidate {
    std::string name;
    MappingTable mapping;
  };
  std::vector<Candidate> candidates;
  candidates.push_back({"fig5b-paper", PaperFigure5Mapping()});
  candidates.push_back(
      {"sequential", std::move(MakeSequentialMapping(12)).value()});
  Rng rng(4);
  candidates.push_back(
      {"random", std::move(MakeRandomMapping(12, &rng)).value()});
  OptimizerOptions oopts;
  oopts.iterations = 2500;
  candidates.push_back(
      {"hierarchy-optimized",
       std::move(EncodeHierarchy(hierarchy, oopts)).value()});

  std::printf("=== Figure 5: hierarchy encoding of SALESPOINT ===\n");
  std::printf("%-22s", "encoding");
  std::vector<std::pair<std::string, std::vector<ValueId>>> groups;
  for (const HierarchyLevel& level : hierarchy.levels()) {
    for (const HierarchyGroup& group : level.groups) {
      std::printf(" %5s", group.name.c_str());
      groups.push_back({group.name, group.members});
    }
  }
  std::printf(" %6s\n", "total");

  for (const Candidate& c : candidates) {
    std::printf("%-22s", c.name.c_str());
    int total = 0;
    for (const auto& [name, members] : groups) {
      const auto cost = AccessCost(c.mapping, members);
      const int v = cost.ok() ? *cost : -1;
      total += v;
      std::printf(" %5d", v);
    }
    std::printf(" %6d\n", total);
  }
  std::printf("(Paper headline: selection alliance = X reads ONE bitmap\n"
              " vector under the Figure 5(b) mapping; worst case is 4.)\n");

  // Measured roll-up on the fact table: count sales per alliance with an
  // encoded index trained on the hierarchy vs a simple bitmap index.
  const Column* branch = *schema.sales->FindColumn("branch");
  IoAccountant enc_io;
  IoAccountant simple_io;
  EncodedBitmapIndex encoded(branch, &schema.sales->existence(), &enc_io);
  {
    // Rebind the optimized mapping (trained on hierarchy selections).
    OptimizerOptions opts;
    opts.iterations = 2500;
    auto trained = EncodeHierarchy(hierarchy, opts);
    if (!trained.ok() ||
        !encoded.SetMapping(std::move(trained).value()).ok()) {
      std::printf("encoding failed\n");
      return;
    }
  }
  SimpleBitmapIndex simple(branch, &schema.sales->existence(), &simple_io);
  if (!encoded.Build().ok() || !simple.Build().ok()) {
    std::printf("index build failed\n");
    return;
  }

  std::printf("\nMeasured alliance roll-up on SALES (%zu rows):\n",
              schema.sales->NumRows());
  std::printf("%-10s %-10s %-14s %-14s\n", "alliance", "rows",
              "enc_vectors", "simple_vectors");
  for (const char* alliance : {"X", "Y", "Z"}) {
    const auto members = hierarchy.Members("alliance", alliance);
    std::vector<Value> values;
    for (ValueId b : *members) {
      values.push_back(Value::Int(static_cast<int64_t>(b)));
    }
    enc_io.Reset();
    simple_io.Reset();
    const auto rows = encoded.EvaluateIn(values);
    const auto rows2 = simple.EvaluateIn(values);
    if (!rows.ok() || !rows2.ok() || !(*rows == *rows2)) {
      std::printf("%-10s DISAGREEMENT\n", alliance);
      continue;
    }
    std::printf("%-10s %-10zu %-14llu %-14llu\n", alliance, rows->Count(),
                static_cast<unsigned long long>(enc_io.stats().vectors_read),
                static_cast<unsigned long long>(
                    simple_io.stats().vectors_read));
  }
}

}  // namespace
}  // namespace ebi

int main() {
  ebi::Run();
  return 0;
}
