// Sharded serve tier under multi-tenant load: shard count x arrival
// process, with the slow-query adversary in the mix.
//
// The fleet is sized so every cell spends the same total worker budget
// (kTotalWorkers split across shards): the question is not "do more
// cores help" but "does partitioning isolate the adversary". The
// workload is range-partitioned by tenant and the adversary pins to
// tenant 0, so with shards > 1 its wide IN-scans saturate only shard
// 0's queue while the other tenants' requests ride unobstructed —
// that is the p99 story the closed-loop cells tell. The open-loop cell
// paces arrivals from the schedule regardless of completions (no
// coordinated omission), and the hedge cell turns on replicas +
// hedging to measure how often the replica rescues a busy primary.
//
// Reported per cell: non-adversary p50/p99/p999 latency, throughput,
// shed rate, partial-result rate, hedge issue/win counts. Emits
// BENCH_serve_cluster.json; scripts/check_bench_json.sh gates
// closed.shards4 p99 against closed.shards1 p99.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "exec/thread_pool.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "serve/cluster/cluster_service.h"
#include "workload/loadgen.h"

namespace ebi {
namespace {

constexpr size_t kTenants = 8;
constexpr int64_t kKeysPerTenant = 128;
constexpr size_t kRows = 1 << 13;
constexpr int64_t kValueCardinality = 16;
constexpr size_t kTotalWorkers = 4;
constexpr size_t kClients = 8;
constexpr size_t kOperations = 1200;
constexpr double kDeadlineMs = 250.0;

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) {
    return 0.0;
  }
  std::sort(xs.begin(), xs.end());
  const size_t i = static_cast<size_t>(p * static_cast<double>(xs.size() - 1));
  return xs[i];
}

/// Fact table with tenant-major keys: tenant t owns
/// [t*kKeysPerTenant, (t+1)*kKeysPerTenant).
std::unique_ptr<Table> TenantTable() {
  auto table = std::make_unique<Table>("tenants");
  bench::CheckOk(table->AddColumn("k", Column::Type::kInt64));
  bench::CheckOk(table->AddColumn("v", Column::Type::kInt64));
  for (size_t i = 0; i < kRows; ++i) {
    const auto tenant = static_cast<int64_t>(i % kTenants);
    const auto offset = static_cast<int64_t>((i * 31) % kKeysPerTenant);
    bench::CheckOk(table->AppendRow(
        {Value::Int(tenant * kKeysPerTenant + offset),
         Value::Int(static_cast<int64_t>(i % kValueCardinality))}));
  }
  return table;
}

/// Tenant-aligned split points: shard s takes tenants
/// [s*kTenants/shards, (s+1)*kTenants/shards).
std::vector<int64_t> TenantSplits(size_t shards) {
  std::vector<int64_t> splits;
  for (size_t s = 1; s < shards; ++s) {
    splits.push_back(
        static_cast<int64_t>(s * kTenants / shards) * kKeysPerTenant - 1);
  }
  return splits;
}

workload::LoadGenOptions BaseLoad(workload::ArrivalProcess arrivals) {
  workload::LoadGenOptions load;
  load.seed = 42;
  load.operations = kOperations;
  load.tenants = kTenants;
  load.zipf_theta = 0.7;
  load.keys_per_tenant = kKeysPerTenant;
  load.key_column = "k";
  load.value_column = "v";
  load.value_cardinality = kValueCardinality;
  load.arrivals = arrivals;
  load.offered_qps = 4000.0;
  load.burst_factor = 3.0;
  load.burst_period_ms = 50.0;
  load.adversary_fraction = 0.15;
  load.adversary_tenant = 0;
  load.adversary_in_width = kValueCardinality * 12;
  return load;
}

struct OpOutcome {
  double latency_ms = 0.0;
  bool ok = false;
  bool shed = false;
  bool deadline = false;
  bool partial = false;
};

/// Replays `schedule` against `cluster` with kClients closed-loop (or
/// schedule-paced open-loop) driver threads. Outcomes land in per-op
/// slots, so drivers share nothing but the op counter.
std::vector<OpOutcome> Drive(serve::cluster::ClusterQueryService& cluster,
                             const workload::LoadSchedule& schedule) {
  std::vector<OpOutcome> outcomes(schedule.ops.size());
  std::atomic<size_t> next{0};
  const auto start = std::chrono::steady_clock::now();
  {
    exec::ThreadPool drivers(kClients);
    for (size_t c = 0; c < kClients; ++c) {
      drivers.Submit([&]() {
        while (true) {
          const size_t i = next.fetch_add(1);
          if (i >= schedule.ops.size()) {
            return;
          }
          const workload::LoadOp& op = schedule.ops[i];
          if (op.arrival_ms > 0.0) {
            // Open loop: hold to the arrival timeline. A late pickup
            // issues immediately — arrears are the workload's point.
            const auto due =
                start + std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double, std::milli>(
                                op.arrival_ms));
            std::this_thread::sleep_until(due);
          }
          serve::RequestOptions request;
          request.deadline_ms = kDeadlineMs;
          const auto issued = std::chrono::steady_clock::now();
          auto result = cluster.Select(op.predicates, request);
          OpOutcome& slot = outcomes[i];
          slot.latency_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - issued)
                                .count();
          if (result.ok()) {
            slot.ok = true;
            slot.partial = result->partial;
          } else {
            slot.shed = result.status().code() == StatusCode::kOverloaded;
            slot.deadline =
                result.status().code() == StatusCode::kDeadlineExceeded;
          }
        }
      });
    }
  }
  return outcomes;
}

void ReportCell(const std::string& label, size_t shards,
                const workload::LoadSchedule& schedule,
                const std::vector<OpOutcome>& outcomes, double wall_ms,
                uint64_t hedges_issued, uint64_t hedges_won,
                bench::BenchReport* report) {
  std::vector<double> victim_latencies;  // Non-adversary ops only.
  size_t ok = 0;
  size_t shed = 0;
  size_t deadline = 0;
  size_t partial = 0;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const OpOutcome& out = outcomes[i];
    ok += out.ok ? 1 : 0;
    shed += out.shed ? 1 : 0;
    deadline += out.deadline ? 1 : 0;
    partial += out.partial ? 1 : 0;
    if (!schedule.ops[i].adversarial && out.ok) {
      victim_latencies.push_back(out.latency_ms);
    }
  }
  const double total = static_cast<double>(outcomes.size());
  const double p50 = Percentile(victim_latencies, 0.50);
  const double p99 = Percentile(victim_latencies, 0.99);
  const double p999 = Percentile(victim_latencies, 0.999);
  const double qps = wall_ms > 0.0 ? static_cast<double>(ok) / wall_ms * 1000.0
                                   : 0.0;

  std::printf(
      "%-16s shards=%zu ok=%4zu p50=%7.3fms p99=%8.3fms p999=%8.3fms "
      "qps=%8.1f shed=%.3f partial=%.3f hedged=%llu won=%llu\n",
      label.c_str(), shards, ok, p50, p99, p999, qps,
      static_cast<double>(shed) / total, static_cast<double>(partial) / total,
      static_cast<unsigned long long>(hedges_issued),
      static_cast<unsigned long long>(hedges_won));

  report->BeginRun(label);
  report->Metric("shards", shards);
  report->Metric("ops", outcomes.size());
  report->Metric("completed", ok);
  report->Metric("p50_ms", p50);
  report->Metric("p99_ms", p99);
  report->Metric("p999_ms", p999);
  report->Metric("qps", qps);
  report->Metric("shed_rate", static_cast<double>(shed) / total);
  report->Metric("deadline_rate", static_cast<double>(deadline) / total);
  report->Metric("partial_rate", static_cast<double>(partial) / total);
  report->Metric("hedges_issued", hedges_issued);
  report->Metric("hedges_won", hedges_won);
}

void RunCell(const std::string& label, size_t shards,
             workload::ArrivalProcess arrivals, bool hedge,
             bench::BenchReport* report) {
  serve::cluster::ClusterOptions options;
  options.shards = shards;
  options.partition = serve::cluster::PartitionKind::kRange;
  options.split_points = TenantSplits(shards);
  options.key_column = "k";
  options.shard_options.worker_threads =
      std::max<size_t>(kTotalWorkers / shards, 1);
  // Deep queues in the saturation cells so the adversary's cost shows
  // up as queueing delay; a shallow queue in the hedge cell so clogged
  // primaries shed and the replica hedge has something to rescue.
  options.shard_options.queue_depth = hedge ? 6 : 16;
  options.partial_policy = serve::cluster::PartialResultPolicy::kPartial;
  options.shard_deadline_fraction = 0.9;
  if (hedge) {
    options.replicate = true;
    options.replica_options.worker_threads = 1;
    options.replica_options.queue_depth = 16;
    options.hedge = true;
    options.hedge_min_delay_ms = 0.5;
    options.hedge_max_delay_ms = 2.0;
    options.hedge_warmup = 64;
  }
  serve::cluster::ClusterQueryService cluster(options);
  bench::CheckOk(cluster.Start(TenantTable(),
                               {{"k", IndexKind::kEncodedBitmap},
                                {"v", IndexKind::kEncodedBitmap}}));

  const workload::LoadSchedule schedule =
      workload::GenerateLoad(BaseLoad(arrivals));

  obs::Counter* issued = obs::MetricsRegistry::Global().GetCounter(
      obs::kMetricClusterHedgeIssued);
  obs::Counter* won =
      obs::MetricsRegistry::Global().GetCounter(obs::kMetricClusterHedgeWon);
  const uint64_t issued_before = issued->Value();
  const uint64_t won_before = won->Value();

  bench::Timer timer;
  const std::vector<OpOutcome> outcomes = Drive(cluster, schedule);
  const double wall_ms = timer.ElapsedMs();
  bench::CheckOk(cluster.Shutdown());

  ReportCell(label, shards, schedule, outcomes, wall_ms,
             issued->Value() - issued_before, won->Value() - won_before,
             report);
}

}  // namespace
}  // namespace ebi

int main() {
  using ebi::workload::ArrivalProcess;
  std::printf(
      "serve_cluster: %zu ops, %zu tenants, adversary on tenant 0, "
      "%zu total workers split across shards\n",
      ebi::kOperations, ebi::kTenants, ebi::kTotalWorkers);

  ebi::bench::BenchReport report("serve_cluster");
  // Closed-loop saturation: the shard-count sweep the p99 gate reads.
  ebi::RunCell("closed.shards1", 1, ArrivalProcess::kClosedLoop,
               /*hedge=*/false, &report);
  ebi::RunCell("closed.shards2", 2, ArrivalProcess::kClosedLoop,
               /*hedge=*/false, &report);
  ebi::RunCell("closed.shards4", 4, ArrivalProcess::kClosedLoop,
               /*hedge=*/false, &report);
  // Open-loop bursty arrivals: queueing collapse without coordinated
  // omission.
  ebi::RunCell("open.shards1", 1, ArrivalProcess::kOpenLoop,
               /*hedge=*/false, &report);
  ebi::RunCell("open.shards4", 4, ArrivalProcess::kOpenLoop,
               /*hedge=*/false, &report);
  // Hedging: replicas absorb what the adversary-clogged primaries shed.
  ebi::RunCell("hedge.shards2", 2, ArrivalProcess::kClosedLoop,
               /*hedge=*/true, &report);
  return 0;
}
