// Serving-layer throughput/latency grid: worker threads x queue depth.
//
// For each cell, a fixed client fleet fires equality selections at the
// QueryService as fast as it can while one appender publishes snapshots
// in the background. Reports completed-request throughput, p50/p99
// client-observed latency, and the shed rate admission control produced.
//
// Emits BENCH_serve_throughput.json (schema checked by
// scripts/check_bench_json.sh).

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "serve/query_service.h"

namespace ebi {
namespace {

constexpr size_t kRows = 1 << 14;
constexpr size_t kCardinality = 64;
constexpr size_t kClients = 4;
constexpr size_t kQueriesPerClient = 250;
constexpr size_t kAppendBatches = 20;
constexpr size_t kRowsPerBatch = 8;

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) {
    return 0.0;
  }
  std::sort(xs.begin(), xs.end());
  const size_t i = static_cast<size_t>(p * static_cast<double>(xs.size() - 1));
  return xs[i];
}

void RunCell(size_t workers, size_t queue_depth, bench::BenchReport* report) {
  serve::ServeOptions options;
  options.worker_threads = workers;
  options.queue_depth = queue_depth;
  serve::QueryService service(options);
  bench::CheckOk(service.Start(bench::RoundRobinTable(kRows, kCardinality),
                               {{"a", IndexKind::kEncodedBitmap}}));

  std::vector<std::vector<double>> latencies(kClients);
  std::vector<size_t> shed(kClients, 0);

  bench::Timer wall;
  exec::ThreadPool drivers(kClients + 1);
  drivers.ParallelFor(0, kClients + 1, [&](size_t worker) {
    if (worker == kClients) {
      // Background appender: keeps snapshots churning during the run.
      for (size_t b = 0; b < kAppendBatches; ++b) {
        std::vector<std::vector<Value>> rows;
        for (size_t r = 0; r < kRowsPerBatch; ++r) {
          rows.push_back({Value::Int(static_cast<int64_t>(
              (b * kRowsPerBatch + r) % kCardinality))});
        }
        bench::CheckOk(service.Append(std::move(rows)));
      }
      return;
    }
    latencies[worker].reserve(kQueriesPerClient);
    for (size_t q = 0; q < kQueriesPerClient; ++q) {
      const int64_t v =
          static_cast<int64_t>((worker * kQueriesPerClient + q) %
                               kCardinality);
      bench::Timer timer;
      const Result<serve::ServeResult> got =
          service.Select({Predicate::Eq("a", Value::Int(v))});
      if (!got.ok()) {
        if (got.status().code() == StatusCode::kOverloaded) {
          ++shed[worker];
          continue;
        }
        bench::CheckOk(got.status());
      }
      latencies[worker].push_back(timer.ElapsedMs());
    }
  });
  const double wall_ms = wall.ElapsedMs();
  bench::CheckOk(service.Shutdown());

  std::vector<double> all;
  size_t total_shed = 0;
  for (size_t c = 0; c < kClients; ++c) {
    all.insert(all.end(), latencies[c].begin(), latencies[c].end());
    total_shed += shed[c];
  }
  const size_t attempted = kClients * kQueriesPerClient;
  const double throughput =
      wall_ms > 0 ? static_cast<double>(all.size()) / (wall_ms / 1000.0) : 0;
  const double p50 = Percentile(all, 0.50);
  const double p99 = Percentile(all, 0.99);
  const double p999 = Percentile(all, 0.999);
  const double shed_rate =
      static_cast<double>(total_shed) / static_cast<double>(attempted);

  std::printf("%8zu %11zu %10.0f %9.3f %9.3f %9.3f %9.4f\n", workers,
              queue_depth, throughput, p50, p99, p999, shed_rate);

  char label[64];
  std::snprintf(label, sizeof(label), "workers=%zu depth=%zu", workers,
                queue_depth);
  report->BeginRun(label);
  report->Metric("completed", all.size());
  report->Metric("throughput_qps", throughput);
  report->Metric("p50_ms", p50);
  report->Metric("p99_ms", p99);
  report->Metric("p999_ms", p999);
  report->Metric("shed_rate", shed_rate);
}

/// Per-stage attribution across the whole grid, from the global
/// registry's stage histograms (DESIGN.md §11): where a served request's
/// time went — queue wait, snapshot pin, executor construction, bitmap
/// evaluation — at p50/p99/p999.
void ReportStages(bench::BenchReport* report) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const std::pair<const char*, const char*> stages[] = {
      {"queue", obs::kMetricServeQueueMs},
      {"pin", obs::kMetricServeStagePinMs},
      {"plan", obs::kMetricServeStagePlanMs},
      {"execute", obs::kMetricServeStageExecuteMs},
      {"total", obs::kMetricServeLatencyMs},
  };
  report->BeginRun("stages");
  std::printf("\n%-8s %10s %10s %10s\n", "stage", "p50_ms", "p99_ms",
              "p999_ms");
  for (const auto& [stage, metric] : stages) {
    obs::Histogram* histogram = registry.GetHistogram(metric);
    const double p50 = histogram->Quantile(0.50);
    const double p99 = histogram->Quantile(0.99);
    const double p999 = histogram->Quantile(0.999);
    std::printf("%-8s %10.4f %10.4f %10.4f\n", stage, p50, p99, p999);
    report->Metric(std::string(stage) + "_p50_ms", p50);
    report->Metric(std::string(stage) + "_p99_ms", p99);
    report->Metric(std::string(stage) + "_p999_ms", p999);
  }
}

}  // namespace
}  // namespace ebi

int main() {
  std::printf("serve_throughput: %zu clients x %zu queries, %zu-row table, "
              "appender churning %zu batches\n",
              ebi::kClients, ebi::kQueriesPerClient, ebi::kRows,
              ebi::kAppendBatches);
  std::printf("%8s %11s %10s %9s %9s %9s %9s\n", "workers", "queue_depth",
              "qps", "p50_ms", "p99_ms", "p999_ms", "shed");
  ebi::bench::BenchReport report("serve_throughput");
  for (const size_t workers : {1, 2, 4}) {
    for (const size_t depth : {4, 64}) {
      ebi::RunCell(workers, depth, &report);
    }
  }
  ebi::ReportStages(&report);
  return 0;
}
