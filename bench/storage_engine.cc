// Tiered storage engine: cold vs warm scan latency, buffer-pool hit
// rate as the pool shrinks below the working set, and WAL append
// throughput. The headline gate: with the pool at or above the working
// set, a warm scan through the engine must stay close to the in-memory
// path (BENCH_storage_engine.json carries the ratio; the design target
// is 1.25x, checked leniently in CI by scripts/check_bench_json.sh).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "storage/engine/storage_engine.h"
#include "storage/engine/wal.h"
#include "util/random.h"

namespace ebi {
namespace {

std::string TempPath(const char* name) {
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp != nullptr && tmp[0] != '\0' ? tmp : "/tmp") + "/" +
         name;
}

BitVector RandomBits(size_t n, uint64_t seed) {
  Rng rng(seed);
  BitVector v(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.35)) {
      v.Set(i);
    }
  }
  return v;
}

/// One "scan": obtain each slice from the store as an owned
/// StoredBitmap (exactly what BitmapStore::Get hands out on its
/// in-memory path — a copy), materialize it, and OR it into an
/// accumulator. The engine path below does the identical per-slice
/// work through GetSlice, so the latency ratio isolates the engine's
/// overhead: page lookups plus one payload assembly + decode in place
/// of the in-memory copy.
double MemoryScanMs(const std::vector<StoredBitmap>& store, size_t bits,
                    int repeats) {
  bench::Timer timer;
  size_t guard = 0;
  for (int r = 0; r < repeats; ++r) {
    BitVector acc(bits);
    for (const StoredBitmap& s : store) {
      const StoredBitmap got = s;  // The in-memory store hands out copies.
      acc.OrWith(got.ToBitVector());
    }
    guard += acc.Count();
  }
  if (guard == 0) {
    std::printf("(empty accumulator?)\n");
  }
  return timer.ElapsedMs() / repeats;
}

double EngineScanMs(engine::StorageEngine& eng, size_t num_slices,
                    size_t bits, int repeats) {
  bench::Timer timer;
  size_t guard = 0;
  for (int r = 0; r < repeats; ++r) {
    BitVector acc(bits);
    for (size_t i = 0; i < num_slices; ++i) {
      auto stored = eng.GetSlice(static_cast<uint32_t>(i));
      bench::CheckOk(stored.status());
      acc.OrWith(stored->ToBitVector());
    }
    guard += acc.Count();
  }
  if (guard == 0) {
    std::printf("(empty accumulator?)\n");
  }
  return timer.ElapsedMs() / repeats;
}

void Run() {
  constexpr size_t kSlices = 32;
  constexpr size_t kBits = 1 << 17;  // 16 KB plain payload, 5 pages/slice.
  constexpr int kScanRepeats = 20;
  const std::string path = TempPath("ebi_bench_engine.bin");

  std::vector<BitVector> slices;
  slices.reserve(kSlices);
  for (size_t i = 0; i < kSlices; ++i) {
    slices.push_back(RandomBits(kBits, i + 1));
  }
  // The in-memory store under comparison: the same slices held as
  // StoredBitmaps, as BitmapStore keeps them.
  std::vector<StoredBitmap> store;
  store.reserve(kSlices);
  for (const BitVector& s : slices) {
    store.push_back(StoredBitmap::Make(s, BitmapFormat::kPlain));
  }

  bench::BenchReport report("storage_engine");
  std::printf("=== Tiered storage engine ===\n");
  std::printf("%zu slices x %zu bits (plain), %d-scan averages\n\n", kSlices,
              kBits, kScanRepeats);

  // Working set in pages, measured from a throwaway engine.
  size_t working_set = 0;
  {
    engine::StorageEngineOptions options;
    options.pool_pages = 4 * kSlices;
    options.remove_on_close = false;
    auto eng = engine::StorageEngine::Open(path, options);
    bench::CheckOk(eng.status());
    for (const BitVector& s : slices) {
      bench::CheckOk(
          (*eng)->PutSlice(StoredBitmap::Make(s, BitmapFormat::kPlain))
              .status());
    }
    bench::CheckOk((*eng)->Sync());
    for (size_t i = 0; i < kSlices; ++i) {
      const auto pages = (*eng)->SlicePages(static_cast<uint32_t>(i));
      bench::CheckOk(pages.status());
      working_set += *pages;
    }
  }
  std::printf("working set: %zu pages\n\n", working_set);

  const double memory_ms = MemoryScanMs(store, kBits, kScanRepeats);
  std::printf("%-22s %10.3f ms/scan\n", "in-memory baseline", memory_ms);

  // Cold + warm scan with the pool sized to the working set.
  {
    engine::StorageEngineOptions options;
    options.pool_pages = working_set + 8;
    options.recover = true;
    auto eng = engine::StorageEngine::Open(path, options);
    bench::CheckOk(eng.status());
    const double cold_ms = EngineScanMs(**eng, kSlices, kBits, 1);
    const double warm_ms = EngineScanMs(**eng, kSlices, kBits, kScanRepeats);
    const double ratio = warm_ms / memory_ms;
    std::printf("%-22s %10.3f ms/scan\n", "engine cold scan", cold_ms);
    std::printf("%-22s %10.3f ms/scan  (%.2fx in-memory)\n",
                "engine warm scan", warm_ms, ratio);
    report.BeginRun("scan_latency");
    report.Metric("memory_ms", memory_ms);
    report.Metric("cold_ms", cold_ms);
    report.Metric("warm_ms", warm_ms);
    report.Metric("warm_vs_memory", ratio);
    report.Metric("working_set_pages", working_set);
  }

  // Hit rate vs pool size: a query mix that touches slices with a skewed
  // (hot-subset) distribution, pools from 1/8 to 2x the working set.
  std::printf("\n%-14s %-10s %-10s %-10s %-10s\n", "pool_pages", "hits",
              "misses", "hit_rate", "evictions");
  for (const double fraction : {0.125, 0.25, 0.5, 1.0, 2.0}) {
    const size_t pool_pages =
        static_cast<size_t>(working_set * fraction) + 1;
    engine::StorageEngineOptions options;
    options.pool_pages = pool_pages;
    options.recover = true;
    auto eng = engine::StorageEngine::Open(path, options);
    bench::CheckOk(eng.status());
    Rng rng(99);
    uint64_t page_hits = 0;
    uint64_t page_misses = 0;
    for (int q = 0; q < 600; ++q) {
      // 80% of queries touch the 25% hottest slices.
      const size_t slice = rng.Bernoulli(0.8)
                               ? rng.UniformInt(kSlices / 4)
                               : rng.UniformInt(kSlices);
      size_t faulted = 0;
      const auto stored =
          (*eng)->GetSlice(static_cast<uint32_t>(slice), &faulted);
      bench::CheckOk(stored.status());
      const auto pages = (*eng)->SlicePages(static_cast<uint32_t>(slice));
      bench::CheckOk(pages.status());
      page_misses += faulted;
      page_hits += *pages - faulted;
    }
    const double hit_rate =
        static_cast<double>(page_hits) /
        static_cast<double>(page_hits + page_misses);
    const engine::BufferPoolStats stats = (*eng)->pool_stats();
    std::printf("%-14zu %-10llu %-10llu %-10.3f %-10llu\n", pool_pages,
                static_cast<unsigned long long>(page_hits),
                static_cast<unsigned long long>(page_misses), hit_rate,
                static_cast<unsigned long long>(stats.evictions));
    report.BeginRun("pool_" + std::to_string(pool_pages));
    report.Metric("pool_pages", pool_pages);
    report.Metric("hit_rate", hit_rate);
    report.Metric("page_hits", page_hits);
    report.Metric("page_misses", page_misses);
    report.Metric("evictions", stats.evictions);
  }

  // WAL append throughput, grouped vs per-append fsync.
  std::printf("\n%-22s %-14s %-12s\n", "wal_mode", "appends/s", "MB/s");
  for (const bool sync_each : {false, true}) {
    const std::string wal_path = TempPath("ebi_bench_engine.wal");
    std::remove(wal_path.c_str());
    engine::WalOptions options;
    options.sync_on_append = sync_each;
    auto wal = engine::Wal::Open(wal_path, options);
    bench::CheckOk(wal.status());
    const int appends = sync_each ? 200 : 20000;
    const std::vector<uint8_t> payload(512, 0xAB);
    bench::Timer timer;
    for (int i = 0; i < appends; ++i) {
      bench::CheckOk(
          (*wal)->Append(engine::kWalRecordRowBatch, payload).status());
    }
    bench::CheckOk((*wal)->Sync());
    const double seconds = timer.ElapsedMs() / 1000.0;
    const double per_second = appends / seconds;
    const double mb_per_second =
        per_second * static_cast<double>(payload.size()) / (1024.0 * 1024.0);
    const char* label = sync_each ? "fsync_per_append" : "group_commit";
    std::printf("%-22s %-14.0f %-12.2f\n", label, per_second, mb_per_second);
    report.BeginRun(std::string("wal_") + label);
    report.Metric("appends_per_s", per_second);
    report.Metric("mb_per_s", mb_per_second);
    report.Metric("payload_bytes", payload.size());
    std::remove(wal_path.c_str());
  }

  std::remove(path.c_str());
  std::remove((path + ".map").c_str());
  std::printf(
      "\n(The warm scan pays deserialization but no I/O once the pool\n"
      " holds the working set; shrinking the pool degrades hit rate\n"
      " smoothly, and group-commit WAL appends amortize the fsync.)\n");
}

}  // namespace
}  // namespace ebi

int main() {
  ebi::Run();
  return 0;
}
