// Reproduces the Section 2.2 / 3.1 maintenance analysis (Figure 2):
// appends without domain expansion cost O(h); appends WITH domain
// expansion cost O(h) .. O(|T|)+O(h) for encoded indexes but always
// O(|T|)+O(h) for simple ones (a brand-new length-n vector per new value).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "index/encoded_bitmap_index.h"
#include "index/simple_bitmap_index.h"
#include "query/maintenance.h"

namespace ebi {
namespace {

void Run() {
  const size_t n = 50000;
  const size_t m = 256;
  std::printf("=== Figure 2 / maintenance cost (n = %zu, m = %zu) ===\n", n,
              m);

  auto table = bench::RoundRobinTable(n, m);
  IoAccountant io;
  SimpleBitmapIndex simple(&table->column(0), &table->existence(), &io);
  EncodedBitmapIndex encoded(&table->column(0), &table->existence(), &io);
  if (!simple.Build().ok() || !encoded.Build().ok()) {
    std::printf("build failed\n");
    return;
  }
  MaintenanceDriver driver(table.get());
  bench::CheckOk(driver.AttachIndex(&simple));
  bench::CheckOk(driver.AttachIndex(&encoded));

  // Phase 1: appends of known values (no expansion).
  const size_t known_appends = 2000;
  bench::Timer t1;
  for (size_t i = 0; i < known_appends; ++i) {
    bench::CheckOk(
        driver.AppendRow({Value::Int(static_cast<int64_t>(i % m))}));
  }
  const double known_ms = t1.ElapsedMs();

  // Phase 2: appends of new values (domain expansion on every append).
  const size_t new_appends = 200;
  const size_t enc_vectors_before = encoded.NumVectors();
  const size_t simple_vectors_before = simple.NumVectors();
  bench::Timer t2;
  for (size_t i = 0; i < new_appends; ++i) {
    bench::CheckOk(
        driver.AppendRow({Value::Int(static_cast<int64_t>(m + i))}));
  }
  const double new_ms = t2.ElapsedMs();

  std::printf("%-34s %12s %14s\n", "phase", "appends", "us/append");
  std::printf("%-34s %12zu %14.2f\n", "known values (no expansion)",
              known_appends, known_ms * 1000.0 / known_appends);
  std::printf("%-34s %12zu %14.2f\n", "new values (domain expansion)",
              new_appends, new_ms * 1000.0 / new_appends);

  std::printf("\nvectors before/after %zu new values:\n", new_appends);
  std::printf("  simple : %zu -> %zu (+%zu fresh length-n vectors)\n",
              simple_vectors_before, simple.NumVectors(),
              simple.NumVectors() - simple_vectors_before);
  std::printf("  encoded: %zu -> %zu (Equation (1) grows width only at\n"
              "           powers of two; Figure 2(b))\n",
              enc_vectors_before, encoded.NumVectors());

  // Deletions: Theorem 2.1 in action.
  bench::Timer t3;
  for (size_t row = 0; row < 1000; ++row) {
    bench::CheckOk(driver.DeleteRow(row * 7));
  }
  std::printf("\n1000 deletions: %.2f us/delete (encoded rewrites k bits to\n"
              "the void codeword; simple relies on the existence AND)\n",
              t3.ElapsedMs());
}

}  // namespace
}  // namespace ebi

int main() {
  ebi::Run();
  return 0;
}
