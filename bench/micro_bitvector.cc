// google-benchmark microbenchmarks for the bitmap substrate: the logical
// operations every bitmap index in the library bottoms out in, plus
// compressed-form operations and the exact minimizer.

#include <benchmark/benchmark.h>

#include "boolean/reduction.h"
#include "util/bitvector.h"
#include "util/ewah_bitmap.h"
#include "util/random.h"
#include "util/rle_bitmap.h"

namespace ebi {
namespace {

BitVector RandomBits(size_t n, double density, uint64_t seed) {
  Rng rng(seed);
  BitVector v(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(density)) {
      v.Set(i);
    }
  }
  return v;
}

void BM_BitVectorAnd(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const BitVector a = RandomBits(n, 0.5, 1);
  const BitVector b = RandomBits(n, 0.5, 2);
  for (auto _ : state) {
    BitVector out = And(a, b);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * n / 4);
}
BENCHMARK(BM_BitVectorAnd)->Range(1 << 10, 1 << 22);

void BM_BitVectorOrInPlace(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  BitVector a = RandomBits(n, 0.5, 3);
  const BitVector b = RandomBits(n, 0.5, 4);
  for (auto _ : state) {
    a.OrWith(b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_BitVectorOrInPlace)->Range(1 << 10, 1 << 22);

void BM_BitVectorCount(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const BitVector a = RandomBits(n, 0.5, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Count());
  }
}
BENCHMARK(BM_BitVectorCount)->Range(1 << 10, 1 << 22);

void BM_RleCompressSparse(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const BitVector a = RandomBits(n, 0.01, 6);
  for (auto _ : state) {
    RleBitmap rle = RleBitmap::Compress(a);
    benchmark::DoNotOptimize(rle);
  }
}
BENCHMARK(BM_RleCompressSparse)->Range(1 << 12, 1 << 20);

void BM_RleAndSparse(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const RleBitmap a = RleBitmap::Compress(RandomBits(n, 0.01, 7));
  const RleBitmap b = RleBitmap::Compress(RandomBits(n, 0.01, 8));
  for (auto _ : state) {
    RleBitmap out = RleBitmap::And(a, b);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_RleAndSparse)->Range(1 << 12, 1 << 20);

void BM_EwahCompressSparse(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const BitVector a = RandomBits(n, 0.01, 9);
  for (auto _ : state) {
    EwahBitmap ewah = EwahBitmap::Compress(a);
    benchmark::DoNotOptimize(ewah);
  }
}
BENCHMARK(BM_EwahCompressSparse)->Range(1 << 12, 1 << 20);

void BM_EwahAndSparse(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const EwahBitmap a = EwahBitmap::Compress(RandomBits(n, 0.01, 10));
  const EwahBitmap b = EwahBitmap::Compress(RandomBits(n, 0.01, 11));
  for (auto _ : state) {
    EwahBitmap out = EwahBitmap::And(a, b);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_EwahAndSparse)->Range(1 << 12, 1 << 20);

void BM_EwahOrDense(benchmark::State& state) {
  // Half-dense inputs: literal-dominated buffers, the EWAH worst case —
  // word-aligned merging should still track the plain OR within a small
  // constant, unlike run-splitting RLE.
  const size_t n = static_cast<size_t>(state.range(0));
  const EwahBitmap a = EwahBitmap::Compress(RandomBits(n, 0.5, 12));
  const EwahBitmap b = EwahBitmap::Compress(RandomBits(n, 0.5, 13));
  for (auto _ : state) {
    EwahBitmap out = EwahBitmap::Or(a, b);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * n / 4);
}
BENCHMARK(BM_EwahOrDense)->Range(1 << 12, 1 << 20);

void BM_EwahDecompress(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const EwahBitmap a = EwahBitmap::Compress(RandomBits(n, 0.01, 14));
  for (auto _ : state) {
    BitVector out = a.Decompress();
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_EwahDecompress)->Range(1 << 12, 1 << 20);

void BM_ReduceConsecutiveInList(benchmark::State& state) {
  const size_t delta = static_cast<size_t>(state.range(0));
  std::vector<uint64_t> onset(delta);
  for (size_t i = 0; i < delta; ++i) {
    onset[i] = i;
  }
  for (auto _ : state) {
    Cover cover = ReduceRetrievalFunction(onset, {}, 10);
    benchmark::DoNotOptimize(cover);
  }
}
BENCHMARK(BM_ReduceConsecutiveInList)->RangeMultiplier(4)->Range(4, 1024);

}  // namespace
}  // namespace ebi
