// Ablation study: which parts of encoded bitmap indexing buy what.
// Dimensions ablated (the design choices DESIGN.md calls out):
//   (a) logical reduction on/off          — reduction is what turns a good
//                                           encoding into fewer reads;
//   (b) encoding quality (annealed/gray/sequential/random)
//                                         — Theorems 2.2/2.3's subject;
//   (c) void codeword reserved or not     — Theorem 2.1's existence read.
// Workload: 80 IN-list selections drawn from three recurring "hot" value
// groups on a 64-value domain, 40000 rows.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "index/encoded_bitmap_index.h"
#include "util/random.h"
#include "workload/generator.h"

namespace ebi {
namespace {

struct Config {
  const char* name;
  EncodingStrategy strategy;
  bool reduction;
  bool reserve_void;
};

void Run() {
  const size_t m = 64;
  // Round-robin values so ValueId == value: the hot groups below are
  // expressed as ValueIds and must mean the same values in every run.
  const auto table_ptr = bench::RoundRobinTable(40000, m);
  const Table& table = *table_ptr;
  const Column* column = *table.FindColumn("a");

  // Hot groups + noise queries.
  const PredicateSet hot = {{0, 1, 2, 3, 4, 5, 6, 7},
                            {16, 17, 18, 19},
                            {32, 33, 34, 35, 36, 37}};
  Rng rng(123);
  std::vector<std::vector<Value>> queries;
  for (int q = 0; q < 80; ++q) {
    std::vector<ValueId> ids;
    if (rng.Bernoulli(0.75)) {
      ids = hot[rng.UniformInt(hot.size())];
    } else {
      const size_t width = 2 + rng.UniformInt(6);
      for (size_t i = 0; i < width; ++i) {
        ids.push_back(static_cast<ValueId>(rng.UniformInt(m)));
      }
    }
    std::vector<Value> values;
    for (ValueId v : ids) {
      values.push_back(Value::Int(static_cast<int64_t>(v)));
    }
    queries.push_back(std::move(values));
  }

  const std::vector<Config> configs = {
      {"annealed+reduce+void", EncodingStrategy::kAnnealed, true, true},
      {"annealed+reduce", EncodingStrategy::kAnnealed, true, false},
      {"annealed,no-reduce", EncodingStrategy::kAnnealed, false, true},
      {"gray+reduce+void", EncodingStrategy::kGray, true, true},
      {"sequential+reduce+void", EncodingStrategy::kSequential, true, true},
      {"random+reduce+void", EncodingStrategy::kRandom, true, true},
      {"random,no-reduce", EncodingStrategy::kRandom, false, true},
  };

  std::printf("=== Ablation: what each design choice buys ===\n");
  std::printf("workload: 80 IN-lists (75%% from 3 hot groups), m=%zu, "
              "k=%d slices, n=%zu\n\n",
              m, 7, table.NumRows());
  std::printf("%-26s %-14s %-12s\n", "configuration", "vector_reads",
              "ms");
  for (const Config& c : configs) {
    IoAccountant io;
    EncodedBitmapIndexOptions options;
    options.strategy = c.strategy;
    options.reduction.enable_reduction = c.reduction;
    options.reserve_void_zero = c.reserve_void;
    options.training_predicates = hot;
    options.optimizer.iterations = 2000;
    EncodedBitmapIndex index(column, &table.existence(), &io, options);
    if (!index.Build().ok()) {
      std::printf("%-26s build failed\n", c.name);
      continue;
    }
    io.Reset();
    bench::Timer timer;
    for (const auto& values : queries) {
      bench::CheckOk(index.EvaluateIn(values));
    }
    std::printf("%-26s %-14llu %-12.1f\n", c.name,
                static_cast<unsigned long long>(io.stats().vectors_read),
                timer.ElapsedMs());
  }
  std::printf(
      "\n(Reduction off pins every query at k vectors (560 = 80*7); random\n"
      " encodings leave reduction almost nothing to merge; trained/gray\n"
      " encodings recover ~18%% on this mix — the same magnitude as the\n"
      " paper's own average-savings estimate in Section 3.2 (10-16%%),\n"
      " with the big wins concentrated on the hot subcube selections.\n"
      " Reserving the void codeword trades one existence read per query\n"
      " for codeword alignment; which wins depends on the mix.)\n");
}

}  // namespace
}  // namespace ebi

int main() {
  ebi::Run();
  return 0;
}
