#!/usr/bin/env bash
# Regenerates every result in EXPERIMENTS.md from scratch:
# configure, build, run the full test suite (once plain, once under
# ASan/UBSan), then every benchmark harness. Outputs land in
# test_output.txt and bench_output.txt at the repo root.
set -u

cd "$(dirname "$0")/.."

# Static checks first: the linter's own selftest, then the repo rules.
# A lint violation fails the reproduction run before any cycles are spent
# building.
bash scripts/lint.sh --selftest
bash scripts/lint.sh

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

# Forced-backend sweep: re-run the bitmap substrate + query suites once
# per kernel backend this CPU supports, with EBI_FORCE_KERNEL pinned.
# The differential test's ForcedBackendIsActive asserts each pin took
# effect; an unsupported name would degrade to auto-detection with a
# stderr warning instead of failing, so only supported backends are
# swept here.
for backend in scalar avx2 avx512 neon; do
  echo "=== EBI_FORCE_KERNEL=$backend ===" | tee -a test_output.txt
  EBI_FORCE_KERNEL="$backend" ctest --test-dir build \
    -R 'kernel_differential|bitvector|ewah|rle|stored_bitmap|bitmap_kernel_edge|cover|executor|simple_bitmap_index' \
    2>&1 | tee -a test_output.txt
done

# Sanitized pass: same suite, instrumented with ASan + UBSan. A Debug
# build keeps the asserts (the size-contract checks) live as well.
cmake -B build-asan -G Ninja -DCMAKE_BUILD_TYPE=Debug \
  -DEBI_SANITIZE=address,undefined
cmake --build build-asan
ctest --test-dir build-asan 2>&1 | tee -a test_output.txt

# ThreadSanitizer pass over the concurrency surface: the thread pool, the
# segmented/sharded execution path, the shared atomic accountant, the
# serving layer (snapshot pins + combining appends under real races), the
# sharded cluster tier (scatter-gather + routed appends + hedging), and
# the storage engine (buffer-pool pins + concurrent WAL appends).
# TSan and ASan cannot share a build, hence the third tree.
cmake -B build-tsan -G Ninja -DCMAKE_BUILD_TYPE=Debug \
  -DEBI_SANITIZE=thread
cmake --build build-tsan
ctest --test-dir build-tsan \
  -R 'thread_pool|lock_rank|segmented_table|sharded_index|parallel_executor|io_accountant|query_service|serve_stress|cluster_service|cluster_stress|telemetry|workload_recorder|storage_engine|wal_recovery' \
  2>&1 | tee -a test_output.txt

# Compile-time thread-safety pass: when a clang is available, rebuild
# with Clang's Thread Safety Analysis promoted to an error
# (-Wthread-safety via EBI_THREAD_SAFETY). GCC compiles the capability
# annotations away, so this leg is the one that actually checks them.
if command -v clang++ > /dev/null 2>&1; then
  CC=clang CXX=clang++ cmake -B build-tsa -G Ninja -DEBI_THREAD_SAFETY=ON
  cmake --build build-tsa 2>&1 | tee -a test_output.txt
  ctest --test-dir build-tsa -R 'lock_rank' 2>&1 | tee -a test_output.txt
else
  echo "clang++ not found: skipping the -Wthread-safety leg" \
    | tee -a test_output.txt
fi

# Crash-recovery drill: the storage-engine and WAL suites run once more,
# by name, so torn-page, torn-tail, and kill-mid-publish recovery results
# are visible in the reproduction log even when the full suite above is
# skimmed.
ctest --test-dir build -R 'storage_engine|wal_recovery' \
  2>&1 | tee -a test_output.txt

# Machine-readable export: every bench that writes BENCH_<name>.json must
# emit documents matching the schema in scripts/check_bench_json.sh. The
# default set includes obs_overhead, whose sampling_off throughput ratio
# is gated there (always-on telemetry must stay near-free when idle), and
# serve_cluster, whose 4-shard victim p99 is gated against the
# single-shard p99 (partitioning must keep isolating the adversary).
bash scripts/check_bench_json.sh
mkdir -p bench-json
EBI_BENCH_JSON_DIR=bench-json ./build/bench/serve_throughput > /dev/null
bash scripts/check_bench_json.sh bench-json/BENCH_serve_throughput.json

# Workload-log pipeline smoke: serve_demo records its queries into a
# JSONL workload log; ebi_workload must summarize it without skipping a
# line. (serve_demo writes into the CWD, so run it from bench-json.)
(cd bench-json && ../build/examples/serve_demo > /dev/null \
  && ../build/tools/ebi_workload summary serve_demo.workload.jsonl)

: > bench_output.txt
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "===== $(basename "$b") =====" | tee -a bench_output.txt
    "$b" 2>&1 | tee -a bench_output.txt
    echo | tee -a bench_output.txt
  fi
done

echo "Done: see test_output.txt and bench_output.txt"
