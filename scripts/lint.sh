#!/usr/bin/env bash
# Static checks for the EBI repo:
#   1. tools/ebi_lint.py        repo-specific structural rules
#   2. NOLINT audit             every NOLINT marker needs an allowlist entry
#   3. clang-tidy               over compile_commands.json, when installed
#
# Usage:
#   scripts/lint.sh             run all checks; nonzero exit on findings
#   scripts/lint.sh --selftest  verify the linter against its known-bad
#                               fixtures (tools/lint_fixtures/)
set -u

cd "$(dirname "$0")/.."

if [ "${1:-}" = "--selftest" ]; then
  exec python3 tools/ebi_lint.py --selftest
fi

fail=0

python3 tools/ebi_lint.py || fail=1

# NOLINT audit: a NOLINT marker suppresses clang-tidy silently, so every
# file carrying one must own a `nolint <path>` allowlist entry — new
# suppressions land only with an explicit, justified exception.
nolint_fail=0
while IFS= read -r file; do
  if ! grep -Eq "^[[:space:]]*nolint[[:space:]]+$file([[:space:]]|$)" \
      tools/ebi_lint_allow.txt; then
    echo "$file: NOLINT marker without a 'nolint $file' entry in" \
         "tools/ebi_lint_allow.txt"
    nolint_fail=1
  fi
done < <(git grep -l "NOLINT" -- src tests examples bench 2>/dev/null)
if [ "$nolint_fail" -ne 0 ]; then
  fail=1
else
  echo "nolint-audit: clean"
fi

# clang-tidy needs a compilation database; any configured build tree with
# CMAKE_EXPORT_COMPILE_COMMANDS (on by default in this repo) provides one.
if command -v clang-tidy >/dev/null 2>&1; then
  tidy_build="build-tidy"
  if [ ! -f "$tidy_build/compile_commands.json" ]; then
    for d in build build-werror; do
      if [ -f "$d/compile_commands.json" ]; then
        tidy_build="$d"
        break
      fi
    done
  fi
  if [ ! -f "$tidy_build/compile_commands.json" ]; then
    cmake -B "$tidy_build" -DCMAKE_BUILD_TYPE=Debug >/dev/null || fail=1
  fi
  if [ -f "$tidy_build/compile_commands.json" ]; then
    echo "clang-tidy: using $tidy_build/compile_commands.json"
    mapfile -t sources < <(git ls-files 'src/**/*.cc')
    if ! clang-tidy -p "$tidy_build" --quiet "${sources[@]}"; then
      fail=1
    fi
  fi
else
  echo "clang-tidy: not installed; skipping (the CI lint job runs it)"
fi

if [ "$fail" -ne 0 ]; then
  echo "lint: FAILED"
else
  echo "lint: OK"
fi
exit "$fail"
