#!/usr/bin/env bash
# Validates the machine-readable bench export: runs a bench with
# EBI_BENCH_JSON_DIR pointing at a temp directory (or validates JSON
# files passed as arguments), then checks every BENCH_*.json against the
# schema BenchReport promises:
#
#   {"bench": str, "schema_version": 1,
#    "runs": [{"label": str, "metrics": {str: number, ...}}, ...]}
#
# Usage:
#   check_bench_json.sh                 # run the default bench set
#   check_bench_json.sh FILE.json ...   # validate existing exports
set -u

cd "$(dirname "$0")/.."

# Benches run (and validated) by the no-argument mode: the paper's access
# cost figure plus the kernel-dispatch throughput grid.
DEFAULT_BENCHES=(fig9_access_cost kernel_throughput)

files=()
tmpdir=""
if [ "$#" -gt 0 ]; then
  files=("$@")
else
  tmpdir="$(mktemp -d)"
  trap 'rm -rf "$tmpdir"' EXIT
  for bench in "${DEFAULT_BENCHES[@]}"; do
    bench_bin="build/bench/$bench"
    if [ ! -x "$bench_bin" ]; then
      echo "check_bench_json: $bench_bin not built;" \
           "run cmake --build build" >&2
      exit 1
    fi
    EBI_BENCH_JSON_DIR="$tmpdir" "$bench_bin" > /dev/null
  done
  for f in "$tmpdir"/BENCH_*.json; do
    [ -f "$f" ] && files+=("$f")
  done
  if [ "${#files[@]}" -ne "${#DEFAULT_BENCHES[@]}" ]; then
    echo "check_bench_json: expected ${#DEFAULT_BENCHES[@]} BENCH_*.json" \
         "exports, found ${#files[@]}" >&2
    exit 1
  fi
fi

validate_with_python() {
  python3 - "$1" <<'EOF'
import json
import numbers
import sys

path = sys.argv[1]
with open(path, "rb") as f:
    doc = json.load(f)

def fail(msg):
    print(f"check_bench_json: {path}: {msg}", file=sys.stderr)
    sys.exit(1)

if not isinstance(doc, dict):
    fail("top level is not an object")
if not isinstance(doc.get("bench"), str) or not doc["bench"]:
    fail('missing or empty "bench" string')
if doc.get("schema_version") != 1:
    fail('"schema_version" must be 1')
runs = doc.get("runs")
if not isinstance(runs, list) or not runs:
    fail('"runs" must be a non-empty array')
for i, run in enumerate(runs):
    if not isinstance(run, dict):
        fail(f"runs[{i}] is not an object")
    if not isinstance(run.get("label"), str) or not run["label"]:
        fail(f'runs[{i}] missing or empty "label"')
    metrics = run.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        fail(f'runs[{i}] "metrics" must be a non-empty object')
    for key, value in metrics.items():
        if not isinstance(value, numbers.Real) or isinstance(value, bool):
            fail(f"runs[{i}].metrics[{key!r}] is not a number")
EOF
}

validate_with_jq() {
  jq -e '
    (type == "object")
    and (.bench | type == "string" and length > 0)
    and (.schema_version == 1)
    and (.runs | type == "array" and length > 0)
    and ([.runs[]
          | (type == "object")
            and (.label | type == "string" and length > 0)
            and (.metrics | type == "object" and length > 0)
            and ([.metrics[] | type == "number"] | all)
         ] | all)
  ' "$1" > /dev/null
}

fail=0
for f in "${files[@]}"; do
  if command -v python3 > /dev/null 2>&1; then
    validate_with_python "$f" || fail=1
  elif command -v jq > /dev/null 2>&1; then
    if ! validate_with_jq "$f"; then
      echo "check_bench_json: $f: schema validation failed" >&2
      fail=1
    fi
  else
    echo "check_bench_json: need python3 or jq to validate" >&2
    exit 1
  fi
  if [ "$fail" -eq 0 ]; then
    echo "check_bench_json: OK $(basename "$f")"
  fi
done

exit "$fail"
