#!/usr/bin/env bash
# Validates the machine-readable bench export: runs a bench with
# EBI_BENCH_JSON_DIR pointing at a temp directory (or validates JSON
# files passed as arguments), then checks every BENCH_*.json against the
# schema BenchReport promises:
#
#   {"bench": str, "schema_version": 1,
#    "runs": [{"label": str, "metrics": {str: number, ...}}, ...]}
#
# Usage:
#   check_bench_json.sh                 # run the default bench set
#   check_bench_json.sh FILE.json ...   # validate existing exports
set -u

cd "$(dirname "$0")/.."

# Benches run (and validated) by the no-argument mode: the paper's access
# cost figure, the kernel-dispatch throughput grid, the telemetry
# overhead bench (whose sampling_off run is additionally gated below),
# the tiered storage engine (whose warm-scan ratio is gated below), and
# the sharded serve tier (whose shard-sweep p99s are gated below).
DEFAULT_BENCHES=(fig9_access_cost kernel_throughput obs_overhead
                 storage_engine serve_cluster)

# Telemetry overhead gate: with telemetry enabled but sampling off, serve
# throughput must stay within this fraction of the no-sink baseline. The
# design target is 2% (ISSUE 7 acceptance, measured locally best-of-3);
# the CI gate allows 10% because shared runners are noisy.
OBS_OVERHEAD_MIN_RATIO="${OBS_OVERHEAD_MIN_RATIO:-0.90}"

# Storage engine warm-scan gate: with the buffer pool at or above the
# working set, a warm scan through the engine (page lookups + payload
# assembly + decode) must stay within this factor of the in-memory
# store path. The design target is 1.25x (ISSUE 8 acceptance, measured
# locally); the CI gate is looser because the scans are microsecond-
# scale and shared runners are noisy.
STORAGE_ENGINE_MAX_WARM_RATIO="${STORAGE_ENGINE_MAX_WARM_RATIO:-2.5}"

# Cluster isolation gate: on the saturating closed-loop workload (slow-
# query adversary pinned to one tenant, fixed total worker budget),
# victim p99 at 4 shards must not exceed victim p99 at 1 shard times
# this ratio. Locally the 4-shard p99 is ~5x better (ISSUE 10
# acceptance); 1.0 just demands sharding never makes the tail worse.
CLUSTER_P99_MAX_RATIO="${CLUSTER_P99_MAX_RATIO:-1.0}"

files=()
tmpdir=""
if [ "$#" -gt 0 ]; then
  files=("$@")
else
  tmpdir="$(mktemp -d)"
  trap 'rm -rf "$tmpdir"' EXIT
  for bench in "${DEFAULT_BENCHES[@]}"; do
    bench_bin="build/bench/$bench"
    if [ ! -x "$bench_bin" ]; then
      echo "check_bench_json: $bench_bin not built;" \
           "run cmake --build build" >&2
      exit 1
    fi
    EBI_BENCH_JSON_DIR="$tmpdir" "$bench_bin" > /dev/null
  done
  for f in "$tmpdir"/BENCH_*.json; do
    [ -f "$f" ] && files+=("$f")
  done
  if [ "${#files[@]}" -ne "${#DEFAULT_BENCHES[@]}" ]; then
    echo "check_bench_json: expected ${#DEFAULT_BENCHES[@]} BENCH_*.json" \
         "exports, found ${#files[@]}" >&2
    exit 1
  fi
fi

validate_with_python() {
  python3 - "$1" <<'EOF'
import json
import numbers
import sys

path = sys.argv[1]
with open(path, "rb") as f:
    doc = json.load(f)

def fail(msg):
    print(f"check_bench_json: {path}: {msg}", file=sys.stderr)
    sys.exit(1)

if not isinstance(doc, dict):
    fail("top level is not an object")
if not isinstance(doc.get("bench"), str) or not doc["bench"]:
    fail('missing or empty "bench" string')
if doc.get("schema_version") != 1:
    fail('"schema_version" must be 1')
runs = doc.get("runs")
if not isinstance(runs, list) or not runs:
    fail('"runs" must be a non-empty array')
for i, run in enumerate(runs):
    if not isinstance(run, dict):
        fail(f"runs[{i}] is not an object")
    if not isinstance(run.get("label"), str) or not run["label"]:
        fail(f'runs[{i}] missing or empty "label"')
    metrics = run.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        fail(f'runs[{i}] "metrics" must be a non-empty object')
    for key, value in metrics.items():
        if not isinstance(value, numbers.Real) or isinstance(value, bool):
            fail(f"runs[{i}].metrics[{key!r}] is not a number")
EOF
}

validate_with_jq() {
  jq -e '
    (type == "object")
    and (.bench | type == "string" and length > 0)
    and (.schema_version == 1)
    and (.runs | type == "array" and length > 0)
    and ([.runs[]
          | (type == "object")
            and (.label | type == "string" and length > 0)
            and (.metrics | type == "object" and length > 0)
            and ([.metrics[] | type == "number"] | all)
         ] | all)
  ' "$1" > /dev/null
}

# The obs_overhead export carries a vs_no_sink throughput ratio per
# configuration; gate the sampling_off one so always-on telemetry can
# never quietly grow a hot-path cost.
gate_obs_overhead() {
  python3 - "$1" "$OBS_OVERHEAD_MIN_RATIO" <<'EOF'
import json
import sys

path, min_ratio = sys.argv[1], float(sys.argv[2])
with open(path, "rb") as f:
    doc = json.load(f)
ratios = {run["label"]: run["metrics"].get("vs_no_sink")
          for run in doc.get("runs", [])}
ratio = ratios.get("sampling_off")
if ratio is None:
    print(f"check_bench_json: {path}: no sampling_off/vs_no_sink metric",
          file=sys.stderr)
    sys.exit(1)
if ratio < min_ratio:
    print(f"check_bench_json: {path}: sampling_off throughput ratio "
          f"{ratio:.4f} below gate {min_ratio} — telemetry-off overhead "
          "crept into the serve path", file=sys.stderr)
    sys.exit(1)
print(f"check_bench_json: obs_overhead gate OK "
      f"(sampling_off {ratio:.4f} >= {min_ratio})")
EOF
}

# The storage_engine export carries the warm/in-memory latency ratio in
# its scan_latency run; gate it so engine reads can never quietly decay
# from "cached page lookup" back to "deserialize the world".
gate_storage_engine() {
  python3 - "$1" "$STORAGE_ENGINE_MAX_WARM_RATIO" <<'EOF'
import json
import sys

path, max_ratio = sys.argv[1], float(sys.argv[2])
with open(path, "rb") as f:
    doc = json.load(f)
metrics = {run["label"]: run["metrics"] for run in doc.get("runs", [])}
scan = metrics.get("scan_latency", {})
ratio = scan.get("warm_vs_memory")
if ratio is None:
    print(f"check_bench_json: {path}: no scan_latency/warm_vs_memory "
          "metric", file=sys.stderr)
    sys.exit(1)
if ratio > max_ratio:
    print(f"check_bench_json: {path}: warm scan ratio {ratio:.4f} above "
          f"gate {max_ratio} — the engine's warm read path got slower "
          "than the in-memory store allows", file=sys.stderr)
    sys.exit(1)
wal = metrics.get("wal_group_commit", {})
if not wal.get("appends_per_s", 0) > 0:
    print(f"check_bench_json: {path}: missing or non-positive "
          "wal_group_commit/appends_per_s", file=sys.stderr)
    sys.exit(1)
print(f"check_bench_json: storage_engine gate OK "
      f"(warm_vs_memory {ratio:.4f} <= {max_ratio})")
EOF
}

# The serve_cluster export sweeps shard counts under the same offered
# load; gate the closed-loop sweep so partitioning keeps paying for
# itself — the 4-shard victim p99 must beat (or at worst match) the
# single-shard p99, and the sweep must actually cover >= 2 shard counts.
gate_serve_cluster() {
  python3 - "$1" "$CLUSTER_P99_MAX_RATIO" <<'EOF'
import json
import sys

path, max_ratio = sys.argv[1], float(sys.argv[2])
with open(path, "rb") as f:
    doc = json.load(f)
metrics = {run["label"]: run["metrics"] for run in doc.get("runs", [])}
shard_counts = {int(m["shards"]) for m in metrics.values() if "shards" in m}
if len(shard_counts) < 2:
    print(f"check_bench_json: {path}: shard sweep covers only "
          f"{sorted(shard_counts)} — need >= 2 shard counts", file=sys.stderr)
    sys.exit(1)
single = metrics.get("closed.shards1", {}).get("p99_ms")
sharded = metrics.get("closed.shards4", {}).get("p99_ms")
if single is None or sharded is None:
    print(f"check_bench_json: {path}: missing closed.shards1/closed.shards4 "
          "p99_ms", file=sys.stderr)
    sys.exit(1)
if not single > 0:
    print(f"check_bench_json: {path}: closed.shards1 p99_ms is not positive",
          file=sys.stderr)
    sys.exit(1)
if sharded > single * max_ratio:
    print(f"check_bench_json: {path}: 4-shard p99 {sharded:.3f} ms exceeds "
          f"single-shard p99 {single:.3f} ms x {max_ratio} — partitioning "
          "stopped isolating the adversary", file=sys.stderr)
    sys.exit(1)
print(f"check_bench_json: serve_cluster gate OK "
      f"(shards4 p99 {sharded:.3f} ms <= shards1 {single:.3f} ms "
      f"x {max_ratio})")
EOF
}

fail=0
for f in "${files[@]}"; do
  if command -v python3 > /dev/null 2>&1; then
    validate_with_python "$f" || fail=1
  elif command -v jq > /dev/null 2>&1; then
    if ! validate_with_jq "$f"; then
      echo "check_bench_json: $f: schema validation failed" >&2
      fail=1
    fi
  else
    echo "check_bench_json: need python3 or jq to validate" >&2
    exit 1
  fi
  if [ "$fail" -eq 0 ]; then
    echo "check_bench_json: OK $(basename "$f")"
  fi
  case "$(basename "$f")" in
    BENCH_obs_overhead.json)
      if command -v python3 > /dev/null 2>&1; then
        gate_obs_overhead "$f" || fail=1
      fi
      ;;
    BENCH_storage_engine.json)
      if command -v python3 > /dev/null 2>&1; then
        gate_storage_engine "$f" || fail=1
      fi
      ;;
    BENCH_serve_cluster.json)
      if command -v python3 > /dev/null 2>&1; then
        gate_serve_cluster "$f" || fail=1
      fi
      ;;
  esac
done

exit "$fail"
