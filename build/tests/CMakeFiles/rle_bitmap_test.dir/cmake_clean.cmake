file(REMOVE_RECURSE
  "CMakeFiles/rle_bitmap_test.dir/rle_bitmap_test.cc.o"
  "CMakeFiles/rle_bitmap_test.dir/rle_bitmap_test.cc.o.d"
  "rle_bitmap_test"
  "rle_bitmap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rle_bitmap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
