file(REMOVE_RECURSE
  "CMakeFiles/base_bit_sliced_index_test.dir/base_bit_sliced_index_test.cc.o"
  "CMakeFiles/base_bit_sliced_index_test.dir/base_bit_sliced_index_test.cc.o.d"
  "base_bit_sliced_index_test"
  "base_bit_sliced_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/base_bit_sliced_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
