# Empty compiler generated dependencies file for base_bit_sliced_index_test.
# This may be replaced when dependencies are built.
