# Empty dependencies file for projection_index_test.
# This may be replaced when dependencies are built.
