file(REMOVE_RECURSE
  "CMakeFiles/projection_index_test.dir/projection_index_test.cc.o"
  "CMakeFiles/projection_index_test.dir/projection_index_test.cc.o.d"
  "projection_index_test"
  "projection_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/projection_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
