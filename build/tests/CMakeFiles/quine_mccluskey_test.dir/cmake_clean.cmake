file(REMOVE_RECURSE
  "CMakeFiles/quine_mccluskey_test.dir/quine_mccluskey_test.cc.o"
  "CMakeFiles/quine_mccluskey_test.dir/quine_mccluskey_test.cc.o.d"
  "quine_mccluskey_test"
  "quine_mccluskey_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quine_mccluskey_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
