# Empty dependencies file for quine_mccluskey_test.
# This may be replaced when dependencies are built.
