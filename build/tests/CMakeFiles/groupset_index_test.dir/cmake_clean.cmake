file(REMOVE_RECURSE
  "CMakeFiles/groupset_index_test.dir/groupset_index_test.cc.o"
  "CMakeFiles/groupset_index_test.dir/groupset_index_test.cc.o.d"
  "groupset_index_test"
  "groupset_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groupset_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
