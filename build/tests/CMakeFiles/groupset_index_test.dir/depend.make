# Empty dependencies file for groupset_index_test.
# This may be replaced when dependencies are built.
