# Empty dependencies file for cold_encoded_bitmap_index_test.
# This may be replaced when dependencies are built.
