file(REMOVE_RECURSE
  "CMakeFiles/cold_encoded_bitmap_index_test.dir/cold_encoded_bitmap_index_test.cc.o"
  "CMakeFiles/cold_encoded_bitmap_index_test.dir/cold_encoded_bitmap_index_test.cc.o.d"
  "cold_encoded_bitmap_index_test"
  "cold_encoded_bitmap_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_encoded_bitmap_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
