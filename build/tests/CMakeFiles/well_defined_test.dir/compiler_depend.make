# Empty compiler generated dependencies file for well_defined_test.
# This may be replaced when dependencies are built.
