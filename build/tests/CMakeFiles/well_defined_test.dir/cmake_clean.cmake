file(REMOVE_RECURSE
  "CMakeFiles/well_defined_test.dir/well_defined_test.cc.o"
  "CMakeFiles/well_defined_test.dir/well_defined_test.cc.o.d"
  "well_defined_test"
  "well_defined_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/well_defined_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
