# Empty dependencies file for bit_sliced_index_test.
# This may be replaced when dependencies are built.
