file(REMOVE_RECURSE
  "CMakeFiles/bit_sliced_index_test.dir/bit_sliced_index_test.cc.o"
  "CMakeFiles/bit_sliced_index_test.dir/bit_sliced_index_test.cc.o.d"
  "bit_sliced_index_test"
  "bit_sliced_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bit_sliced_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
