# Empty compiler generated dependencies file for range_based_bitmap_index_test.
# This may be replaced when dependencies are built.
