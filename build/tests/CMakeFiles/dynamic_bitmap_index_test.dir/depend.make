# Empty dependencies file for dynamic_bitmap_index_test.
# This may be replaced when dependencies are built.
