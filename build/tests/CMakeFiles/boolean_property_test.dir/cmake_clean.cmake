file(REMOVE_RECURSE
  "CMakeFiles/boolean_property_test.dir/boolean_property_test.cc.o"
  "CMakeFiles/boolean_property_test.dir/boolean_property_test.cc.o.d"
  "boolean_property_test"
  "boolean_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boolean_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
