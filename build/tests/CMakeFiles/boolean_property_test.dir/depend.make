# Empty dependencies file for boolean_property_test.
# This may be replaced when dependencies are built.
