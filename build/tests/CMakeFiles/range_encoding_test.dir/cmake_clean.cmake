file(REMOVE_RECURSE
  "CMakeFiles/range_encoding_test.dir/range_encoding_test.cc.o"
  "CMakeFiles/range_encoding_test.dir/range_encoding_test.cc.o.d"
  "range_encoding_test"
  "range_encoding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range_encoding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
