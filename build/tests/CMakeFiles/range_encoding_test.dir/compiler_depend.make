# Empty compiler generated dependencies file for range_encoding_test.
# This may be replaced when dependencies are built.
