# Empty compiler generated dependencies file for simple_bitmap_index_test.
# This may be replaced when dependencies are built.
