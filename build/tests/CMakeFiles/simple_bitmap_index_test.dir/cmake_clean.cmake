file(REMOVE_RECURSE
  "CMakeFiles/simple_bitmap_index_test.dir/simple_bitmap_index_test.cc.o"
  "CMakeFiles/simple_bitmap_index_test.dir/simple_bitmap_index_test.cc.o.d"
  "simple_bitmap_index_test"
  "simple_bitmap_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simple_bitmap_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
