file(REMOVE_RECURSE
  "CMakeFiles/value_list_index_test.dir/value_list_index_test.cc.o"
  "CMakeFiles/value_list_index_test.dir/value_list_index_test.cc.o.d"
  "value_list_index_test"
  "value_list_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_list_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
