# Empty dependencies file for value_list_index_test.
# This may be replaced when dependencies are built.
