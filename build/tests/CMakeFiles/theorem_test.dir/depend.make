# Empty dependencies file for theorem_test.
# This may be replaced when dependencies are built.
