file(REMOVE_RECURSE
  "CMakeFiles/encoded_matrix_test.dir/encoded_matrix_test.cc.o"
  "CMakeFiles/encoded_matrix_test.dir/encoded_matrix_test.cc.o.d"
  "encoded_matrix_test"
  "encoded_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encoded_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
