# Empty dependencies file for encoded_matrix_test.
# This may be replaced when dependencies are built.
