file(REMOVE_RECURSE
  "CMakeFiles/io_accountant_test.dir/io_accountant_test.cc.o"
  "CMakeFiles/io_accountant_test.dir/io_accountant_test.cc.o.d"
  "io_accountant_test"
  "io_accountant_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_accountant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
