# Empty dependencies file for io_accountant_test.
# This may be replaced when dependencies are built.
