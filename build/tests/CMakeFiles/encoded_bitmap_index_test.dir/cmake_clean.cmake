file(REMOVE_RECURSE
  "CMakeFiles/encoded_bitmap_index_test.dir/encoded_bitmap_index_test.cc.o"
  "CMakeFiles/encoded_bitmap_index_test.dir/encoded_bitmap_index_test.cc.o.d"
  "encoded_bitmap_index_test"
  "encoded_bitmap_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encoded_bitmap_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
