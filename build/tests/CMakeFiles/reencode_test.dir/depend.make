# Empty dependencies file for reencode_test.
# This may be replaced when dependencies are built.
