file(REMOVE_RECURSE
  "CMakeFiles/reencode_test.dir/reencode_test.cc.o"
  "CMakeFiles/reencode_test.dir/reencode_test.cc.o.d"
  "reencode_test"
  "reencode_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reencode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
