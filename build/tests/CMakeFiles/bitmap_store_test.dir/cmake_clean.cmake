file(REMOVE_RECURSE
  "CMakeFiles/bitmap_store_test.dir/bitmap_store_test.cc.o"
  "CMakeFiles/bitmap_store_test.dir/bitmap_store_test.cc.o.d"
  "bitmap_store_test"
  "bitmap_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitmap_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
