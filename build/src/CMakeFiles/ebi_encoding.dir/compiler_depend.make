# Empty compiler generated dependencies file for ebi_encoding.
# This may be replaced when dependencies are built.
