file(REMOVE_RECURSE
  "libebi_encoding.a"
)
