
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/encoding/chain.cc" "src/CMakeFiles/ebi_encoding.dir/encoding/chain.cc.o" "gcc" "src/CMakeFiles/ebi_encoding.dir/encoding/chain.cc.o.d"
  "/root/repo/src/encoding/encoders.cc" "src/CMakeFiles/ebi_encoding.dir/encoding/encoders.cc.o" "gcc" "src/CMakeFiles/ebi_encoding.dir/encoding/encoders.cc.o.d"
  "/root/repo/src/encoding/hierarchy.cc" "src/CMakeFiles/ebi_encoding.dir/encoding/hierarchy.cc.o" "gcc" "src/CMakeFiles/ebi_encoding.dir/encoding/hierarchy.cc.o.d"
  "/root/repo/src/encoding/mapping_table.cc" "src/CMakeFiles/ebi_encoding.dir/encoding/mapping_table.cc.o" "gcc" "src/CMakeFiles/ebi_encoding.dir/encoding/mapping_table.cc.o.d"
  "/root/repo/src/encoding/optimizer.cc" "src/CMakeFiles/ebi_encoding.dir/encoding/optimizer.cc.o" "gcc" "src/CMakeFiles/ebi_encoding.dir/encoding/optimizer.cc.o.d"
  "/root/repo/src/encoding/range_encoding.cc" "src/CMakeFiles/ebi_encoding.dir/encoding/range_encoding.cc.o" "gcc" "src/CMakeFiles/ebi_encoding.dir/encoding/range_encoding.cc.o.d"
  "/root/repo/src/encoding/well_defined.cc" "src/CMakeFiles/ebi_encoding.dir/encoding/well_defined.cc.o" "gcc" "src/CMakeFiles/ebi_encoding.dir/encoding/well_defined.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ebi_boolean.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebi_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
