file(REMOVE_RECURSE
  "CMakeFiles/ebi_encoding.dir/encoding/chain.cc.o"
  "CMakeFiles/ebi_encoding.dir/encoding/chain.cc.o.d"
  "CMakeFiles/ebi_encoding.dir/encoding/encoders.cc.o"
  "CMakeFiles/ebi_encoding.dir/encoding/encoders.cc.o.d"
  "CMakeFiles/ebi_encoding.dir/encoding/hierarchy.cc.o"
  "CMakeFiles/ebi_encoding.dir/encoding/hierarchy.cc.o.d"
  "CMakeFiles/ebi_encoding.dir/encoding/mapping_table.cc.o"
  "CMakeFiles/ebi_encoding.dir/encoding/mapping_table.cc.o.d"
  "CMakeFiles/ebi_encoding.dir/encoding/optimizer.cc.o"
  "CMakeFiles/ebi_encoding.dir/encoding/optimizer.cc.o.d"
  "CMakeFiles/ebi_encoding.dir/encoding/range_encoding.cc.o"
  "CMakeFiles/ebi_encoding.dir/encoding/range_encoding.cc.o.d"
  "CMakeFiles/ebi_encoding.dir/encoding/well_defined.cc.o"
  "CMakeFiles/ebi_encoding.dir/encoding/well_defined.cc.o.d"
  "libebi_encoding.a"
  "libebi_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebi_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
