file(REMOVE_RECURSE
  "libebi_util.a"
)
