file(REMOVE_RECURSE
  "CMakeFiles/ebi_util.dir/util/bitvector.cc.o"
  "CMakeFiles/ebi_util.dir/util/bitvector.cc.o.d"
  "CMakeFiles/ebi_util.dir/util/random.cc.o"
  "CMakeFiles/ebi_util.dir/util/random.cc.o.d"
  "CMakeFiles/ebi_util.dir/util/rle_bitmap.cc.o"
  "CMakeFiles/ebi_util.dir/util/rle_bitmap.cc.o.d"
  "CMakeFiles/ebi_util.dir/util/status.cc.o"
  "CMakeFiles/ebi_util.dir/util/status.cc.o.d"
  "libebi_util.a"
  "libebi_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebi_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
