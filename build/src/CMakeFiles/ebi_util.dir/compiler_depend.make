# Empty compiler generated dependencies file for ebi_util.
# This may be replaced when dependencies are built.
