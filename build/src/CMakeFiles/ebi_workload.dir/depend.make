# Empty dependencies file for ebi_workload.
# This may be replaced when dependencies are built.
