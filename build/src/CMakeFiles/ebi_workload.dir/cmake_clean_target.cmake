file(REMOVE_RECURSE
  "libebi_workload.a"
)
