file(REMOVE_RECURSE
  "CMakeFiles/ebi_workload.dir/workload/generator.cc.o"
  "CMakeFiles/ebi_workload.dir/workload/generator.cc.o.d"
  "CMakeFiles/ebi_workload.dir/workload/query_mix.cc.o"
  "CMakeFiles/ebi_workload.dir/workload/query_mix.cc.o.d"
  "CMakeFiles/ebi_workload.dir/workload/star_schema.cc.o"
  "CMakeFiles/ebi_workload.dir/workload/star_schema.cc.o.d"
  "libebi_workload.a"
  "libebi_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebi_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
