# Empty dependencies file for ebi_index.
# This may be replaced when dependencies are built.
