file(REMOVE_RECURSE
  "CMakeFiles/ebi_index.dir/index/base_bit_sliced_index.cc.o"
  "CMakeFiles/ebi_index.dir/index/base_bit_sliced_index.cc.o.d"
  "CMakeFiles/ebi_index.dir/index/bit_sliced_index.cc.o"
  "CMakeFiles/ebi_index.dir/index/bit_sliced_index.cc.o.d"
  "CMakeFiles/ebi_index.dir/index/btree_index.cc.o"
  "CMakeFiles/ebi_index.dir/index/btree_index.cc.o.d"
  "CMakeFiles/ebi_index.dir/index/cold_encoded_bitmap_index.cc.o"
  "CMakeFiles/ebi_index.dir/index/cold_encoded_bitmap_index.cc.o.d"
  "CMakeFiles/ebi_index.dir/index/dynamic_bitmap_index.cc.o"
  "CMakeFiles/ebi_index.dir/index/dynamic_bitmap_index.cc.o.d"
  "CMakeFiles/ebi_index.dir/index/encoded_bitmap_index.cc.o"
  "CMakeFiles/ebi_index.dir/index/encoded_bitmap_index.cc.o.d"
  "CMakeFiles/ebi_index.dir/index/groupset_index.cc.o"
  "CMakeFiles/ebi_index.dir/index/groupset_index.cc.o.d"
  "CMakeFiles/ebi_index.dir/index/index.cc.o"
  "CMakeFiles/ebi_index.dir/index/index.cc.o.d"
  "CMakeFiles/ebi_index.dir/index/join_index.cc.o"
  "CMakeFiles/ebi_index.dir/index/join_index.cc.o.d"
  "CMakeFiles/ebi_index.dir/index/persistence.cc.o"
  "CMakeFiles/ebi_index.dir/index/persistence.cc.o.d"
  "CMakeFiles/ebi_index.dir/index/projection_index.cc.o"
  "CMakeFiles/ebi_index.dir/index/projection_index.cc.o.d"
  "CMakeFiles/ebi_index.dir/index/range_based_bitmap_index.cc.o"
  "CMakeFiles/ebi_index.dir/index/range_based_bitmap_index.cc.o.d"
  "CMakeFiles/ebi_index.dir/index/simple_bitmap_index.cc.o"
  "CMakeFiles/ebi_index.dir/index/simple_bitmap_index.cc.o.d"
  "CMakeFiles/ebi_index.dir/index/value_list_index.cc.o"
  "CMakeFiles/ebi_index.dir/index/value_list_index.cc.o.d"
  "libebi_index.a"
  "libebi_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebi_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
