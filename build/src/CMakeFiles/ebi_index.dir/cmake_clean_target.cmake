file(REMOVE_RECURSE
  "libebi_index.a"
)
