
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/base_bit_sliced_index.cc" "src/CMakeFiles/ebi_index.dir/index/base_bit_sliced_index.cc.o" "gcc" "src/CMakeFiles/ebi_index.dir/index/base_bit_sliced_index.cc.o.d"
  "/root/repo/src/index/bit_sliced_index.cc" "src/CMakeFiles/ebi_index.dir/index/bit_sliced_index.cc.o" "gcc" "src/CMakeFiles/ebi_index.dir/index/bit_sliced_index.cc.o.d"
  "/root/repo/src/index/btree_index.cc" "src/CMakeFiles/ebi_index.dir/index/btree_index.cc.o" "gcc" "src/CMakeFiles/ebi_index.dir/index/btree_index.cc.o.d"
  "/root/repo/src/index/cold_encoded_bitmap_index.cc" "src/CMakeFiles/ebi_index.dir/index/cold_encoded_bitmap_index.cc.o" "gcc" "src/CMakeFiles/ebi_index.dir/index/cold_encoded_bitmap_index.cc.o.d"
  "/root/repo/src/index/dynamic_bitmap_index.cc" "src/CMakeFiles/ebi_index.dir/index/dynamic_bitmap_index.cc.o" "gcc" "src/CMakeFiles/ebi_index.dir/index/dynamic_bitmap_index.cc.o.d"
  "/root/repo/src/index/encoded_bitmap_index.cc" "src/CMakeFiles/ebi_index.dir/index/encoded_bitmap_index.cc.o" "gcc" "src/CMakeFiles/ebi_index.dir/index/encoded_bitmap_index.cc.o.d"
  "/root/repo/src/index/groupset_index.cc" "src/CMakeFiles/ebi_index.dir/index/groupset_index.cc.o" "gcc" "src/CMakeFiles/ebi_index.dir/index/groupset_index.cc.o.d"
  "/root/repo/src/index/index.cc" "src/CMakeFiles/ebi_index.dir/index/index.cc.o" "gcc" "src/CMakeFiles/ebi_index.dir/index/index.cc.o.d"
  "/root/repo/src/index/join_index.cc" "src/CMakeFiles/ebi_index.dir/index/join_index.cc.o" "gcc" "src/CMakeFiles/ebi_index.dir/index/join_index.cc.o.d"
  "/root/repo/src/index/persistence.cc" "src/CMakeFiles/ebi_index.dir/index/persistence.cc.o" "gcc" "src/CMakeFiles/ebi_index.dir/index/persistence.cc.o.d"
  "/root/repo/src/index/projection_index.cc" "src/CMakeFiles/ebi_index.dir/index/projection_index.cc.o" "gcc" "src/CMakeFiles/ebi_index.dir/index/projection_index.cc.o.d"
  "/root/repo/src/index/range_based_bitmap_index.cc" "src/CMakeFiles/ebi_index.dir/index/range_based_bitmap_index.cc.o" "gcc" "src/CMakeFiles/ebi_index.dir/index/range_based_bitmap_index.cc.o.d"
  "/root/repo/src/index/simple_bitmap_index.cc" "src/CMakeFiles/ebi_index.dir/index/simple_bitmap_index.cc.o" "gcc" "src/CMakeFiles/ebi_index.dir/index/simple_bitmap_index.cc.o.d"
  "/root/repo/src/index/value_list_index.cc" "src/CMakeFiles/ebi_index.dir/index/value_list_index.cc.o" "gcc" "src/CMakeFiles/ebi_index.dir/index/value_list_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ebi_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebi_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebi_boolean.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
