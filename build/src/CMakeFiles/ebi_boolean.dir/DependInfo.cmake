
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/boolean/cover.cc" "src/CMakeFiles/ebi_boolean.dir/boolean/cover.cc.o" "gcc" "src/CMakeFiles/ebi_boolean.dir/boolean/cover.cc.o.d"
  "/root/repo/src/boolean/cube.cc" "src/CMakeFiles/ebi_boolean.dir/boolean/cube.cc.o" "gcc" "src/CMakeFiles/ebi_boolean.dir/boolean/cube.cc.o.d"
  "/root/repo/src/boolean/quine_mccluskey.cc" "src/CMakeFiles/ebi_boolean.dir/boolean/quine_mccluskey.cc.o" "gcc" "src/CMakeFiles/ebi_boolean.dir/boolean/quine_mccluskey.cc.o.d"
  "/root/repo/src/boolean/reduction.cc" "src/CMakeFiles/ebi_boolean.dir/boolean/reduction.cc.o" "gcc" "src/CMakeFiles/ebi_boolean.dir/boolean/reduction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ebi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
