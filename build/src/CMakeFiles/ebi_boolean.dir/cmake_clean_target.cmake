file(REMOVE_RECURSE
  "libebi_boolean.a"
)
