# Empty dependencies file for ebi_boolean.
# This may be replaced when dependencies are built.
