file(REMOVE_RECURSE
  "CMakeFiles/ebi_boolean.dir/boolean/cover.cc.o"
  "CMakeFiles/ebi_boolean.dir/boolean/cover.cc.o.d"
  "CMakeFiles/ebi_boolean.dir/boolean/cube.cc.o"
  "CMakeFiles/ebi_boolean.dir/boolean/cube.cc.o.d"
  "CMakeFiles/ebi_boolean.dir/boolean/quine_mccluskey.cc.o"
  "CMakeFiles/ebi_boolean.dir/boolean/quine_mccluskey.cc.o.d"
  "CMakeFiles/ebi_boolean.dir/boolean/reduction.cc.o"
  "CMakeFiles/ebi_boolean.dir/boolean/reduction.cc.o.d"
  "libebi_boolean.a"
  "libebi_boolean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebi_boolean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
