file(REMOVE_RECURSE
  "libebi_query.a"
)
