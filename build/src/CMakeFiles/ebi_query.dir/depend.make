# Empty dependencies file for ebi_query.
# This may be replaced when dependencies are built.
