
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/aggregates.cc" "src/CMakeFiles/ebi_query.dir/query/aggregates.cc.o" "gcc" "src/CMakeFiles/ebi_query.dir/query/aggregates.cc.o.d"
  "/root/repo/src/query/executor.cc" "src/CMakeFiles/ebi_query.dir/query/executor.cc.o" "gcc" "src/CMakeFiles/ebi_query.dir/query/executor.cc.o.d"
  "/root/repo/src/query/index_manager.cc" "src/CMakeFiles/ebi_query.dir/query/index_manager.cc.o" "gcc" "src/CMakeFiles/ebi_query.dir/query/index_manager.cc.o.d"
  "/root/repo/src/query/maintenance.cc" "src/CMakeFiles/ebi_query.dir/query/maintenance.cc.o" "gcc" "src/CMakeFiles/ebi_query.dir/query/maintenance.cc.o.d"
  "/root/repo/src/query/materialize.cc" "src/CMakeFiles/ebi_query.dir/query/materialize.cc.o" "gcc" "src/CMakeFiles/ebi_query.dir/query/materialize.cc.o.d"
  "/root/repo/src/query/planner.cc" "src/CMakeFiles/ebi_query.dir/query/planner.cc.o" "gcc" "src/CMakeFiles/ebi_query.dir/query/planner.cc.o.d"
  "/root/repo/src/query/predicate.cc" "src/CMakeFiles/ebi_query.dir/query/predicate.cc.o" "gcc" "src/CMakeFiles/ebi_query.dir/query/predicate.cc.o.d"
  "/root/repo/src/query/reencode_advisor.cc" "src/CMakeFiles/ebi_query.dir/query/reencode_advisor.cc.o" "gcc" "src/CMakeFiles/ebi_query.dir/query/reencode_advisor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ebi_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebi_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebi_boolean.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebi_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
