file(REMOVE_RECURSE
  "CMakeFiles/ebi_query.dir/query/aggregates.cc.o"
  "CMakeFiles/ebi_query.dir/query/aggregates.cc.o.d"
  "CMakeFiles/ebi_query.dir/query/executor.cc.o"
  "CMakeFiles/ebi_query.dir/query/executor.cc.o.d"
  "CMakeFiles/ebi_query.dir/query/index_manager.cc.o"
  "CMakeFiles/ebi_query.dir/query/index_manager.cc.o.d"
  "CMakeFiles/ebi_query.dir/query/maintenance.cc.o"
  "CMakeFiles/ebi_query.dir/query/maintenance.cc.o.d"
  "CMakeFiles/ebi_query.dir/query/materialize.cc.o"
  "CMakeFiles/ebi_query.dir/query/materialize.cc.o.d"
  "CMakeFiles/ebi_query.dir/query/planner.cc.o"
  "CMakeFiles/ebi_query.dir/query/planner.cc.o.d"
  "CMakeFiles/ebi_query.dir/query/predicate.cc.o"
  "CMakeFiles/ebi_query.dir/query/predicate.cc.o.d"
  "CMakeFiles/ebi_query.dir/query/reencode_advisor.cc.o"
  "CMakeFiles/ebi_query.dir/query/reencode_advisor.cc.o.d"
  "libebi_query.a"
  "libebi_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebi_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
