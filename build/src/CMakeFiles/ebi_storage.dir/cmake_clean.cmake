file(REMOVE_RECURSE
  "CMakeFiles/ebi_storage.dir/storage/bitmap_store.cc.o"
  "CMakeFiles/ebi_storage.dir/storage/bitmap_store.cc.o.d"
  "CMakeFiles/ebi_storage.dir/storage/catalog.cc.o"
  "CMakeFiles/ebi_storage.dir/storage/catalog.cc.o.d"
  "CMakeFiles/ebi_storage.dir/storage/column.cc.o"
  "CMakeFiles/ebi_storage.dir/storage/column.cc.o.d"
  "CMakeFiles/ebi_storage.dir/storage/csv.cc.o"
  "CMakeFiles/ebi_storage.dir/storage/csv.cc.o.d"
  "CMakeFiles/ebi_storage.dir/storage/io_accountant.cc.o"
  "CMakeFiles/ebi_storage.dir/storage/io_accountant.cc.o.d"
  "CMakeFiles/ebi_storage.dir/storage/table.cc.o"
  "CMakeFiles/ebi_storage.dir/storage/table.cc.o.d"
  "libebi_storage.a"
  "libebi_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebi_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
