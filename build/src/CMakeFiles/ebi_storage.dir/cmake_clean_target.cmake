file(REMOVE_RECURSE
  "libebi_storage.a"
)
