
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/bitmap_store.cc" "src/CMakeFiles/ebi_storage.dir/storage/bitmap_store.cc.o" "gcc" "src/CMakeFiles/ebi_storage.dir/storage/bitmap_store.cc.o.d"
  "/root/repo/src/storage/catalog.cc" "src/CMakeFiles/ebi_storage.dir/storage/catalog.cc.o" "gcc" "src/CMakeFiles/ebi_storage.dir/storage/catalog.cc.o.d"
  "/root/repo/src/storage/column.cc" "src/CMakeFiles/ebi_storage.dir/storage/column.cc.o" "gcc" "src/CMakeFiles/ebi_storage.dir/storage/column.cc.o.d"
  "/root/repo/src/storage/csv.cc" "src/CMakeFiles/ebi_storage.dir/storage/csv.cc.o" "gcc" "src/CMakeFiles/ebi_storage.dir/storage/csv.cc.o.d"
  "/root/repo/src/storage/io_accountant.cc" "src/CMakeFiles/ebi_storage.dir/storage/io_accountant.cc.o" "gcc" "src/CMakeFiles/ebi_storage.dir/storage/io_accountant.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/ebi_storage.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/ebi_storage.dir/storage/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ebi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
