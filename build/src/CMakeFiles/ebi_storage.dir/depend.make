# Empty dependencies file for ebi_storage.
# This may be replaced when dependencies are built.
