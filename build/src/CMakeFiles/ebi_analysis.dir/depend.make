# Empty dependencies file for ebi_analysis.
# This may be replaced when dependencies are built.
