file(REMOVE_RECURSE
  "CMakeFiles/ebi_analysis.dir/analysis/cost_model.cc.o"
  "CMakeFiles/ebi_analysis.dir/analysis/cost_model.cc.o.d"
  "libebi_analysis.a"
  "libebi_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebi_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
