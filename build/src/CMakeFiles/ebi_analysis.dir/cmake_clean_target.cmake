file(REMOVE_RECURSE
  "libebi_analysis.a"
)
