file(REMOVE_RECURSE
  "../bench/tpcd_mix"
  "../bench/tpcd_mix.pdb"
  "CMakeFiles/tpcd_mix.dir/tpcd_mix.cc.o"
  "CMakeFiles/tpcd_mix.dir/tpcd_mix.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcd_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
