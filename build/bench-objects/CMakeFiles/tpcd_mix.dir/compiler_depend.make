# Empty compiler generated dependencies file for tpcd_mix.
# This may be replaced when dependencies are built.
