# Empty dependencies file for fig3_encoding_quality.
# This may be replaced when dependencies are built.
