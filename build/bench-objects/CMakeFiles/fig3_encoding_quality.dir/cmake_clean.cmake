file(REMOVE_RECURSE
  "../bench/fig3_encoding_quality"
  "../bench/fig3_encoding_quality.pdb"
  "CMakeFiles/fig3_encoding_quality.dir/fig3_encoding_quality.cc.o"
  "CMakeFiles/fig3_encoding_quality.dir/fig3_encoding_quality.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_encoding_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
