file(REMOVE_RECURSE
  "../bench/fig10_space"
  "../bench/fig10_space.pdb"
  "CMakeFiles/fig10_space.dir/fig10_space.cc.o"
  "CMakeFiles/fig10_space.dir/fig10_space.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
