file(REMOVE_RECURSE
  "../bench/fig9_access_cost"
  "../bench/fig9_access_cost.pdb"
  "CMakeFiles/fig9_access_cost.dir/fig9_access_cost.cc.o"
  "CMakeFiles/fig9_access_cost.dir/fig9_access_cost.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_access_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
