# Empty dependencies file for fig9_access_cost.
# This may be replaced when dependencies are built.
