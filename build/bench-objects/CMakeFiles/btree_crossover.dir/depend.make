# Empty dependencies file for btree_crossover.
# This may be replaced when dependencies are built.
