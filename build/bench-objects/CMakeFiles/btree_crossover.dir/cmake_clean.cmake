file(REMOVE_RECURSE
  "../bench/btree_crossover"
  "../bench/btree_crossover.pdb"
  "CMakeFiles/btree_crossover.dir/btree_crossover.cc.o"
  "CMakeFiles/btree_crossover.dir/btree_crossover.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btree_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
