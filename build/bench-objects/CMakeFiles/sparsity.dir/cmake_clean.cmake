file(REMOVE_RECURSE
  "../bench/sparsity"
  "../bench/sparsity.pdb"
  "CMakeFiles/sparsity.dir/sparsity.cc.o"
  "CMakeFiles/sparsity.dir/sparsity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
