file(REMOVE_RECURSE
  "../bench/groupset"
  "../bench/groupset.pdb"
  "CMakeFiles/groupset.dir/groupset.cc.o"
  "CMakeFiles/groupset.dir/groupset.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groupset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
