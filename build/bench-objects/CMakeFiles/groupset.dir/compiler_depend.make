# Empty compiler generated dependencies file for groupset.
# This may be replaced when dependencies are built.
