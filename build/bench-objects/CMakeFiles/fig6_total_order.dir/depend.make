# Empty dependencies file for fig6_total_order.
# This may be replaced when dependencies are built.
