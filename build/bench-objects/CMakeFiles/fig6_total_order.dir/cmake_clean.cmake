file(REMOVE_RECURSE
  "../bench/fig6_total_order"
  "../bench/fig6_total_order.pdb"
  "CMakeFiles/fig6_total_order.dir/fig6_total_order.cc.o"
  "CMakeFiles/fig6_total_order.dir/fig6_total_order.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_total_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
