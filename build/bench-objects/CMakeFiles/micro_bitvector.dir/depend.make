# Empty dependencies file for micro_bitvector.
# This may be replaced when dependencies are built.
