file(REMOVE_RECURSE
  "../bench/micro_bitvector"
  "../bench/micro_bitvector.pdb"
  "CMakeFiles/micro_bitvector.dir/micro_bitvector.cc.o"
  "CMakeFiles/micro_bitvector.dir/micro_bitvector.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_bitvector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
