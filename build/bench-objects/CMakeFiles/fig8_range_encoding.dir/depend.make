# Empty dependencies file for fig8_range_encoding.
# This may be replaced when dependencies are built.
