file(REMOVE_RECURSE
  "../bench/fig8_range_encoding"
  "../bench/fig8_range_encoding.pdb"
  "CMakeFiles/fig8_range_encoding.dir/fig8_range_encoding.cc.o"
  "CMakeFiles/fig8_range_encoding.dir/fig8_range_encoding.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_range_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
