# Empty compiler generated dependencies file for tpcd_queries.
# This may be replaced when dependencies are built.
