file(REMOVE_RECURSE
  "../bench/tpcd_queries"
  "../bench/tpcd_queries.pdb"
  "CMakeFiles/tpcd_queries.dir/tpcd_queries.cc.o"
  "CMakeFiles/tpcd_queries.dir/tpcd_queries.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcd_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
