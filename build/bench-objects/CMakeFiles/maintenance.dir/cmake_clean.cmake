file(REMOVE_RECURSE
  "../bench/maintenance"
  "../bench/maintenance.pdb"
  "CMakeFiles/maintenance.dir/maintenance.cc.o"
  "CMakeFiles/maintenance.dir/maintenance.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
