# Empty compiler generated dependencies file for fig5_hierarchy.
# This may be replaced when dependencies are built.
