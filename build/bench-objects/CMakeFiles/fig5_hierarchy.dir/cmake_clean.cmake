file(REMOVE_RECURSE
  "../bench/fig5_hierarchy"
  "../bench/fig5_hierarchy.pdb"
  "CMakeFiles/fig5_hierarchy.dir/fig5_hierarchy.cc.o"
  "CMakeFiles/fig5_hierarchy.dir/fig5_hierarchy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
