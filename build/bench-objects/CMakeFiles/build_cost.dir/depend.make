# Empty dependencies file for build_cost.
# This may be replaced when dependencies are built.
