file(REMOVE_RECURSE
  "../bench/build_cost"
  "../bench/build_cost.pdb"
  "CMakeFiles/build_cost.dir/build_cost.cc.o"
  "CMakeFiles/build_cost.dir/build_cost.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/build_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
