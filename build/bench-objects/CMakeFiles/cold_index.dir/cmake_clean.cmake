file(REMOVE_RECURSE
  "../bench/cold_index"
  "../bench/cold_index.pdb"
  "CMakeFiles/cold_index.dir/cold_index.cc.o"
  "CMakeFiles/cold_index.dir/cold_index.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
