# Empty dependencies file for cold_index.
# This may be replaced when dependencies are built.
