file(REMOVE_RECURSE
  "../bench/worst_case_savings"
  "../bench/worst_case_savings.pdb"
  "CMakeFiles/worst_case_savings.dir/worst_case_savings.cc.o"
  "CMakeFiles/worst_case_savings.dir/worst_case_savings.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worst_case_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
