# Empty dependencies file for worst_case_savings.
# This may be replaced when dependencies are built.
