file(REMOVE_RECURSE
  "../bench/star_join"
  "../bench/star_join.pdb"
  "CMakeFiles/star_join.dir/star_join.cc.o"
  "CMakeFiles/star_join.dir/star_join.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/star_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
