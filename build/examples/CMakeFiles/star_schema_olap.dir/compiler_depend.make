# Empty compiler generated dependencies file for star_schema_olap.
# This may be replaced when dependencies are built.
