file(REMOVE_RECURSE
  "CMakeFiles/star_schema_olap.dir/star_schema_olap.cpp.o"
  "CMakeFiles/star_schema_olap.dir/star_schema_olap.cpp.o.d"
  "star_schema_olap"
  "star_schema_olap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/star_schema_olap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
