# Empty dependencies file for encoding_advisor.
# This may be replaced when dependencies are built.
