file(REMOVE_RECURSE
  "CMakeFiles/encoding_advisor.dir/encoding_advisor.cpp.o"
  "CMakeFiles/encoding_advisor.dir/encoding_advisor.cpp.o.d"
  "encoding_advisor"
  "encoding_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encoding_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
