
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/ebi_shell.cpp" "examples/CMakeFiles/ebi_shell.dir/ebi_shell.cpp.o" "gcc" "examples/CMakeFiles/ebi_shell.dir/ebi_shell.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ebi_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebi_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebi_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebi_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebi_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebi_boolean.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebi_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
