# Empty compiler generated dependencies file for ebi_shell.
# This may be replaced when dependencies are built.
