file(REMOVE_RECURSE
  "CMakeFiles/ebi_shell.dir/ebi_shell.cpp.o"
  "CMakeFiles/ebi_shell.dir/ebi_shell.cpp.o.d"
  "ebi_shell"
  "ebi_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebi_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
