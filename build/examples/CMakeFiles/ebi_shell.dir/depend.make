# Empty dependencies file for ebi_shell.
# This may be replaced when dependencies are built.
